"""High-level entry point: run a Swing app on an in-process swarm.

:class:`SwingRuntime` wires the whole workflow of Fig. 3 together: it
creates a master (device A) and a set of worker threads, lets workers
join via discovery, deploys the dataflow graph, starts the sources, and
collects ordered results from the sink.  Per-worker ``slowdowns``
emulate device heterogeneity on one development machine.

Example::

    runtime = SwingRuntime(graph, worker_ids=["B", "G", "H"],
                           policy="LRS", source_rate=12.0)
    results = runtime.run(until_idle=2.0)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro import metrics as metrics_mod
from repro.core import delivery as delivery_mod
from repro.core import multitenant as multitenant_mod
from repro.core import overload as overload_mod
from repro.core.controller import PolicyConfig
from repro.core.exceptions import DeploymentError, RuntimeStateError
from repro.core.keyed import KeyedConfig
from repro.core.function_unit import SinkUnit
from repro.core.graph import AppGraph
from repro.core.recovery import (CheckpointStore, RecoveryConfig,
                                 load_checkpoint)
from repro.core.reorder import ReorderBuffer
from repro.core.requirements import PerformanceRequirement
from repro.core.tuples import DataTuple
from repro.runtime.fabric import Fabric, InProcFabric
from repro.runtime.master import DeploymentSession, Master
from repro.runtime.worker import WorkerRuntime
from repro.trace import NULL_TRACER, TraceSink


class SwingRuntime:
    """Build, run and tear down a complete in-process swarm.

    ``requirement`` (a :class:`PerformanceRequirement`) takes precedence
    over ``source_rate`` and also sizes the sink-side reorder buffer —
    the programmer-declared performance contract of paper Sec. IV-A.
    """

    def __init__(self, graph: AppGraph, worker_ids: Sequence[str],
                 master_id: str = "A", policy: str = "LRS",
                 source_rate: float = 24.0,
                 requirement: Optional[PerformanceRequirement] = None,
                 slowdowns: Optional[Dict[str, float]] = None,
                 control_interval: float = 0.25,
                 seed: Optional[int] = None,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 trace: Optional[TraceSink] = None,
                 delivery: Optional[delivery_mod.DeliveryConfig] = None,
                 heartbeat_interval: float = 0.0,
                 heartbeat_timeout: float = 0.0,
                 recovery: Optional[RecoveryConfig] = None,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 fabric_wrapper: Optional[Callable[[Fabric], Fabric]] = None,
                 keyed: Optional[KeyedConfig] = None
                 ) -> None:
        if master_id in worker_ids:
            raise RuntimeStateError("master id must not collide with workers")
        if not worker_ids:
            raise RuntimeStateError("a swarm needs at least one worker")
        self.graph = graph
        self.requirement = requirement or PerformanceRequirement(
            input_rate=source_rate)
        source_rate = self.requirement.input_rate
        self.overload = overload
        # Top-level entry point: when no registry is injected, create ONE
        # shared registry here and thread it through the fabric, master
        # and every worker, so the whole swarm's metrics aggregate in a
        # single place without touching the process-wide default.
        self.registry = (registry if registry is not None
                         else metrics_mod.MetricsRegistry())
        registry = self.registry
        #: delivery-semantics knobs (at-least-once replay + sink dedup);
        #: ``None`` keeps today's best-effort behavior
        self.delivery = delivery
        #: worker→master liveness beacons; 0 disables them (the default,
        #: matching the seed behavior) — churn runs need them so silent
        #: crashes are evicted and rejoins are visible
        self.heartbeat_interval = heartbeat_interval
        #: shared TraceSink (a :class:`repro.trace.Tracer`); every
        #: device in the in-process swarm records into the same ring
        self.tracer = trace if trace is not None else NULL_TRACER
        trace = self.tracer
        #: recovery/timing knobs shared by master and workers
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        #: keyed-routing knobs; when set every device gets one shared
        #: PolicyConfig so keyed edges bootstrap identical range tables
        self.keyed = keyed
        self._policy_config = (PolicyConfig(
            policy=policy, seed=seed, control_interval=control_interval,
            overload=overload, delivery=delivery, keyed=keyed)
            if keyed is not None else None)
        #: durable checkpoint store; None = historical unrecoverable master
        self.checkpoint_store = checkpoint_store
        self.fabric: Fabric = InProcFabric(overload=overload,
                                           registry=registry)
        if fabric_wrapper is not None:
            # e.g. a ChaosFabric injecting seeded link faults — built by
            # the caller so this module stays free of chaos imports
            self.fabric = fabric_wrapper(self.fabric)
        self.master = Master(master_id, self.fabric, graph, policy=policy,
                             source_rate=source_rate, seed=seed,
                             control_interval=control_interval,
                             heartbeat_timeout=heartbeat_timeout,
                             overload=overload, registry=registry,
                             trace=trace, delivery=delivery,
                             recovery=self.recovery,
                             checkpoint_store=checkpoint_store,
                             policy_config=self._policy_config)
        self._policy = policy
        self._seed = seed
        self._control_interval = control_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._slowdowns = dict(slowdowns or {})
        self.workers: Dict[str, WorkerRuntime] = {}
        for worker_id in worker_ids:
            self.workers[worker_id] = self._make_worker(worker_id)
        self._running = False

    def _make_worker(self, worker_id: str) -> WorkerRuntime:
        return WorkerRuntime(
            worker_id, self.fabric, self.graph, policy=self._policy,
            slowdown=self._slowdowns.get(worker_id, 0.0), seed=self._seed,
            control_interval=self._control_interval,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_target=self.master.master_id,
            policy_config=self._policy_config,
            overload=self.overload, registry=self.registry,
            trace=self.tracer, delivery=self.delivery,
            recovery=self.recovery)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Launch threads, join workers, deploy and start the app."""
        if self._running:
            raise RuntimeStateError("runtime already started")
        self.master.runtime.start()
        for worker in self.workers.values():
            worker.start()
            worker.join_master(self.master.master_id)
        self._await_membership()
        self.master.deploy()
        self._await_deployment()
        self.master.start()
        self._running = True

    def _await_membership(self, timeout: Optional[float] = None) -> None:
        if timeout is None:
            timeout = self.recovery.await_timeout
        deadline = time.monotonic() + timeout
        expected = set(self.workers)
        while time.monotonic() < deadline:
            if expected <= set(self.master.worker_ids):
                return
            time.sleep(self.recovery.await_poll)
        missing = expected - set(self.master.worker_ids)
        raise DeploymentError("workers never joined: %r" % sorted(missing))

    def _await_deployment(self, timeout: Optional[float] = None) -> None:
        if timeout is None:
            timeout = self.recovery.await_timeout
        deadline = time.monotonic() + timeout
        runtimes = [self.master.runtime] + list(self.workers.values())
        for runtime in runtimes:
            remaining = max(0.0, deadline - time.monotonic())
            if not runtime.deployed.wait(timeout=remaining):
                raise DeploymentError("deployment timed out on %s"
                                      % runtime.worker_id)

    def stop(self) -> None:
        if not self._running:
            return
        self.master.stop()
        for worker in self.workers.values():
            worker.stop()
        self.master.runtime.stop()
        self.fabric.close()
        self._running = False

    # -- master failover (used by the chaos harness) -----------------------
    def crash_master(self) -> None:
        """Abruptly kill the master process-equivalent.

        No STOP broadcast goes out: workers keep their units, keep
        processing whatever reaches them, and keep heartbeating into
        the void.  With a checkpoint store configured, the master's
        final checkpoint (the crash model's WAL stand-in) is written on
        the way down; without one, recovery starts from nothing.
        """
        self.master.crash()

    def restart_master(self,
                       await_workers: Optional[float] = None) -> int:
        """Bring up a successor master from the last checkpoint.

        The successor runs at ``checkpoint.epoch + 1`` on the same
        endpoint: it restores the co-located sink's dedup window, waits
        (up to *await_workers*, default the recovery config's
        ``await_timeout``) for checkpointed survivors to re-register —
        their heartbeats draw an epoch-stamped WELCOME, which triggers
        a JOIN carrying their hosted-unit inventory — then redeploys,
        restarts sources, and re-imports the checkpointed replay
        retention so unacknowledged tuples are redelivered (duplicates
        absorbed by the restored dedup).  Returns the number of
        retention entries re-imported.
        """
        if await_workers is None:
            await_workers = self.recovery.await_timeout
        checkpoint = (load_checkpoint(self.checkpoint_store)
                      if self.checkpoint_store is not None else None)
        epoch = (checkpoint.epoch if checkpoint is not None else 0) + 1
        master_id = self.master.master_id
        self.master = Master(master_id, self.fabric, self.graph,
                             policy=self._policy,
                             source_rate=self.requirement.input_rate,
                             seed=self._seed,
                             control_interval=self._control_interval,
                             heartbeat_timeout=self._heartbeat_timeout,
                             overload=self.overload, registry=self.registry,
                             trace=self.tracer, delivery=self.delivery,
                             recovery=self.recovery,
                             checkpoint_store=self.checkpoint_store,
                             epoch=epoch,
                             policy_config=self._policy_config)
        expected: set = set()
        if checkpoint is not None:
            # Await only survivors that still exist on this runtime —
            # a worker that died during the outage can never re-register.
            expected = (set(self.master.restore(checkpoint))
                        & set(self.workers))
        self.master.runtime.start()
        deadline = time.monotonic() + await_workers
        while time.monotonic() < deadline:
            if expected <= set(self.master.worker_ids):
                break
            time.sleep(self.recovery.await_poll)
        self.master.deploy()
        self._await_deployment()
        self.master.start()
        imported = self.master.import_retention()
        self.master.checkpoint()
        return imported

    def partition_link(self, sender_id: str, target_id: str) -> None:
        """Sever a directed link (requires a chaos-capable fabric)."""
        partition = getattr(self.fabric, "partition", None)
        if partition is None:
            raise RuntimeStateError(
                "fabric %r cannot partition links; wrap it in a ChaosFabric"
                % type(self.fabric).__name__)
        partition(sender_id, target_id)

    def heal_link(self, sender_id: str, target_id: str) -> None:
        heal = getattr(self.fabric, "heal", None)
        if heal is None:
            raise RuntimeStateError(
                "fabric %r cannot heal links; wrap it in a ChaosFabric"
                % type(self.fabric).__name__)
        heal(sender_id, target_id)

    # -- churn (used by the chaos harness) ---------------------------------
    def crash_worker(self, worker_id: str) -> None:
        """Kill *worker_id* without any goodbye (silent crash).

        The fabric endpoint is torn down first so in-flight sends to the
        dead worker fail fast (``ChannelClosed`` → immediate dead-mark in
        the upstream dispatcher), then the thread is stopped.  No LEAVE
        is sent: detection must come from send failures, loss accounting
        and missed heartbeats — exactly like the simulator's silent-kill
        fault.
        """
        worker = self.workers.pop(worker_id, None)
        if worker is None:
            raise RuntimeStateError("unknown worker %r" % worker_id)
        self.fabric.unregister(worker_id)
        worker.stop()

    def drain_worker(self, worker_id: str, quiet: Optional[float] = None,
                     timeout: float = 10.0) -> float:
        """Gracefully drain *worker_id* (LEAVING protocol); returns the
        measured drain duration in seconds."""
        if quiet is None:
            quiet = self.recovery.drain_quiet
        worker = self.workers.pop(worker_id, None)
        if worker is None:
            raise RuntimeStateError("unknown worker %r" % worker_id)
        elapsed = worker.leave(self.master.master_id, quiet=quiet,
                               timeout=timeout)
        self.fabric.unregister(worker_id)
        return elapsed

    def spawn_worker(self, worker_id: str, slowdown: float = 0.0) -> None:
        """Start a (re)joining worker under *worker_id* and add it to the
        swarm; the master redeploys and resets its health history."""
        if worker_id in self.workers:
            raise RuntimeStateError("worker %r already running" % worker_id)
        self._slowdowns[worker_id] = slowdown
        worker = self._make_worker(worker_id)
        self.workers[worker_id] = worker
        worker.start()
        worker.join_master(self.master.master_id)

    # -- convenience -------------------------------------------------------
    def sink_unit(self) -> SinkUnit:
        """The sink instance (hosted on the master device)."""
        sinks = self.graph.sinks()
        if len(sinks) != 1:
            raise DeploymentError("expected exactly one sink, found %d"
                                  % len(sinks))
        unit = self.master.runtime.unit(sinks[0].name)
        if not isinstance(unit, SinkUnit):
            raise DeploymentError("sink unit is not a SinkUnit")
        return unit

    def run(self, until_idle: float = 1.0, timeout: float = 60.0,
            reorder: bool = True) -> List[DataTuple]:
        """Start, wait for the stream to drain, stop, return sink results.

        The stream is considered drained once the sink has received no
        new result for *until_idle* seconds.  Results are replayed
        through a reorder buffer sized at one second of the source rate
        (paper Sec. IV-C) unless ``reorder=False``.
        """
        self.start()
        sink = self.sink_unit()
        deadline = time.monotonic() + timeout
        last_count = -1
        last_change = time.monotonic()
        while time.monotonic() < deadline:
            count = len(sink.results)
            now = time.monotonic()
            if count != last_count:
                last_count = count
                last_change = now
            elif count > 0 and now - last_change >= until_idle:
                break
            time.sleep(self.recovery.run_poll)
        self.stop()
        results = list(sink.results)
        if not reorder:
            return results
        return order_results(results, self.requirement.input_rate,
                             timespan=self.requirement.reorder_timespan)

    def meets_requirement(self, achieved_rate: float) -> bool:
        """Did *achieved_rate* satisfy the declared performance contract?"""
        return self.requirement.meets_rate(achieved_rate)

    def __enter__(self) -> "SwingRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class MultiTenantRuntime:
    """Run N tenant pipelines over ONE shared in-process worker pool.

    Each entry of *pipelines* is a ``(TenantSpec, AppGraph)`` pair: one
    tenant's admission share plus the dataflow it runs.  All tenants
    share the same master, workers, fabric, registry and tracer; each
    tenant gets its own :class:`DeploymentSession` (tenant-tagged
    control messages) and its own source pacing
    (``TenantSpec.input_rate``, else *source_rate*).

    When *overload* bounds the mailbox depth (``queue_capacity``), the
    weighted per-tenant budgets from
    :func:`repro.core.multitenant.tenant_budgets` are installed on every
    mailbox, so cross-tenant fair-share admission governs every shared
    queue: an overloaded tenant sheds its own tuples before touching
    anyone else's.
    """

    def __init__(self,
                 pipelines: Sequence[tuple],
                 worker_ids: Sequence[str],
                 master_id: str = "A", policy: str = "LRS",
                 source_rate: float = 24.0,
                 slowdowns: Optional[Dict[str, float]] = None,
                 control_interval: float = 0.25,
                 seed: Optional[int] = None,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 trace: Optional[TraceSink] = None,
                 delivery: Optional[delivery_mod.DeliveryConfig] = None,
                 recovery: Optional[RecoveryConfig] = None
                 ) -> None:
        if not pipelines:
            raise RuntimeStateError("need at least one tenant pipeline")
        if master_id in worker_ids:
            raise RuntimeStateError("master id must not collide with workers")
        if not worker_ids:
            raise RuntimeStateError("a swarm needs at least one worker")
        self.specs: List[multitenant_mod.TenantSpec] = [
            spec for spec, _graph in pipelines]
        self.graphs: Dict[str, AppGraph] = {
            spec.tenant_id: graph for spec, graph in pipelines}
        if len(self.graphs) != len(pipelines):
            raise RuntimeStateError("duplicate tenant id in pipelines")
        self.overload = overload
        self.delivery = delivery
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.source_rate = source_rate
        # Top-level entry point: one shared registry for the whole pool.
        self.registry = (registry if registry is not None
                         else metrics_mod.MetricsRegistry())
        self.tracer = trace if trace is not None else NULL_TRACER
        self.fabric = InProcFabric(overload=overload, registry=self.registry)
        # The master needs a constructor graph for its default-tenant
        # session, but the pool never deploys that session — every
        # pipeline here runs as an explicit tenant.
        anchor_graph = pipelines[0][1]
        self.master = Master(master_id, self.fabric, anchor_graph,
                             policy=policy, source_rate=source_rate,
                             seed=seed, control_interval=control_interval,
                             overload=overload, registry=self.registry,
                             trace=self.tracer, delivery=delivery,
                             recovery=self.recovery)
        self.sessions: Dict[str, DeploymentSession] = {}
        for spec, graph in pipelines:
            deployment = multitenant_mod.PipelineDeployment(spec=spec)
            self.sessions[spec.tenant_id] = self.master.add_pipeline(
                deployment, graph)
            if spec.input_rate is not None:
                self.master.runtime.set_tenant_rate(spec.tenant_id,
                                                    spec.input_rate)
        self._slowdowns = dict(slowdowns or {})
        self.workers: Dict[str, WorkerRuntime] = {}
        for worker_id in worker_ids:
            worker = WorkerRuntime(
                worker_id, self.fabric, anchor_graph, policy=policy,
                slowdown=self._slowdowns.get(worker_id, 0.0), seed=seed,
                control_interval=control_interval, overload=overload,
                registry=self.registry, trace=self.tracer,
                delivery=delivery, recovery=self.recovery)
            for spec, graph in pipelines:
                worker.register_pipeline(spec.tenant_id, graph)
                if spec.input_rate is not None:
                    worker.set_tenant_rate(spec.tenant_id, spec.input_rate)
            self.workers[worker_id] = worker
        self._install_budgets()
        self._running = False

    def _install_budgets(self) -> None:
        """Install fair-share budgets on every mailbox (bounded queues)."""
        capacity = (self.overload.queue_capacity
                    if self.overload is not None else None)
        if capacity is None:
            return
        budgets = multitenant_mod.tenant_budgets(self.specs, capacity)
        priorities = {spec.tenant_id: spec.priority for spec in self.specs}
        for runtime in [self.master.runtime] + list(self.workers.values()):
            runtime.mailbox.set_tenant_budgets(budgets, priorities)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Launch the pool, then deploy and start every tenant."""
        if self._running:
            raise RuntimeStateError("runtime already started")
        self.master.runtime.start()
        for worker in self.workers.values():
            worker.start()
            worker.join_master(self.master.master_id)
        self._await_membership()
        for tenant_id in sorted(self.sessions):
            self.sessions[tenant_id].deploy()
        self._await_deployment()
        for tenant_id in sorted(self.sessions):
            self.sessions[tenant_id].start()
        self._running = True

    def _await_membership(self, timeout: Optional[float] = None) -> None:
        if timeout is None:
            timeout = self.recovery.await_timeout
        deadline = time.monotonic() + timeout
        expected = set(self.workers)
        while time.monotonic() < deadline:
            if expected <= set(self.master.worker_ids):
                return
            time.sleep(self.recovery.await_poll)
        missing = expected - set(self.master.worker_ids)
        raise DeploymentError("workers never joined: %r" % sorted(missing))

    def _await_deployment(self, timeout: Optional[float] = None) -> None:
        if timeout is None:
            timeout = self.recovery.await_timeout
        deadline = time.monotonic() + timeout
        runtimes = [self.master.runtime] + list(self.workers.values())
        for runtime in runtimes:
            remaining = max(0.0, deadline - time.monotonic())
            if not runtime.deployed.wait(timeout=remaining):
                raise DeploymentError("deployment timed out on %s"
                                      % runtime.worker_id)

    def stop_tenant(self, tenant_id: str) -> None:
        """Halt one tenant's sources; every other tenant keeps running."""
        try:
            session = self.sessions[tenant_id]
        except KeyError:
            raise RuntimeStateError("unknown tenant %r" % tenant_id) from None
        session.stop()

    def stop(self) -> None:
        if not self._running:
            return
        self.master.stop()
        for worker in self.workers.values():
            worker.stop()
        self.master.runtime.stop()
        self.fabric.close()
        self._running = False

    # -- convenience -------------------------------------------------------
    def sink_unit(self, tenant_id: str) -> SinkUnit:
        """One tenant's sink instance (hosted on the master device)."""
        try:
            graph = self.graphs[tenant_id]
        except KeyError:
            raise RuntimeStateError("unknown tenant %r" % tenant_id) from None
        sinks = graph.sinks()
        if len(sinks) != 1:
            raise DeploymentError("expected exactly one sink for tenant %r,"
                                  " found %d" % (tenant_id, len(sinks)))
        unit = self.master.runtime.unit(sinks[0].name, tenant=tenant_id)
        if not isinstance(unit, SinkUnit):
            raise DeploymentError("sink unit is not a SinkUnit")
        return unit

    def results(self, tenant_id: str) -> List[DataTuple]:
        return list(self.sink_unit(tenant_id).results)

    def run(self, duration: float) -> Dict[str, List[DataTuple]]:
        """Start, run all tenants for *duration* seconds, stop, and
        return each tenant's sink results."""
        self.start()
        time.sleep(duration)
        self.stop()
        return {tenant_id: self.results(tenant_id)
                for tenant_id in self.sessions}

    def __enter__(self) -> "MultiTenantRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def order_results(results: List[DataTuple], source_rate: float,
                  timespan: float = 1.0) -> List[DataTuple]:
    """Replay *results* through the Reordering Service's buffer."""
    buffer = ReorderBuffer.for_rate(max(source_rate, 1.0), timespan=timespan)
    by_seq = {}
    playback = []
    for index, data in enumerate(results):
        by_seq.setdefault(data.seq, data)
        playback.extend(buffer.offer(data.seq, float(index)))
    playback.extend(buffer.flush(float(len(results))))
    return [by_seq[record.seq] for record in playback if record.seq in by_seq]
