"""Threaded master/worker runtime: the SEEP-on-Android substitute."""

from repro.runtime.app_runner import SwingRuntime, order_results
from repro.runtime.channels import (ChannelClosed, InProcChannel, TcpChannel,
                                    TcpListener)
from repro.runtime.discovery import (DEFAULT_BEACON_PORT, LocalDiscovery,
                                     UdpBeacon, listen_for_beacon)
from repro.runtime.dispatcher import (UpstreamDispatcher, instance_id,
                                      split_instance)
from repro.runtime.fabric import Fabric, InProcFabric, Mailbox, TcpFabric
from repro.runtime.master import Master, Placement
from repro.runtime.messages import Message
from repro.runtime.serialization import (decode_tuple, decode_value,
                                         encode_tuple, encode_value)
from repro.runtime.worker import WorkerRuntime

__all__ = [
    "ChannelClosed", "DEFAULT_BEACON_PORT", "Fabric", "InProcChannel",
    "InProcFabric", "LocalDiscovery", "Mailbox", "Master", "Message",
    "Placement", "SwingRuntime", "TcpChannel", "TcpFabric", "TcpListener",
    "UdpBeacon", "UpstreamDispatcher", "WorkerRuntime", "decode_tuple",
    "decode_value", "encode_tuple", "encode_value", "instance_id",
    "listen_for_beacon", "order_results",
]
