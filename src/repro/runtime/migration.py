"""Live key-range migration for the threaded runtime.

One code path serves both triggers: a hot-range split (load) and a
graceful worker departure (churn) end up here with a key range, a source
worker, and a target worker.  The protocol is the graceful-drain LEAVING
shape applied to one range instead of one device:

1. **pause** the range — keyed dispatch parks its tuples unassigned in
   the replay buffer (at-least-once), so nothing new reaches the old
   owner;
2. **drain** in-flight work — wait for the source worker's mailbox to
   stay quiet, the same quiescence loop ``WorkerRuntime.leave`` runs;
3. **snapshot** the range's state through the hardened codec
   (strict versioned frames, like the control-plane checkpoint);
4. **install** it on the target worker;
5. **flip** routing and resume — the replay sweep immediately re-places
   every parked tuple on the new owner, and the receiver-side dedup
   window absorbs any member the old owner had in fact processed.

Metrics: each move counts on ``swing_key_range_moves_total{reason=...}``
(inside :meth:`LrsController.move_range`) and the pause-to-resume
duration lands in ``swing_state_migration_seconds``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import metrics as metrics_mod
from repro.core.keyed import KeyRange
from repro.runtime.dispatcher import UpstreamDispatcher
from repro.runtime.worker import WorkerRuntime


def migrate_range(dispatcher: UpstreamDispatcher, key_range: KeyRange,
                  source: WorkerRuntime, target: WorkerRuntime,
                  new_owner: str, unit_name: str, tenant: str = "",
                  reason: str = "hot_split",
                  quiet: Optional[float] = None,
                  timeout: float = 5.0,
                  registry: Optional[metrics_mod.MetricsRegistry] = None
                  ) -> int:
    """Move *key_range* of *unit_name*'s state from *source* to *target*.

    *new_owner* is the downstream instance id on *target* that takes
    over routing.  Returns the number of keys migrated.  The tuple
    stream keeps flowing throughout: tuples for the moving range are
    parked and redelivered, everything else routes normally.
    """
    controller = dispatcher.controller
    started = time.monotonic()
    controller.pause_range(key_range)
    try:
        _drain(source, quiet=quiet, timeout=timeout)
        frame = source.export_key_state(unit_name, key_range, tenant=tenant)
        moved = target.import_key_state(frame)
        controller.move_range(key_range, new_owner, reason=reason)
    finally:
        controller.resume_range(key_range)
    if registry is not None:
        registry.observe_histogram(metrics_mod.STATE_MIGRATION_SECONDS,
                                   time.monotonic() - started,
                                   edge=dispatcher.edge)
    return moved


def _drain(source: WorkerRuntime, quiet: Optional[float],
           timeout: float) -> None:
    """Wait for *source*'s ingress to quiesce (the LEAVING loop's core).

    Tuples already in flight toward the old owner either finish (and
    ACK) here, or remain retained and get redelivered to the new owner
    after the flip — dedup makes that a duplicate, not a double count.
    """
    if quiet is None:
        quiet = source.recovery.drain_quiet
    deadline = time.monotonic() + timeout
    last_busy = time.monotonic()
    while time.monotonic() < deadline:
        if len(source.mailbox) > 0 or source._data_active:
            last_busy = time.monotonic()
        elif time.monotonic() - last_busy >= quiet:
            return
        time.sleep(source.recovery.drain_poll)
