"""Worker runtime: one thread hosting function-unit instances.

A worker corresponds to one device in the swarm.  It receives DEPLOY
from the master naming the function units to activate (every device has
the whole app installed — Fig. 3 step 3), processes DATA messages with
the hosted units, returns ACKs carrying the measured processing delay,
and runs an :class:`~repro.runtime.dispatcher.UpstreamDispatcher` for
every hosted unit that has downstream units.

``slowdown`` emulates device heterogeneity on a shared development
machine: processing sleeps for ``slowdown * measured_compute`` extra
seconds, scaling a fast host down to a phone-like service rate.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro import metrics as metrics_mod
from repro.core import delivery as delivery_mod
from repro.core import overload as overload_mod
from repro.core.controller import PolicyConfig
from repro.core.exceptions import (DeploymentError, RuntimeStateError,
                                   SerializationError)
from repro.core.function_unit import FunctionUnit, SourceUnit, UnitContext
from repro.core.graph import AppGraph
from repro.core.keyed import KeyRange, KeyRangeTable
from repro.core.recovery import RecoveryConfig, RetainedEntry
from repro.core.state import (InMemoryStateStore, decode_state_snapshot,
                              encode_state_snapshot, snapshot_range)
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.dispatcher import (BatchPayload, UpstreamDispatcher,
                                      instance_id)
from repro.runtime.fabric import Fabric, Mailbox
from repro.runtime.health import HealthMonitor
from repro.runtime.serialization import decode_batch, decode_tuple
from repro.trace import (NULL_TRACER, PROCESS, QUEUE_WAIT, SHED, Span,
                         SpanContext, TraceSink)

#: control kinds a worker rejects when stamped with a stale master epoch.
#: DATA/BATCH are never fenced (a late tuple is still a real tuple) and
#: neither are ACKs — fencing only protects control-plane mutations.
_FENCED_KINDS = frozenset({messages.DEPLOY, messages.START, messages.STOP,
                           messages.WELCOME})


class WorkerRuntime:
    """Hosts and drives function units on one swarm endpoint."""

    def __init__(self, worker_id: str, fabric: Fabric, graph: AppGraph,
                 policy: str = "LRS", slowdown: float = 0.0,
                 source_rate: float = 24.0, seed: Optional[int] = None,
                 control_interval: float = 1.0,
                 control_handler: Optional[Callable] = None,
                 heartbeat_interval: float = 0.0,
                 heartbeat_target: Optional[str] = None,
                 health: Optional[HealthMonitor] = None,
                 policy_config: Optional[PolicyConfig] = None,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 trace: Optional[TraceSink] = None,
                 delivery: Optional[delivery_mod.DeliveryConfig] = None,
                 recovery: Optional[RecoveryConfig] = None
                 ) -> None:
        if slowdown < 0:
            raise RuntimeStateError("slowdown must be non-negative")
        if heartbeat_interval < 0:
            raise RuntimeStateError("heartbeat interval must be >= 0")
        self.worker_id = worker_id
        self.health = health if health is not None else HealthMonitor()
        self.fabric = fabric
        self.graph = graph
        self.policy_name = policy
        self.slowdown = slowdown
        self.source_rate = source_rate
        self.seed = seed
        self.control_interval = control_interval
        #: optional full control-plane config shared by every edge
        #: dispatcher; when set it wins over the scalar knobs above
        self.policy_config = policy_config
        if overload is None and policy_config is not None:
            overload = policy_config.overload
        #: overload-protection knobs (deadline stamping at the source,
        #: source admission control); defaults to everything disabled
        self.overload = (overload if overload is not None
                         else overload_mod.OverloadConfig())
        if delivery is None and policy_config is not None:
            delivery = policy_config.delivery
        #: delivery-semantics knobs (None = historical best-effort)
        self.delivery = delivery
        #: recovery/timing knobs (idle tick, drain pacing, epoch fencing)
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        #: highest master epoch adopted so far; 0 = never-recovered
        #: master, where fencing is inert and frames stay byte-identical
        self._master_epoch = 0
        #: ingress dedup: at-least-once redelivery may hand a worker the
        #: same (edge, seq) twice; the window suppresses the duplicate
        #: before it reaches the unit, so throughput/accuracy counters
        #: never double-count
        self._dedup = (delivery_mod.DedupWindow(delivery.dedup_window)
                       if delivery is not None and delivery.at_least_once
                       else None)
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution); the top-level
        # entry points (Master / SwingRuntime) create one shared registry
        # and thread it through every worker they own.
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        #: TraceSink shared by this worker's units, dispatchers and the
        #: data-plane handler; disabled unless the runtime injects one
        self.tracer = trace if trace is not None else NULL_TRACER
        self._control_handler = control_handler
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_target = heartbeat_target
        self._mailbox: Mailbox = fabric.register(worker_id)
        #: per-tenant pipeline graphs; "" is the constructor graph (the
        #: single-tenant namespace).  Sessions of a shared pool register
        #: their tenants' graphs before deploying to this worker.
        self._graphs: Dict[str, AppGraph] = {"": graph}
        #: hosted units keyed by tenant-scoped unit key ("unit" for the
        #: default tenant, "tenant:unit" otherwise)
        self._units: Dict[str, FunctionUnit] = {}
        self._dispatchers: Dict[str, UpstreamDispatcher] = {}
        #: per-key operator state, keyed like ``_units`` — created for
        #: units that declare ``stateful = True`` and migrated between
        #: workers by key range
        self._key_states: Dict[str, InMemoryStateStore] = {}
        self._running = threading.Event()
        self._started = threading.Event()
        #: set by stop(): interrupts source pacing / heartbeat sleeps so
        #: shutdown returns promptly instead of riding out the interval
        self._stopped = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._source_threads: List[threading.Thread] = []
        self._heartbeat_thread: Optional[threading.Thread] = None
        self.processed_count = 0
        #: per-tenant processed-tuple tally ("" = default tenant)
        self.processed_by_tenant: Dict[str, int] = {}
        #: tenants whose sources are currently running; a tenant-scoped
        #: STOP removes one entry without touching anyone else
        self._started_tenants: set = set()
        #: per-tenant source pacing overrides (tuples/s); tenants absent
        #: here pump at the worker-wide ``source_rate``
        self._tenant_rates: Dict[str, float] = {}
        #: unit keys whose source pump thread is already running
        self._pumping: set = set()
        self.deployed = threading.Event()
        #: True while a DATA message is being handled (drain visibility)
        self._data_active = False
        self._draining_since: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeStateError("worker %s already started" % self.worker_id)
        self._running.set()
        self._stopped.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="worker:%s" % self.worker_id,
                                        daemon=True)
        self._thread.start()
        if self.heartbeat_interval > 0 and self.heartbeat_target:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="heartbeat:%s" % self.worker_id, daemon=True)
            self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        """Periodic liveness beacon toward the master (Background Service).

        Send failures feed the health monitor, whose exponential backoff
        stretches the beacon interval so a dead link is not hammered
        with blocking reconnect attempts.
        """
        while self._running.is_set():
            try:
                self.fabric.send(
                    self.worker_id, self.heartbeat_target,
                    messages.Message(messages.HEARTBEAT,
                                     {"worker_id": self.worker_id}))
                self.health.record_success(self.heartbeat_target)
            except Exception:
                self.health.record_failure(self.heartbeat_target)
            self._stopped.wait(self.heartbeat_interval
                               + self.health.backoff_for(self.heartbeat_target))

    def stop(self, timeout: float = 5.0) -> None:
        self._running.clear()
        self._started.clear()
        self._stopped.set()
        for thread in self._source_threads:
            thread.join(timeout=timeout)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=timeout)
            self._heartbeat_thread = None
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        # The main loop is gone: any partial batch still buffered would
        # be lost silently, so push it out on the caller's thread.
        self._flush_dispatchers(force=True)
        for unit in self._units.values():
            unit.on_stop()

    def join_master(self, master_id: str) -> None:
        """Announce this worker to the master (Fig. 3 step 2)."""
        self.fabric.send(self.worker_id, master_id,
                         messages.join_message(self.worker_id))

    # -- graceful drain ----------------------------------------------------
    def begin_leave(self, master_id: str) -> None:
        """Announce intent to depart: the master stops routing new
        tuples here while this worker keeps serving its queue."""
        self._draining_since = time.monotonic()
        self.fabric.send(self.worker_id, master_id,
                         messages.leaving_message(self.worker_id))

    def leave(self, master_id: str, quiet: Optional[float] = None,
              timeout: float = 10.0) -> float:
        """Graceful drain: LEAVING, finish the mailbox, then depart.

        Blocks until the mailbox has been empty and no DATA message has
        been in flight for *quiet* seconds (default: the recovery
        config's ``drain_quiet``; *timeout* caps it — a drain must
        terminate even if control chatter keeps trickling in).  Returns
        the drain duration, which is also observed into
        ``swing_drain_duration_seconds{device=...}``.
        """
        if quiet is None:
            quiet = self.recovery.drain_quiet
        self.begin_leave(master_id)
        deadline = time.monotonic() + timeout
        last_busy = time.monotonic()
        while time.monotonic() < deadline:
            self._flush_dispatchers(force=True)
            pending = sum(d.pending_batch()
                          for d in list(self._dispatchers.values()))
            if len(self._mailbox) > 0 or self._data_active or pending:
                last_busy = time.monotonic()
            elif time.monotonic() - last_busy >= quiet:
                break
            time.sleep(self.recovery.drain_poll)
        elapsed = time.monotonic() - (self._draining_since
                                      or time.monotonic())
        self._registry.observe_histogram(metrics_mod.DRAIN_SECONDS, elapsed,
                                         device=self.worker_id)
        self.stop()
        self._draining_since = None
        return elapsed

    # -- main loop ---------------------------------------------------------
    def _loop(self) -> None:
        while self._running.is_set():
            try:
                sender_id, message = self._mailbox.get(
                    timeout=self.recovery.worker_idle_tick)
            except TimeoutError:
                # Idle: close any partial batch that has aged past its
                # flush delay (the ~50 ms mailbox timeout bounds how
                # long a trickle of tuples can sit buffered).
                self._flush_dispatchers()
                continue
            try:
                self._handle(sender_id, message)
            except Exception:
                # A poison message must not kill the device's service.
                continue
            finally:
                self._flush_dispatchers()

    def _flush_dispatchers(self, force: bool = False) -> None:
        """Age-flush (or force-flush) every edge dispatcher's batch."""
        for dispatcher in list(self._dispatchers.values()):
            try:
                if force:
                    dispatcher.flush()
                else:
                    dispatcher.maybe_flush()
            except Exception:
                pass  # a failed flush send is already health-accounted

    # -- epoch fencing -----------------------------------------------------
    @property
    def master_epoch(self) -> int:
        """Highest master incarnation this worker has adopted."""
        return self._master_epoch

    def _admit_epoch(self, message: messages.Message) -> bool:
        """Epoch-fence one incoming message.

        Any message stamped with a *newer* epoch makes the worker adopt
        that incarnation.  Control-plane mutations (DEPLOY / START /
        STOP / WELCOME) stamped with an *older* epoch are rejected and
        counted — a zombie predecessor must never un-deploy or stop a
        worker that already follows the recovered master.  Unstamped
        frames are epoch 0, so pre-recovery traffic is unaffected.
        """
        epoch = message.payload.get("epoch", 0)
        if not isinstance(epoch, int) or epoch < 0:
            epoch = 0
        if epoch > self._master_epoch:
            self._master_epoch = epoch
            return True
        if epoch < self._master_epoch and message.kind in _FENCED_KINDS:
            self._registry.increment(metrics_mod.FENCED_TOTAL,
                                     device=self.worker_id,
                                     kind=message.kind)
            return False
        return True

    def _reregister(self, master_id: str) -> None:
        """JOIN a recovered master, carrying the hosted-unit inventory.

        The recovered master reconciles this inventory against its
        checkpoint; the JOIN is idempotent on its side, so retriggered
        re-registrations (WELCOME per heartbeat until one lands) are
        harmless.  The successor also re-hosts the predecessor's
        instances (the sink above all): any edge that dead-marked them
        during the outage is revived here, because an edge whose every
        downstream is dead sends nothing — not even probes — and so
        could never observe the recovery on its own.
        """
        for dispatcher in list(self._dispatchers.values()):
            try:
                dispatcher.revive_worker(master_id)
            except Exception:
                pass  # revival is best-effort; replay sweeps retry
        try:
            self.fabric.send(self.worker_id, master_id,
                             messages.join_message(self.worker_id,
                                                   units=self.hosted_units(),
                                                   epoch=self._master_epoch))
        except Exception:
            pass  # the next heartbeat's WELCOME reply retriggers this

    def _handle(self, sender_id: str, message: messages.Message) -> None:
        if not self._admit_epoch(message):
            return
        if message.kind == messages.DEPLOY:
            self._on_deploy(message)
        elif message.kind == messages.DATA:
            self._data_active = True
            try:
                self._on_data(sender_id, message)
            finally:
                self._data_active = False
        elif message.kind == messages.BATCH:
            self._data_active = True
            try:
                self._on_batch(sender_id, message)
            finally:
                self._data_active = False
        elif message.kind == messages.ACK:
            self._on_ack(message)
        elif message.kind == messages.START:
            self._on_start(message.payload.get("tenant") or None)
        elif message.kind == messages.STOP:
            tenant = message.payload.get("tenant") or None
            if tenant is not None:
                # Tenant-scoped stop: only that tenant's sources halt;
                # the worker (and every other tenant) keeps running.
                self._started_tenants.discard(tenant)
            else:
                self._running.clear()
                self._started.clear()
                self._started_tenants.clear()
        elif message.kind == messages.WELCOME \
                and message.payload.get("epoch", 0):
            # A recovered master is announcing its new incarnation
            # (adopted above): re-register with our inventory.
            self._reregister(sender_id)
        elif self._control_handler is not None:
            self._control_handler(sender_id, message)

    # -- deployment ----------------------------------------------------------
    def register_pipeline(self, tenant_id: str, graph: AppGraph) -> None:
        """Register one tenant's pipeline graph on this worker.

        A shared worker hosts function units from multiple tenants
        concurrently; the units a tenant-scoped DEPLOY names are built
        from that tenant's registered graph.  The empty tenant id is the
        constructor graph.
        """
        graph.validate()
        self._graphs[tenant_id] = graph

    def set_tenant_rate(self, tenant_id: str, rate: float) -> None:
        """Override one tenant's source pacing (tuples per second)."""
        if rate < 0:
            raise RuntimeStateError("tenant rate must be >= 0")
        self._tenant_rates[tenant_id] = rate

    def _on_deploy(self, message: messages.Message) -> None:
        tenant = message.payload.get("tenant", "")
        unit_names = message.payload.get("unit_names", [])
        downstream_map = message.payload.get("downstream_map", {})
        if tenant not in self._graphs:
            return  # unknown tenant: its pipeline was never registered
        desired = {self.unit_key(name, tenant) for name in unit_names}
        for name in unit_names:
            if self.unit_key(name, tenant) not in self._units:
                self._activate(name, tenant)
        # Reconcile ONLY this tenant's units: a tenant-scoped deploy
        # must never tear down another tenant's instances.
        for key in list(self._units):
            if self._key_tenant(key) == tenant and key not in desired:
                self._deactivate(key)
        for edge, instances in downstream_map.items():
            dispatcher = self._dispatchers.get(edge)
            if dispatcher is not None:
                dispatcher.set_downstreams(instances)
                self._maybe_bootstrap_key_table(dispatcher, instances)
        self.deployed.set()

    def _maybe_bootstrap_key_table(self, dispatcher: UpstreamDispatcher,
                                   instances) -> None:
        """Seed a keyed edge's range table on its first deploy.

        The table partitions the key space evenly over the sorted
        downstream instances, so every worker that hosts this edge's
        upstream derives the identical table without coordination.
        Later deploys leave an existing table alone — splits and
        migrations own it from then on.
        """
        if self.policy_config is None or self.policy_config.keyed is None:
            return
        if dispatcher.controller.key_table is not None or not instances:
            return
        dispatcher.controller.set_key_table(
            KeyRangeTable.bootstrap(sorted(instances)))

    @staticmethod
    def unit_key(unit_name: str, tenant: str = "") -> str:
        """Hosted-unit key: plain name for the default tenant,
        ``tenant:unit`` otherwise."""
        if not tenant:
            return unit_name
        return "%s:%s" % (tenant, unit_name)

    @staticmethod
    def edge_key(unit_name: str, downstream_unit: str,
                 tenant: str = "") -> str:
        """Dispatcher key for the logical edge unit -> downstream_unit.

        Tenant-scoped (``tenant:unit>downstream``) for non-default
        tenants; the key rides on every DATA/BATCH/ACK payload, so ACK
        routing stays tenant-correct without extra lookups.
        """
        key = "%s>%s" % (unit_name, downstream_unit)
        if not tenant:
            return key
        return "%s:%s" % (tenant, key)

    @staticmethod
    def _key_tenant(key: str) -> str:
        """Tenant of a scoped unit/edge key ("" for the default)."""
        tenant, sep, _rest = key.partition(":")
        return tenant if sep else ""

    def _activate(self, unit_name: str, tenant: str = "") -> None:
        graph = self._graphs[tenant]
        spec = graph.unit(unit_name)
        unit = spec.factory()
        if not isinstance(unit, FunctionUnit):
            raise DeploymentError("factory for %r did not build a FunctionUnit"
                                  % unit_name)
        downstream_units = graph.downstreams(unit_name)
        edge_dispatchers = []
        for downstream_unit in downstream_units:
            # One dispatcher per logical edge: a tuple goes to EVERY
            # downstream unit, routed among that unit's device replicas.
            key = self.edge_key(unit_name, downstream_unit, tenant)
            dispatcher = UpstreamDispatcher(
                unit_name,
                send=lambda target, msg: self.fabric.send(self.worker_id,
                                                          target, msg),
                policy=self.policy_name, seed=self.seed,
                control_interval=self.control_interval, edge=key,
                health=self.health, config=self.policy_config,
                registry=self._registry, trace=self.tracer,
                device_id=self.worker_id, delivery=self.delivery,
                tenant=tenant)
            self._dispatchers[key] = dispatcher
            edge_dispatchers.append(dispatcher)
        emit = self._make_emit(edge_dispatchers)
        unit_key = self.unit_key(unit_name, tenant)
        state = None
        if getattr(unit, "stateful", False):
            # Worker-hosted per-key state: survives across tuples, is
            # snapshotted by key range for live migration.
            state = self._key_states.setdefault(unit_key,
                                                InMemoryStateStore())
        context = UnitContext(unit_name=unit_name,
                              instance_id=instance_id(unit_name, self.worker_id),
                              emit=emit, now=time.monotonic, state=state)
        unit.bind(context)
        unit.on_start()
        self._units[unit_key] = unit

    def _make_emit(self, dispatchers):
        def _emit(data: DataTuple) -> None:
            for dispatcher in dispatchers:
                dispatcher.dispatch(data)
        return _emit

    def _deactivate(self, unit_key: str) -> None:
        unit = self._units.pop(unit_key, None)
        if unit is not None:
            unit.on_stop()
        self._key_states.pop(unit_key, None)
        prefix = "%s>" % unit_key
        for key in [key for key in self._dispatchers if key.startswith(prefix)]:
            del self._dispatchers[key]

    # -- data plane ------------------------------------------------------
    def _shed_labels(self, reason: str, tenant: str) -> Dict[str, str]:
        labels = {"reason": reason, "queue": "worker:%s" % self.worker_id}
        if tenant:
            labels["tenant"] = tenant
        return labels

    def _count_deduped(self, tenant: str) -> None:
        labels = {"queue": "worker:%s" % self.worker_id}
        if tenant:
            labels["tenant"] = tenant
        self._registry.increment(metrics_mod.DEDUPED_TOTAL, **labels)

    def _on_data(self, sender_id: str, message: messages.Message) -> None:
        unit_name = message.payload["unit"]
        tenant = message.payload.get("tenant", "")
        unit = self._units.get(self.unit_key(unit_name, tenant))
        if unit is None:
            return
        data = decode_tuple(message.payload["tuple"])
        data.delivery_attempt = message.payload.get("delivery_attempt", 1)
        if self._dedup is not None and self._dedup.seen(
                (message.payload.get("edge", ""), data.seq)):
            # At-least-once redelivery raced the original: suppress the
            # duplicate before the unit sees it, but still ACK so the
            # upstream releases its replay retention.
            self._count_deduped(tenant)
            ack = messages.ack_message(message.payload["seq"],
                                       message.payload["sent_at"], 0.0,
                                       epoch=self._master_epoch)
            ack.payload["edge"] = message.payload.get("edge", "")
            try:
                self.fabric.send(self.worker_id, sender_id, ack)
            except Exception:
                pass
            return
        started = time.monotonic()
        tracer = self.tracer
        sampled = (data.trace.sampled if data.trace is not None
                   else tracer.sampled(data.seq))
        if tracer.enabled:
            # Mailbox wait + wire time, as observed by the shared
            # in-process clock (sent_at is the sender's stamp).
            tracer.emit(Span(QUEUE_WAIT, data.seq,
                             message.payload["sent_at"], started,
                             device_id=self.worker_id,
                             hop="worker:%s" % self.worker_id,
                             detail=unit_name, tenant=tenant),
                        sampled=sampled)
        if data.expired(started):
            # Too stale to be useful: skip the compute but still ACK, so
            # the upstream's failure detector sees a healthy worker (a
            # shed is a policy decision, not a fault) and its ACK
            # accounting does not double-count the tuple as lost.
            self._registry.increment(
                metrics_mod.SHED_TOTAL,
                **self._shed_labels(overload_mod.REASON_EXPIRED, tenant))
            if tracer.enabled:
                tracer.emit(Span(SHED, data.seq, started, started,
                                 device_id=self.worker_id,
                                 hop="worker:%s" % self.worker_id,
                                 detail=overload_mod.REASON_EXPIRED,
                                 tenant=tenant),
                            sampled=sampled)
            ack = messages.ack_message(message.payload["seq"],
                                       message.payload["sent_at"], 0.0,
                                       epoch=self._master_epoch)
            ack.payload["edge"] = message.payload.get("edge", "")
            try:
                self.fabric.send(self.worker_id, sender_id, ack)
            except Exception:
                pass
            return
        unit.process_data(data)
        elapsed = time.monotonic() - started
        if self.slowdown > 0.0:
            time.sleep(self.slowdown * max(elapsed, 1e-6))
            elapsed = time.monotonic() - started
        if tracer.enabled:
            tracer.emit(Span(PROCESS, data.seq, started, started + elapsed,
                             device_id=self.worker_id,
                             hop="worker:%s" % self.worker_id,
                             detail=unit_name, tenant=tenant),
                        sampled=sampled)
        self.processed_count += 1
        self.processed_by_tenant[tenant] = \
            self.processed_by_tenant.get(tenant, 0) + 1
        ack = messages.ack_message(message.payload["seq"],
                                   message.payload["sent_at"], elapsed,
                                   epoch=self._master_epoch)
        ack.payload["edge"] = message.payload.get("edge", "")
        try:
            self.fabric.send(self.worker_id, sender_id, ack)
        except Exception:
            pass  # the upstream is gone; nothing to acknowledge

    def _on_batch(self, sender_id: str, message: messages.Message) -> None:
        """Process one batched flush: many tuples, one ACK.

        Mirrors :meth:`_on_data` per tuple (dedup, expiry shed, spans,
        unit processing), but acknowledges the whole batch with a single
        timestamp echo carrying the mean per-tuple compute time.  The
        ACK is sent even when every member was deduped or shed — the
        upstream's per-batch retention must still be released.  A frame
        that fails to decode gets no ACK at all: the upstream's replay
        machinery redelivers or expires it.
        """
        payload = message.payload
        unit_name = payload["unit"]
        tenant = payload.get("tenant", "")
        unit = self._units.get(self.unit_key(unit_name, tenant))
        if unit is None:
            return
        try:
            batch = decode_batch(payload["batch"])
        except SerializationError:
            # Poison frame: no ACK, so upstream replay/expiry handles
            # the tuples — but the drop itself must be loud.
            self._registry.increment(metrics_mod.DROPPED_TOTAL,
                                     reason="corrupt_batch",
                                     link="?>%s" % self.worker_id)
            return
        edge = payload.get("edge", "")
        attempt = payload.get("delivery_attempt", 1)
        sent_at = payload["sent_at"]
        tracer = self.tracer
        hop = "worker:%s" % self.worker_id
        busy = 0.0
        for data in batch:
            data.delivery_attempt = attempt
            if self._dedup is not None and self._dedup.seen((edge, data.seq)):
                self._count_deduped(tenant)
                continue
            started = time.monotonic()
            sampled = (data.trace.sampled if data.trace is not None
                       else tracer.sampled(data.seq))
            if tracer.enabled:
                tracer.emit(Span(QUEUE_WAIT, data.seq, sent_at, started,
                                 device_id=self.worker_id, hop=hop,
                                 detail=unit_name, tenant=tenant),
                            sampled=sampled)
            if data.expired(started):
                self._registry.increment(
                    metrics_mod.SHED_TOTAL,
                    **self._shed_labels(overload_mod.REASON_EXPIRED, tenant))
                if tracer.enabled:
                    tracer.emit(Span(SHED, data.seq, started, started,
                                     device_id=self.worker_id, hop=hop,
                                     detail=overload_mod.REASON_EXPIRED,
                                     tenant=tenant),
                                sampled=sampled)
                continue
            unit.process_data(data)
            elapsed = time.monotonic() - started
            if self.slowdown > 0.0:
                time.sleep(self.slowdown * max(elapsed, 1e-6))
                elapsed = time.monotonic() - started
            if tracer.enabled:
                tracer.emit(Span(PROCESS, data.seq, started, started + elapsed,
                                 device_id=self.worker_id, hop=hop,
                                 detail=unit_name, tenant=tenant),
                            sampled=sampled)
            self.processed_count += 1
            self.processed_by_tenant[tenant] = \
                self.processed_by_tenant.get(tenant, 0) + 1
            busy += elapsed
        seqs = payload.get("seqs") or [data.seq for data in batch]
        ack = messages.batch_ack_message(seqs, sent_at,
                                         busy / max(1, len(batch)),
                                         epoch=self._master_epoch)
        ack.payload["edge"] = edge
        try:
            self.fabric.send(self.worker_id, sender_id, ack)
        except Exception:
            pass  # the upstream is gone; nothing to acknowledge

    def _on_ack(self, message: messages.Message) -> None:
        dispatcher = self._dispatchers.get(message.payload.get("edge", ""))
        if dispatcher is None:
            return
        seqs = message.payload.get("seqs")
        if seqs:
            dispatcher.on_ack_batch(seqs, message.payload["processing_delay"])
        else:
            dispatcher.on_ack(message.payload["seq"],
                              message.payload["processing_delay"])

    # -- sources ------------------------------------------------------------
    def _on_start(self, tenant: Optional[str] = None) -> None:
        """Start source pumps: globally, or for one tenant's pipeline.

        A global START (``tenant is None``) spins up every hosted
        source and marks every hosted tenant started — the historical
        single-tenant behavior.  A tenant-scoped START only touches
        that tenant's sources, so a shared pool can bring pipelines up
        and down independently.
        """
        if tenant is None:
            if self._started.is_set():
                return
            self._started.set()
            self._started_tenants.update(
                self._key_tenant(key) for key in self._units)
            self._started_tenants.add("")
            targets = list(self._units.items())
        else:
            self._started.set()
            self._started_tenants.add(tenant)
            targets = [(key, unit) for key, unit in self._units.items()
                       if self._key_tenant(key) == tenant]
        for unit_key, unit in targets:
            if isinstance(unit, SourceUnit) and unit_key not in self._pumping:
                self._pumping.add(unit_key)
                thread = threading.Thread(
                    target=self._pump_source, args=(unit_key, unit),
                    name="source:%s@%s" % (unit_key, self.worker_id),
                    daemon=True)
                thread.start()
                self._source_threads.append(thread)

    def _source_backpressured(self, unit_key: str) -> Optional[str]:
        """Shed-at-source decision for *unit_key*'s next tuple.

        Combines the local mailbox depth with the edge dispatchers'
        all-downstreams-dead signal through the shared
        :func:`~repro.core.overload.source_admission` policy.  Inactive
        (always admits) unless some overload knob is switched on, so the
        historical keep-emitting-and-count-losses behavior is preserved
        by default.
        """
        if not self.overload.enabled:
            return None
        prefix = "%s>" % unit_key
        edge_dispatchers = [d for key, d in self._dispatchers.items()
                            if key.startswith(prefix)]
        unsatisfiable = bool(edge_dispatchers) and all(
            d.unsatisfiable() for d in edge_dispatchers)
        return overload_mod.source_admission(len(self._mailbox),
                                             unsatisfiable, self.overload)

    def _pump_source(self, unit_key: str, unit: SourceUnit) -> None:
        tenant = self._key_tenant(unit_key)
        rate = self._tenant_rates.get(tenant, self.source_rate)
        interval = 1.0 / rate if rate > 0 else 0.0
        try:
            while (self._running.is_set() and self._started.is_set()
                   and tenant in self._started_tenants):
                started = time.monotonic()
                reason = self._source_backpressured(unit_key)
                if reason is not None:
                    # Admission control: refuse doomed work before spending
                    # generate/encode/transmit effort on it.
                    labels = {"reason": reason, "source": unit_key}
                    if tenant:
                        labels["tenant"] = tenant
                    self._registry.increment(metrics_mod.SHED_TOTAL, **labels)
                else:
                    data = unit.generate()
                    if data is None:
                        break
                    if tenant and not data.tenant:
                        # Stamp ownership at the origin; the codec carries
                        # it across every downstream hop.
                        data.tenant = tenant
                    if self.overload.ttl is not None and data.deadline is None:
                        base = data.created_at if data.created_at else started
                        data.deadline = self.overload.deadline_for(base)
                    if self.tracer.enabled and data.trace is None:
                        # Stamp the sampling decision once, at the origin;
                        # it rides the codec to every downstream hop.
                        data.trace = SpanContext(
                            sampled=self.tracer.sampled(data.seq),
                            origin=unit_key)
                    unit.context.emit(data)  # fans out to every downstream edge
                if interval > 0:
                    leftover = interval - (time.monotonic() - started)
                    if leftover > 0:
                        # Interruptible pacing: stop() sets the event, so
                        # shutdown never waits out a full source interval.
                        self._stopped.wait(leftover)
        finally:
            # The pump exited (stop, tenant stop, or source exhaustion):
            # a later START for this tenant may spawn a fresh pump.
            self._pumping.discard(unit_key)

    # -- introspection -----------------------------------------------------
    def unit(self, unit_name: str, tenant: str = "") -> FunctionUnit:
        try:
            return self._units[self.unit_key(unit_name, tenant)]
        except KeyError:
            raise DeploymentError("unit %r not deployed on %s"
                                  % (self.unit_key(unit_name, tenant),
                                     self.worker_id)) from None

    def hosted_units(self) -> List[str]:
        return sorted(self._units)

    # -- control-plane checkpoint hooks ----------------------------------
    def dedup_snapshot(self) -> List[tuple]:
        """Ingress-dedup window keys, oldest first (checkpoint input)."""
        if self._dedup is None:
            return []
        return [tuple(key) for key in self._dedup.snapshot()]

    def restore_dedup(self, keys) -> None:
        """Seed the ingress-dedup window from a checkpoint.

        A restarted master's co-located sink must not double-deliver
        tuples its predecessor already delivered; restoring the window
        before data flows again is what makes redelivered retention an
        absorbed duplicate instead of a double count.
        """
        if self._dedup is not None:
            self._dedup.restore([tuple(key) for key in keys])

    def export_retention(self) -> Dict[str, List[tuple]]:
        """Per-edge replay-retention export across this runtime's
        dispatchers (checkpoint input; empty edges omitted)."""
        exported = {}
        for edge, dispatcher in list(self._dispatchers.items()):
            items = dispatcher.controller.export_retention()
            if items:
                exported[edge] = items
        return exported

    def import_retention(self, edge: str,
                         entries: List[RetainedEntry]) -> int:
        """Re-retain checkpointed *entries* on *edge*'s dispatcher.

        Each entry lands unassigned; the controller's next sweep
        redelivers it to a live downstream, whose dedup absorbs any
        member that was in fact already delivered.  Returns how many
        entries were imported (0 when the edge is not deployed here).
        """
        dispatcher = self._dispatchers.get(edge)
        if dispatcher is None:
            return 0
        items = []
        for entry in entries:
            if len(entry.seqs) > 1:
                context: object = BatchPayload(entry.frame, list(entry.seqs))
            else:
                context = entry.frame
            items.append((entry.seq, entry.attempt, entry.deadline, context,
                          tuple(entry.seqs)))
        return dispatcher.controller.import_retention(items)

    # -- keyed state hosting ----------------------------------------------
    def state_store(self, unit_name: str,
                    tenant: str = "") -> InMemoryStateStore:
        """The per-key state store of a hosted stateful unit."""
        key = self.unit_key(unit_name, tenant)
        try:
            return self._key_states[key]
        except KeyError:
            raise DeploymentError("no keyed state for %r on %s"
                                  % (key, self.worker_id)) from None

    def export_key_state(self, unit_name: str, key_range: KeyRange,
                         tenant: str = "") -> bytes:
        """Extract one key range of a unit's state as a wire snapshot.

        The entries leave this worker's store — after a successful
        install on the new owner the range no longer lives here.
        """
        store = self.state_store(unit_name, tenant)
        return encode_state_snapshot(
            snapshot_range(store, tenant, unit_name, key_range))

    def import_key_state(self, frame: bytes) -> int:
        """Install a migrated state snapshot on this worker.

        Returns the number of keys installed.  The target unit must be
        hosted (and stateful) here already — routing is flipped only
        after the install succeeds.
        """
        snapshot = decode_state_snapshot(frame)
        key = self.unit_key(snapshot.unit, snapshot.tenant)
        if key not in self._units:
            raise DeploymentError("cannot install state for %r: unit not "
                                  "hosted on %s" % (key, self.worker_id))
        store = self._key_states.setdefault(key, InMemoryStateStore())
        store.install(snapshot.entries)
        return len(snapshot.entries)

    def export_key_ranges(self) -> Dict[str, List[tuple]]:
        """Per-edge key-range assignments (checkpoint input)."""
        exported = {}
        for edge, dispatcher in list(self._dispatchers.items()):
            table = dispatcher.controller.key_table
            if table is not None:
                exported[edge] = [list(item) for item in table.snapshot()]
        return exported

    def import_key_ranges(self, edge: str, entries) -> bool:
        """Adopt checkpointed key-range assignments for *edge*.

        Replaces the bootstrap table the deploy installed, so a
        recovered master preserves every split/migration its
        predecessor performed.
        """
        dispatcher = self._dispatchers.get(edge)
        if dispatcher is None:
            return False
        dispatcher.controller.set_key_table(
            KeyRangeTable.restore(tuple(item) for item in entries))
        return True

    @property
    def mailbox(self) -> Mailbox:
        """This worker's fabric mailbox (fair-share budgets install here)."""
        return self._mailbox

    def dispatcher(self, unit_name: str,
                   downstream_unit: Optional[str] = None,
                   tenant: str = "") -> UpstreamDispatcher:
        """The dispatcher for ``unit_name`` (qualified by edge if needed)."""
        if downstream_unit is not None:
            key = self.edge_key(unit_name, downstream_unit, tenant)
            if key in self._dispatchers:
                return self._dispatchers[key]
            raise DeploymentError("edge %r not deployed on %s"
                                  % (key, self.worker_id))
        prefix = "%s>" % self.unit_key(unit_name, tenant)
        matches = [d for key, d in self._dispatchers.items()
                   if key.startswith(prefix)]
        if len(matches) != 1:
            raise DeploymentError(
                "unit %r has %d dispatchers on %s; qualify the edge"
                % (unit_name, len(matches), self.worker_id))
        return matches[0]
