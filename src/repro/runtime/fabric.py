"""Message fabric: named endpoints exchanging framed messages.

The runtime addresses peers by worker ID, not by socket: a *fabric*
binds IDs to transports.  Two fabrics are provided:

* :class:`InProcFabric` — queue-backed mailboxes for worker threads in
  one process (Swing's threads co-located on devices);
* :class:`TcpFabric` — each endpoint runs a TCP listener; peers dial
  each other lazily and identify themselves with a hello frame, giving
  the direct worker-to-worker connections of the paper's Step 3.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro import metrics as metrics_mod
from repro.core import multitenant
from repro.core import overload as overload_mod
from repro.core.exceptions import DiscoveryError, RuntimeStateError
from repro.runtime.channels import ChannelClosed, TcpChannel, TcpListener
from repro.runtime import messages as messages_mod
from repro.runtime.messages import Message
from repro.runtime.serialization import decode_value, encode_value


class Mailbox:
    """Inbound message queue of one endpoint.

    With an :class:`~repro.core.overload.OverloadConfig` the queue is
    bounded: a full mailbox sheds DATA messages per the configured drop
    policy (``drop_oldest`` / ``drop_newest``) or blocks the producer
    (``block``) — the runtime's backpressure point.  Control messages
    (DEPLOY, ACK, heartbeats...) are never shed: losing them would wedge
    the control plane, and their volume is bounded by design.  Sheds are
    counted as ``swing_tuples_shed_total{reason=queue_full}`` and the
    current depth is exported as the ``swing_queue_depth`` gauge.
    """

    def __init__(self, owner_id: str,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        self.owner_id = owner_id
        self.overload = (overload if overload is not None
                         else overload_mod.OverloadConfig())
        # Internal component: an uninjected registry means a private
        # one, never the process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._items: Deque[Tuple[str, Message]] = deque()
        self._cond = threading.Condition()
        self.shed_count = 0
        self.max_depth = 0
        self._depth_gauge = self._registry.gauge(metrics_mod.QUEUE_DEPTH,
                                                 queue="mailbox:%s" % owner_id)
        # -- multi-tenant accounting / fair-share admission --------------
        #: queued data-plane tuples per tenant ("" = default tenant)
        self.tenant_depths: Dict[str, int] = {}
        self._tenant_budgets: Optional[Dict[str, int]] = None
        self._tenant_priorities: Dict[str, int] = {}

    @property
    def capacity(self) -> Optional[int]:
        return self.overload.queue_capacity

    #: message kinds carrying data-plane tuples: the only sheddable ones
    _DATA_KINDS = frozenset({messages_mod.DATA, messages_mod.BATCH})

    @classmethod
    def _droppable(cls, message: Message) -> bool:
        return getattr(message, "kind", None) in cls._DATA_KINDS

    @staticmethod
    def _tuple_count(message: Message) -> int:
        """Tuples carried by one data-plane message (batches hold many)."""
        if getattr(message, "kind", None) == messages_mod.BATCH:
            return max(1, len(message.payload.get("seqs", ())))
        return 1

    @staticmethod
    def _message_tenant(message: Message) -> str:
        payload = getattr(message, "payload", None)
        if isinstance(payload, dict):
            return payload.get("tenant", "")
        return ""

    def set_tenant_budgets(self, budgets: Dict[str, int],
                           priorities: Optional[Dict[str, int]] = None
                           ) -> None:
        """Switch this mailbox to cross-tenant fair-share admission.

        With budgets installed (and a bounded capacity), data-plane
        arrivals go through :func:`repro.core.multitenant.fair_admission`
        instead of the single-tenant drop policy: an over-budget tenant
        sheds its own newest tuples, an under-budget arrival evicts from
        the most-over-budget tenant.  Never engaged at N=1, so the
        single-tenant behavior stays byte-identical.
        """
        with self._cond:
            self._tenant_budgets = dict(budgets) if budgets else None
            self._tenant_priorities = dict(priorities or {})

    def _shed(self, count: int = 1, tenant: str = "") -> None:
        self.shed_count += count
        labels = {"reason": overload_mod.REASON_QUEUE_FULL,
                  "queue": "mailbox:%s" % self.owner_id}
        if tenant:
            labels["tenant"] = tenant
        self._registry.increment(metrics_mod.SHED_TOTAL, amount=count,
                                 **labels)

    def put(self, sender_id: str, message: Message,
            timeout: Optional[float] = None) -> bool:
        """Enqueue one message; returns False when it was shed.

        Only DATA messages participate in shedding/blocking; control
        traffic is always admitted immediately.
        """
        entry = (sender_id, message)
        droppable = self._droppable(message)
        tenant = self._message_tenant(message) if droppable else ""
        with self._cond:
            if self.capacity is not None and droppable:
                if self._tenant_budgets is not None:
                    decision = multitenant.fair_admission(
                        tenant, self.tenant_depths, self._tenant_budgets,
                        self.capacity, self._tenant_priorities)
                    if decision.action == overload_mod.REJECT:
                        self._shed(self._tuple_count(message), tenant)
                        return False
                    if decision.action == overload_mod.EVICT_OLDEST:
                        self._evict_oldest_droppable(decision.victim)
                else:
                    action = overload_mod.admission(
                        len(self._items), self.capacity,
                        self.overload.drop_policy)
                    if action == overload_mod.WAIT:
                        deadline = (None if timeout is None
                                    else time.monotonic() + timeout)
                        while len(self._items) >= self.capacity:
                            leftover = (None if deadline is None
                                        else deadline - time.monotonic())
                            if leftover is not None and leftover <= 0:
                                self._shed(self._tuple_count(message), tenant)
                                return False
                            self._cond.wait(timeout=leftover)
                    elif action == overload_mod.EVICT_OLDEST:
                        if not self._evict_oldest_droppable():
                            # Nothing sheddable queued; admit over capacity
                            # rather than lose control-plane traffic.
                            pass
                    elif action == overload_mod.REJECT:
                        self._shed(self._tuple_count(message), tenant)
                        return False
            self._items.append(entry)
            if droppable:
                self.tenant_depths[tenant] = (
                    self.tenant_depths.get(tenant, 0)
                    + self._tuple_count(message))
            self.max_depth = max(self.max_depth, len(self._items))
            self._depth_gauge.set(len(self._items))
            self._cond.notify_all()
        return True

    def _forget_tenant_depth(self, message: Message) -> None:
        tenant = self._message_tenant(message)
        depth = self.tenant_depths.get(tenant, 0) - self._tuple_count(message)
        if depth > 0:
            self.tenant_depths[tenant] = depth
        else:
            self.tenant_depths.pop(tenant, None)

    def _evict_oldest_droppable(self, tenant: Optional[str] = None) -> bool:
        """Drop the oldest DATA/BATCH entry in place; False when none queued.

        With *tenant* given, only that tenant's entries are candidates
        (fair-share eviction never touches another tenant's tuples).
        """
        for index, (_sender, queued) in enumerate(self._items):
            if not self._droppable(queued):
                continue
            if tenant is not None and self._message_tenant(queued) != tenant:
                continue
            del self._items[index]
            self._forget_tenant_depth(queued)
            self._shed(self._tuple_count(queued),
                       self._message_tenant(queued))
            return True
        return False

    def get(self, timeout: Optional[float] = None) -> Tuple[str, Message]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._items:
                leftover = (None if deadline is None
                            else deadline - time.monotonic())
                if leftover is not None and leftover <= 0:
                    raise TimeoutError("mailbox %r empty" % self.owner_id)
                self._cond.wait(timeout=leftover)
            entry = self._items.popleft()
            if self._droppable(entry[1]):
                self._forget_tenant_depth(entry[1])
            self._depth_gauge.set(len(self._items))
            self._cond.notify_all()
        return entry

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


class Fabric:
    """Abstract endpoint directory + message transport."""

    def register(self, endpoint_id: str) -> Mailbox:
        raise NotImplementedError

    def unregister(self, endpoint_id: str) -> None:
        """Free an endpoint registration so a successor can reclaim the
        ID (a crashed master's endpoint must not squat forever).  The
        default is a no-op for transports without a shared directory."""

    def send(self, sender_id: str, target_id: str, message: Message) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (no-op for in-process fabrics)."""


class InProcFabric(Fabric):
    """Thread-safe in-process fabric; delivery is immediate.

    ``overload`` bounds every registered mailbox (shared knobs for all
    endpoints); the default keeps the historical unbounded queues.
    """

    def __init__(self,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        self._mailboxes: Dict[str, Mailbox] = {}
        self._lock = threading.Lock()
        self._overload = overload
        self._registry = registry

    def register(self, endpoint_id: str) -> Mailbox:
        with self._lock:
            if endpoint_id in self._mailboxes:
                raise RuntimeStateError("endpoint %r already registered"
                                        % endpoint_id)
            mailbox = Mailbox(endpoint_id, overload=self._overload,
                              registry=self._registry)
            self._mailboxes[endpoint_id] = mailbox
            return mailbox

    def unregister(self, endpoint_id: str) -> None:
        with self._lock:
            self._mailboxes.pop(endpoint_id, None)

    def send(self, sender_id: str, target_id: str, message: Message) -> None:
        with self._lock:
            mailbox = self._mailboxes.get(target_id)
        if mailbox is None:
            raise ChannelClosed("endpoint %r is gone" % target_id)
        mailbox.put(sender_id, message)

    def endpoint_ids(self):
        with self._lock:
            return sorted(self._mailboxes)


class TcpFabric(Fabric):
    """Direct TCP mesh: one listener per endpoint, lazy dialing.

    The first frame on every dialed connection is a hello carrying the
    dialer's endpoint ID, so the acceptor can attribute inbound traffic.
    """

    def __init__(self, endpoint_id: str, host: str = "127.0.0.1",
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        self.endpoint_id = endpoint_id
        self._listener = TcpListener(host=host, port=0)
        self.address: Tuple[str, int] = self._listener.address
        self._mailbox = Mailbox(endpoint_id, overload=overload,
                                registry=registry)
        self._directory: Dict[str, Tuple[str, int]] = {}
        self._outgoing: Dict[str, TcpChannel] = {}
        self._lock = threading.Lock()
        self._running = True
        #: live reader threads mapped to their accepted channels, so
        #: close() can unblock each blocking recv before joining
        self._readers: Dict[threading.Thread, TcpChannel] = {}
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="fabric-accept:%s" % endpoint_id, daemon=True)
        self._accept_thread.start()

    # -- directory ---------------------------------------------------------
    def learn(self, endpoint_id: str, address: Tuple[str, int]) -> None:
        """Record where *endpoint_id* listens (from master's DEPLOY)."""
        with self._lock:
            self._directory[endpoint_id] = (str(address[0]), int(address[1]))

    def register(self, endpoint_id: str) -> Mailbox:
        if endpoint_id != self.endpoint_id:
            raise RuntimeStateError("a TcpFabric hosts exactly one endpoint")
        return self._mailbox

    # -- data path -----------------------------------------------------------
    def send(self, sender_id: str, target_id: str, message: Message) -> None:
        if target_id == self.endpoint_id:
            # Local delivery (e.g. the master deploying to itself).
            self._mailbox.put(sender_id, message)
            return
        frame = message.encode()
        # A cached channel may be stale (peer restarted, NAT rebind); one
        # fresh dial distinguishes "stale cache" from "peer is gone".
        for attempt in range(2):
            channel = self._channel_to(target_id)
            try:
                channel.send(frame)
                return
            except ChannelClosed:
                with self._lock:
                    if self._outgoing.get(target_id) is channel:
                        self._outgoing.pop(target_id, None)
                if attempt > 0:
                    raise

    def _channel_to(self, target_id: str) -> TcpChannel:
        with self._lock:
            channel = self._outgoing.get(target_id)
            if channel is not None and not channel.closed:
                return channel
            address = self._directory.get(target_id)
        if address is None:
            raise DiscoveryError("no known address for endpoint %r" % target_id)
        channel = TcpChannel.connect(address[0], address[1])
        channel.send(encode_value({"hello": self.endpoint_id}))
        with self._lock:
            self._outgoing[target_id] = channel
        return channel

    # -- accept path ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept(timeout=0.25)
            except TimeoutError:
                continue
            except OSError:
                return
            reader = threading.Thread(target=self._read_loop, args=(channel,),
                                      name="fabric-read:%s" % self.endpoint_id,
                                      daemon=True)
            with self._lock:
                # Prune readers that already exited: a long-lived fabric
                # accepting many short connections must not keep one
                # thread record per connection ever made.
                for done in [t for t in self._readers if not t.is_alive()]:
                    del self._readers[done]
                self._readers[reader] = channel
            reader.start()

    def _read_loop(self, channel: TcpChannel) -> None:
        try:
            hello = decode_value(channel.recv(timeout=5.0))
            peer_id = hello.get("hello") if isinstance(hello, dict) else None
            if not isinstance(peer_id, str):
                return
            while self._running:
                frame = channel.recv(timeout=None)
                self._mailbox.put(peer_id, Message.decode(frame))
        except (ChannelClosed, TimeoutError, OSError):
            pass
        finally:
            channel.close()
            with self._lock:
                self._readers.pop(threading.current_thread(), None)

    def reader_count(self) -> int:
        """Live inbound reader threads (introspection for leak tests)."""
        with self._lock:
            return sum(1 for t in self._readers if t.is_alive())

    def close(self) -> None:
        self._running = False
        self._listener.close()
        with self._lock:
            for channel in self._outgoing.values():
                channel.close()
            self._outgoing.clear()
            readers = dict(self._readers)
        # Closing each accepted channel unblocks its reader's recv().
        for channel in readers.values():
            channel.close()
        self._accept_thread.join(timeout=2.0)
        for thread in readers:
            thread.join(timeout=2.0)
