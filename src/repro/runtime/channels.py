"""Transport channels between runtime threads and processes.

Two implementations behind one interface:

* :class:`InProcChannel` — a thread-safe queue pair for threads in one
  process (the common case: one Python process simulating a swarm of
  worker threads, like Swing's co-located master/worker threads).
* :class:`TcpChannel` — real localhost TCP sockets with length-prefixed
  framing, exercising the same code path an Android deployment would.

Channels move opaque byte payloads; serialization is layered above.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Optional, Tuple

from repro.core.exceptions import RuntimeStateError, SerializationError

_LENGTH = struct.Struct(">I")

#: refuse absurd frames rather than allocating unbounded memory
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ChannelClosed(RuntimeStateError):
    """Raised when reading from or writing to a closed channel."""


class Channel:
    """Bidirectional, message-oriented transport endpoint."""

    def send(self, payload: bytes) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> bytes:
        """Next message; raises :class:`ChannelClosed` at end of stream,
        :class:`TimeoutError` when *timeout* elapses."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class InProcChannel(Channel):
    """One endpoint of an in-process channel pair."""

    _SENTINEL = object()

    def __init__(self, outbox: "queue.Queue", inbox: "queue.Queue") -> None:
        self._outbox = outbox
        self._inbox = inbox
        self._closed = threading.Event()

    @classmethod
    def pair(cls) -> Tuple["InProcChannel", "InProcChannel"]:
        """Create two connected endpoints."""
        a_to_b: "queue.Queue" = queue.Queue()
        b_to_a: "queue.Queue" = queue.Queue()
        return cls(a_to_b, b_to_a), cls(b_to_a, a_to_b)

    def send(self, payload: bytes) -> None:
        if self._closed.is_set():
            raise ChannelClosed("send on closed channel")
        self._outbox.put(payload)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if self._closed.is_set():
            raise ChannelClosed("recv on closed channel")
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("channel recv timed out") from None
        if item is self._SENTINEL:
            self._closed.set()
            raise ChannelClosed("peer closed the channel")
        return item

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._outbox.put(self._SENTINEL)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class TcpChannel(Channel):
    """Length-prefixed framing over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 5.0) -> "TcpChannel":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    def send(self, payload: bytes) -> None:
        if self._closed:
            raise ChannelClosed("send on closed channel")
        if len(payload) > MAX_FRAME_BYTES:
            raise SerializationError("frame exceeds maximum size")
        try:
            with self._send_lock:
                self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
        except OSError as error:
            self._closed = True
            raise ChannelClosed("send failed: %s" % error) from error

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if self._closed:
            raise ChannelClosed("recv on closed channel")
        with self._recv_lock:
            try:
                self._sock.settimeout(timeout)
                header = self._recv_exact(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise SerializationError("peer announced oversized frame")
                return self._recv_exact(length)
            except socket.timeout:
                raise TimeoutError("channel recv timed out") from None
            except OSError as error:
                self._closed = True
                raise ChannelClosed("recv failed: %s" % error) from error
            finally:
                try:
                    self._sock.settimeout(None)
                except OSError:
                    pass

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                self._closed = True
                raise ChannelClosed("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


class TcpListener:
    """Accepts incoming :class:`TcpChannel` connections (master side)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()

    def accept(self, timeout: Optional[float] = None) -> TcpChannel:
        self._sock.settimeout(timeout)
        try:
            sock, _peer = self._sock.accept()
        except socket.timeout:
            raise TimeoutError("no incoming connection") from None
        sock.settimeout(None)
        return TcpChannel(sock)

    def close(self) -> None:
        self._sock.close()
