"""Control- and data-plane message envelopes.

Every frame on a channel is one envelope: a message kind plus a payload
dict, encoded with the binary tuple codec.  The kinds mirror the Swing
workflow (Fig. 3): workers JOIN, the master DEPLOYs function units and
peer addresses, START/STOP drive execution, DATA carries tuples, ACK
carries the timestamp echo + measured processing delay back upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.exceptions import SerializationError
from repro.runtime.serialization import decode_value, encode_value

JOIN = "join"
WELCOME = "welcome"
DEPLOY = "deploy"
START = "start"
STOP = "stop"
DATA = "data"
BATCH = "batch"
ACK = "ack"
HEARTBEAT = "heartbeat"
LEAVE = "leave"
LEAVING = "leaving"

_KINDS = frozenset({JOIN, WELCOME, DEPLOY, START, STOP, DATA, BATCH, ACK,
                    HEARTBEAT, LEAVE, LEAVING})


@dataclass
class Message:
    """One framed message: a kind tag and a payload dictionary."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SerializationError("unknown message kind %r" % self.kind)

    def encode(self) -> bytes:
        return encode_value({"kind": self.kind, "payload": self.payload})

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        decoded = decode_value(data)
        if not isinstance(decoded, dict) or "kind" not in decoded:
            raise SerializationError("malformed message frame")
        return cls(kind=decoded["kind"], payload=decoded.get("payload", {}))


def join_message(worker_id: str, units: list = (),
                 epoch: int = 0) -> Message:
    """Worker registration, optionally carrying its hosted inventory.

    A re-registration after a master recovery lists the worker's
    ``(tenant:unit)`` keys in *units* and echoes the *epoch* it adopted,
    so the recovered master can reconcile its checkpoint against live
    state.  Both fields stay absent on a fresh join (byte-identity).
    """
    message = Message(JOIN, {"worker_id": worker_id})
    if units:
        message.payload["units"] = list(units)
    if epoch:
        message.payload["epoch"] = epoch
    return message


def welcome_message(worker_id: str, epoch: int = 0) -> Message:
    message = Message(WELCOME, {"worker_id": worker_id})
    if epoch:
        message.payload["epoch"] = epoch
    return message


def deploy_message(worker_id: str, unit_names: list,
                   downstream_map: Dict[str, list],
                   tenant: str = "", epoch: int = 0) -> Message:
    """Assign *unit_names* to a worker and describe its downstream peers.

    ``downstream_map`` maps each assigned unit name to the list of
    (unit, worker) instance IDs it must route results to.  A non-default
    *tenant* scopes the deployment: the receiving worker reconciles only
    that tenant's units, leaving other tenants' assignments untouched.
    A non-zero *epoch* fences the deployment: workers reject it when
    they have already adopted a newer master incarnation.
    """
    message = Message(DEPLOY, {
        "worker_id": worker_id,
        "unit_names": list(unit_names),
        "downstream_map": {name: list(ids)
                           for name, ids in downstream_map.items()},
    })
    if tenant:
        message.payload["tenant"] = tenant
    if epoch:
        message.payload["epoch"] = epoch
    return message


def start_message(tenant: str = "", epoch: int = 0) -> Message:
    message = Message(START)
    if tenant:
        message.payload["tenant"] = tenant
    if epoch:
        message.payload["epoch"] = epoch
    return message


def stop_message(tenant: str = "", epoch: int = 0) -> Message:
    message = Message(STOP)
    if tenant:
        message.payload["tenant"] = tenant
    if epoch:
        message.payload["epoch"] = epoch
    return message


def data_message(unit_name: str, payload: bytes, seq: int,
                 sent_at: float, tenant: str = "") -> Message:
    """A tuple bound for *unit_name* on the receiving worker."""
    message = Message(DATA, {"unit": unit_name, "tuple": payload,
                             "seq": seq, "sent_at": sent_at})
    if tenant:
        message.payload["tenant"] = tenant
    return message


def batch_message(unit_name: str, frame: bytes, seqs: list,
                  sent_at: float, tenant: str = "") -> Message:
    """One batched flush bound for *unit_name*: many tuples, one envelope.

    ``frame`` is :func:`~repro.runtime.serialization.encode_batch`
    output; ``seqs`` lists the member seqs in frame order (the first is
    the head seq keying the upstream's pending/replay entries).  Batches
    of one are never sent this way — the dispatcher emits the legacy
    :func:`data_message` so the size-1 wire format stays byte-identical.
    """
    message = Message(BATCH, {"unit": unit_name, "batch": frame,
                              "seqs": list(seqs), "sent_at": sent_at})
    if tenant:
        message.payload["tenant"] = tenant
    return message


def ack_message(seq: int, sent_at: float, processing_delay: float,
                epoch: int = 0) -> Message:
    """The timestamp echo of paper Sec. V-B, with W_i piggybacked.

    A non-zero *epoch* echoes the master incarnation the worker has
    adopted (absent at epoch 0 so steady-state frames stay
    byte-identical).  ACKs are never fenced — a late ACK is still a
    true delivery receipt — the echo only propagates epoch awareness.
    """
    message = Message(ACK, {"seq": seq, "sent_at": sent_at,
                            "processing_delay": processing_delay})
    if epoch:
        message.payload["epoch"] = epoch
    return message


def batch_ack_message(seqs: list, sent_at: float,
                      processing_delay: float, epoch: int = 0) -> Message:
    """One timestamp echo acknowledging a whole batch.

    ``processing_delay`` is the mean per-tuple compute time of the
    batch — the W_i estimate a batch contributes, comparable to the
    per-tuple echoes it replaces.
    """
    message = Message(ACK, {"seqs": list(seqs), "seq": seqs[0],
                            "sent_at": sent_at,
                            "processing_delay": processing_delay})
    if epoch:
        message.payload["epoch"] = epoch
    return message


def leave_message(worker_id: str) -> Message:
    return Message(LEAVE, {"worker_id": worker_id})


def leaving_message(worker_id: str) -> Message:
    """Graceful-drain announcement: stop routing new tuples to me.

    Unlike :func:`leave_message` (the departure is already effective),
    LEAVING starts a drain: the master removes the worker from routing
    while the worker keeps running until its queue is empty.
    """
    return Message(LEAVING, {"worker_id": worker_id})
