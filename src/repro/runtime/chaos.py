"""Chaos tooling: link-level fault injection + the churn harness.

Two layers share this module:

:class:`ChaosFabric`
    A wrapper over any :class:`~repro.runtime.fabric.Fabric` that
    injects seeded drop / delay / duplicate / corrupt / partition
    faults per *directed* link.  Determinism matters more than realism
    here: each link owns a private RNG seeded from a CRC of its
    ``sender>target`` name (never ``hash()``, which moves under
    ``PYTHONHASHSEED``), so a seed reproduces the same fault story
    regardless of thread interleaving on other links.

:class:`ChurnHarness`
    Replays a :class:`ChurnSchedule` against a live
    :class:`SwingRuntime` — the threaded-runtime twin of the
    simulator's churn consumption, extended with control-plane events:

    - ``kill``   → :meth:`SwingRuntime.crash_worker` (silent crash)
    - ``leave``  → :meth:`SwingRuntime.drain_worker` (LEAVING drain)
    - ``join`` / ``rejoin`` → :meth:`SwingRuntime.spawn_worker`
    - ``kill_master``    → :meth:`SwingRuntime.crash_master`
    - ``restart_master`` → :meth:`SwingRuntime.restart_master`
    - ``partition`` / ``heal`` → sever / restore an ``a>b`` link
      (requires the runtime's fabric to be a :class:`ChaosFabric`)

Because both substrates consume the schedule identically, a seeded
churn trace produces the same membership timeline in simulation and on
the live runtime — the parity the churn integration tests assert.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import metrics as metrics_mod
from repro.core.delivery import (CHURN_HEAL, CHURN_JOIN, CHURN_KILL,
                                 CHURN_KILL_MASTER, CHURN_LEAVE,
                                 CHURN_PARTITION, CHURN_REJOIN,
                                 CHURN_RESTART_MASTER, ChurnEvent,
                                 ChurnSchedule)
from repro.core.exceptions import RuntimeStateError, SerializationError
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.channels import ChannelClosed
from repro.runtime.fabric import Fabric, Mailbox
from repro.runtime.messages import BATCH, Message
from repro.runtime.serialization import decode_batch


@dataclass(frozen=True)
class LinkChaos:
    """Fault probabilities of one directed link (all default to off).

    ``drop`` / ``duplicate`` / ``corrupt`` / ``delay`` are independent
    per-send probabilities; ``delay_seconds`` is how long a delayed
    frame is held before delivery.  A corrupted frame has one random
    bit flipped in its encoding — when the hardened codec rejects the
    mangled frame it is lost at the transport (counted), otherwise the
    mangled-but-decodable message is delivered as-is.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise RuntimeStateError("%s must be a probability" % name)
        if self.delay_seconds < 0:
            raise RuntimeStateError("delay_seconds must be >= 0")

    @property
    def active(self) -> bool:
        return bool(self.drop or self.duplicate or self.corrupt
                    or self.delay)


class ChaosFabric(Fabric):
    """Deterministic link-fault injection over any inner fabric.

    Faults are configured per directed link (:meth:`set_link`) on top
    of an optional default applied to every link; partitions are
    imposed and lifted at runtime (:meth:`partition` / :meth:`heal`).
    Injected losses are counted into
    ``swing_frames_dropped_total{reason=chaos_*, link=...}`` — chaos is
    observable, never silent — and non-loss injections (duplicates,
    delays) are tallied in :attr:`injected`.
    """

    def __init__(self, inner: Fabric, seed: int = 0,
                 default: Optional[LinkChaos] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None
                 ) -> None:
        self.inner = inner
        self.seed = seed
        self._default = default if default is not None else LinkChaos()
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._lock = threading.Lock()
        self._links: Dict[Tuple[str, str], LinkChaos] = {}
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        self._partitioned: Set[Tuple[str, str]] = set()
        #: injected-event tallies keyed by (reason, "sender>target")
        self.injected: Dict[Tuple[str, str], int] = {}
        self._timers: List[threading.Timer] = []

    # -- configuration ---------------------------------------------------
    def set_link(self, sender_id: str, target_id: str,
                 chaos: LinkChaos) -> None:
        """Override the fault profile of one directed link."""
        with self._lock:
            self._links[(sender_id, target_id)] = chaos

    def partition(self, sender_id: str, target_id: str,
                  symmetric: bool = True) -> None:
        """Sever a link: sends raise :class:`ChannelClosed` until healed."""
        with self._lock:
            self._partitioned.add((sender_id, target_id))
            if symmetric:
                self._partitioned.add((target_id, sender_id))

    def heal(self, sender_id: str, target_id: str,
             symmetric: bool = True) -> None:
        with self._lock:
            self._partitioned.discard((sender_id, target_id))
            if symmetric:
                self._partitioned.discard((target_id, sender_id))

    def partitioned_links(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._partitioned)

    # -- fabric API ------------------------------------------------------
    def register(self, endpoint_id: str) -> Mailbox:
        return self.inner.register(endpoint_id)

    def unregister(self, endpoint_id: str) -> None:
        self.inner.unregister(endpoint_id)

    def close(self) -> None:
        with self._lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self.inner.close()

    def send(self, sender_id: str, target_id: str, message: Message) -> None:
        link = (sender_id, target_id)
        with self._lock:
            severed = link in self._partitioned
            chaos = self._links.get(link, self._default)
            rng = (self._rng_locked(link)
                   if chaos.active and not severed else None)
            rolls = {}
            if rng is not None:
                # One locked pass draws every roll, so concurrent sends
                # on other links cannot perturb this link's fault story.
                for name in ("drop", "duplicate", "corrupt", "delay"):
                    probability = getattr(chaos, name)
                    rolls[name] = (probability > 0.0
                                   and rng.random() < probability)
                if rolls.get("corrupt"):
                    rolls["corrupt_at"] = rng.randrange(1 << 30)
        if severed:
            self._count_loss("chaos_partition", link)
            raise ChannelClosed("link %s>%s partitioned" % link)
        if not rolls:
            self.inner.send(sender_id, target_id, message)
            return
        if rolls.get("drop"):
            self._count_loss("chaos_drop", link)
            return  # silent loss: the sender believes it went out
        if rolls.get("corrupt"):
            message = self._corrupt(message, rolls["corrupt_at"])
            if message is None:
                self._count_loss("chaos_corrupt", link)
                return  # the codec rejected the mangled frame
            self._count_injection("chaos_corrupt", link)
        if rolls.get("delay"):
            self._count_injection("chaos_delay", link)
            timer = threading.Timer(
                chaos.delay_seconds, self._deliver_late,
                args=(sender_id, target_id, message))
            timer.daemon = True
            with self._lock:
                self._timers = [t for t in self._timers if t.is_alive()]
                self._timers.append(timer)
            timer.start()
            return
        self.inner.send(sender_id, target_id, message)
        if rolls.get("duplicate"):
            self._count_injection("chaos_duplicate", link)
            try:
                self.inner.send(sender_id, target_id, message)
            except ChannelClosed:
                pass  # the duplicate raced an endpoint teardown

    # -- internals -------------------------------------------------------
    def _rng_locked(self, link: Tuple[str, str]) -> random.Random:
        rng = self._rngs.get(link)
        if rng is None:
            # CRC-derived, not hash(): stable across processes and
            # PYTHONHASHSEED, so one seed = one reproducible story.
            rng = random.Random(
                zlib.crc32(("%s>%s" % link).encode("utf-8")) ^ self.seed)
            self._rngs[link] = rng
        return rng

    @staticmethod
    def _corrupt(message: Message, entropy: int) -> Optional[Message]:
        frame = bytearray(message.encode())
        if not frame:
            return None
        index = entropy % len(frame)
        frame[index] ^= 1 << ((entropy >> 8) % 8)
        try:
            mangled = Message.decode(bytes(frame))
        except SerializationError:
            return None
        if mangled.kind == BATCH:
            # The outer codec treats the nested batch frame as an opaque
            # byte string, so a flip inside it survives Message.decode.
            # Validate the inner framing here too: a corrupted batch is
            # dropped loudly at the fabric (chaos_corrupt), never handed
            # downstream to be partially decoded.
            try:
                decode_batch(mangled.payload["batch"], zero_copy=False)
            except (KeyError, TypeError, SerializationError):
                return None
        return mangled

    def _deliver_late(self, sender_id: str, target_id: str,
                      message: Message) -> None:
        try:
            self.inner.send(sender_id, target_id, message)
        except Exception:
            pass  # the target vanished while the frame was in flight

    def _count_loss(self, reason: str, link: Tuple[str, str]) -> None:
        self._registry.increment(metrics_mod.DROPPED_TOTAL, reason=reason,
                                 link="%s>%s" % link)
        self._count_injection(reason, link)

    def _count_injection(self, reason: str, link: Tuple[str, str]) -> None:
        key = (reason, "%s>%s" % link)
        with self._lock:
            self.injected[key] = self.injected.get(key, 0) + 1


class ChurnHarness:
    """Applies one churn schedule to a started :class:`SwingRuntime`.

    *time_scale* stretches (>1) or compresses (<1) the schedule's event
    times — soak tests compress a long simulated schedule into a short
    wall-clock run.  Events are applied strictly in schedule order; a
    drain blocks until the leaver is empty, which is the point (the next
    event must observe the post-drain swarm, as it would on the engine).
    """

    def __init__(self, runtime: SwingRuntime, schedule: ChurnSchedule,
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise RuntimeStateError("time scale must be positive")
        self.runtime = runtime
        self.schedule = schedule
        self.time_scale = time_scale
        #: (event, wall-clock offset it actually fired at) — in order
        self.applied: List[Tuple[ChurnEvent, float]] = []
        #: measured drain duration per gracefully departed worker
        self.drain_seconds: Dict[str, float] = {}

    def run(self, deadline: Optional[float] = None) -> None:
        """Blockingly replay the schedule against the running swarm."""
        started = time.monotonic()
        for event in self.schedule:
            target = started + event.time * self.time_scale
            if deadline is not None and target > started + deadline:
                break
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._apply(event)
            self.applied.append((event, time.monotonic() - started))

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == CHURN_KILL:
            self.runtime.crash_worker(event.device_id)
        elif event.action == CHURN_LEAVE:
            elapsed = self.runtime.drain_worker(event.device_id)
            self.drain_seconds[event.device_id] = elapsed
        elif event.action in (CHURN_JOIN, CHURN_REJOIN):
            self.runtime.spawn_worker(event.device_id)
        elif event.action == CHURN_KILL_MASTER:
            self.runtime.crash_master()
        elif event.action == CHURN_RESTART_MASTER:
            self.runtime.restart_master()
        elif event.action in (CHURN_PARTITION, CHURN_HEAL):
            # The device id names a directed link, "sender>target".
            sender_id, sep, target_id = event.device_id.partition(">")
            if not sep or not sender_id or not target_id:
                raise RuntimeStateError(
                    "%s event needs a 'sender>target' link id, got %r"
                    % (event.action, event.device_id))
            if event.action == CHURN_PARTITION:
                self.runtime.partition_link(sender_id, target_id)
            else:
                self.runtime.heal_link(sender_id, target_id)
        else:  # pragma: no cover - ChurnEvent validates actions
            raise RuntimeStateError("unknown churn action %r" % event.action)
