"""Churn harness: replay a :class:`ChurnSchedule` against a live swarm.

The simulator consumes a churn schedule by scheduling engine callbacks;
this is the threaded-runtime equivalent — the same seeded schedule, the
same event vocabulary, applied to a running :class:`SwingRuntime` in
wall-clock time:

- ``kill``   → :meth:`SwingRuntime.crash_worker` (silent crash: fabric
  endpoint torn down, no goodbye)
- ``leave``  → :meth:`SwingRuntime.drain_worker` (LEAVING protocol:
  finish the queue, depart without loss)
- ``join`` / ``rejoin`` → :meth:`SwingRuntime.spawn_worker`

Because both substrates consume the schedule identically, a seeded
churn trace produces the same membership timeline in simulation and on
the live runtime — the parity the churn integration tests assert.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.delivery import (CHURN_JOIN, CHURN_KILL, CHURN_LEAVE,
                                 CHURN_REJOIN, ChurnEvent, ChurnSchedule)
from repro.core.exceptions import RuntimeStateError
from repro.runtime.app_runner import SwingRuntime


class ChurnHarness:
    """Applies one churn schedule to a started :class:`SwingRuntime`.

    *time_scale* stretches (>1) or compresses (<1) the schedule's event
    times — soak tests compress a long simulated schedule into a short
    wall-clock run.  Events are applied strictly in schedule order; a
    drain blocks until the leaver is empty, which is the point (the next
    event must observe the post-drain swarm, as it would on the engine).
    """

    def __init__(self, runtime: SwingRuntime, schedule: ChurnSchedule,
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise RuntimeStateError("time scale must be positive")
        self.runtime = runtime
        self.schedule = schedule
        self.time_scale = time_scale
        #: (event, wall-clock offset it actually fired at) — in order
        self.applied: List[Tuple[ChurnEvent, float]] = []
        #: measured drain duration per gracefully departed worker
        self.drain_seconds: Dict[str, float] = {}

    def run(self, deadline: Optional[float] = None) -> None:
        """Blockingly replay the schedule against the running swarm."""
        started = time.monotonic()
        for event in self.schedule:
            target = started + event.time * self.time_scale
            if deadline is not None and target > started + deadline:
                break
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._apply(event)
            self.applied.append((event, time.monotonic() - started))

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == CHURN_KILL:
            self.runtime.crash_worker(event.device_id)
        elif event.action == CHURN_LEAVE:
            elapsed = self.runtime.drain_worker(event.device_id)
            self.drain_seconds[event.device_id] = elapsed
        elif event.action in (CHURN_JOIN, CHURN_REJOIN):
            self.runtime.spawn_worker(event.device_id)
        else:  # pragma: no cover - ChurnEvent validates actions
            raise RuntimeStateError("unknown churn action %r" % event.action)
