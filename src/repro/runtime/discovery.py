"""Discovery Service (paper Sec. IV-C).

On Android the master registers a Network Service (NSD) and workers'
background services connect upon discovering it.  Here:

* :class:`LocalDiscovery` — an in-process registry for thread swarms;
* :class:`UdpDiscovery` — the master periodically broadcasts a beacon
  (service name + TCP address) on a loopback UDP port; workers listen
  until they hear it.  This is the same announce/listen pattern NSD
  provides, implemented on primitives available everywhere.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.exceptions import DiscoveryError

DEFAULT_BEACON_PORT = 48_800


class LocalDiscovery:
    """Process-local service registry with blocking lookup."""

    def __init__(self) -> None:
        self._services: Dict[str, object] = {}
        self._condition = threading.Condition()

    def announce(self, service_name: str, address: object) -> None:
        """Register *service_name* at *address* (any picklable token)."""
        with self._condition:
            self._services[service_name] = address
            self._condition.notify_all()

    def withdraw(self, service_name: str) -> None:
        with self._condition:
            self._services.pop(service_name, None)

    def lookup(self, service_name: str, timeout: float = 5.0) -> object:
        """Block until *service_name* is announced; raise on timeout."""
        deadline = time.monotonic() + timeout
        with self._condition:
            while service_name not in self._services:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DiscoveryError("service %r not found within %.1fs"
                                         % (service_name, timeout))
                self._condition.wait(timeout=remaining)
            return self._services[service_name]


class UdpBeacon:
    """Master side: periodically broadcast the service address."""

    def __init__(self, service_name: str, address: Tuple[str, int],
                 beacon_port: int = DEFAULT_BEACON_PORT,
                 interval: float = 0.2) -> None:
        self.service_name = service_name
        self.address = address
        self.beacon_port = beacon_port
        self.interval = interval
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._running = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._running.set()
        self._thread = threading.Thread(target=self._loop,
                                        name="udp-beacon", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        payload = json.dumps({
            "service": self.service_name,
            "host": self.address[0],
            "port": self.address[1],
        }).encode("utf-8")
        while self._running.is_set():
            try:
                self._sock.sendto(payload, ("127.0.0.1", self.beacon_port))
            except OSError:
                pass
            time.sleep(self.interval)

    def stop(self) -> None:
        self._running.clear()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._sock.close()


def listen_for_beacon(service_name: str,
                      beacon_port: int = DEFAULT_BEACON_PORT,
                      timeout: float = 5.0) -> Tuple[str, int]:
    """Worker side: block until the service's beacon is heard."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind(("127.0.0.1", beacon_port))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DiscoveryError("no beacon for %r within %.1fs"
                                     % (service_name, timeout))
            sock.settimeout(remaining)
            try:
                payload, _peer = sock.recvfrom(4096)
            except socket.timeout:
                raise DiscoveryError("no beacon for %r within %.1fs"
                                     % (service_name, timeout)) from None
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if decoded.get("service") == service_name:
                return str(decoded["host"]), int(decoded["port"])
    finally:
        sock.close()
