"""Serialization Service (paper Sec. IV-C).

SEEP serializes tuples with Kryo; Swing extends it so customized objects
(image containers, sensor vectors, audio segments) are transformed into
byte arrays at the sender and reconstructed at the receiver.  We
implement a compact, self-describing binary codec from scratch — no
pickle, so a malicious peer cannot execute code through the data plane.

Supported value types: None, bool, int, float, str, bytes, list, tuple,
dict (string keys), and numpy arrays.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SerializationError
from repro.core.tuples import DataTuple
from repro.trace.spans import SpanContext

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_NDARRAY = b"a"

#: guards against hostile or corrupt length prefixes
MAX_ENCODED_BYTES = 256 * 1024 * 1024


def encode_value(value: Any) -> bytes:
    """Encode one value into the self-describing binary format."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out.append(struct.pack(">q", value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(struct.pack(">I", len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_TAG_BYTES)
        out.append(struct.pack(">I", len(data)))
        out.append(data)
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out.append(struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out.append(struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.append(struct.pack(">I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError("dict keys must be strings, got %r"
                                         % type(key).__name__)
            _encode_into(key, out)
            _encode_into(item, out)
    elif isinstance(value, np.ndarray):
        dtype = value.dtype.str.encode("ascii")
        shape = value.shape
        payload = np.ascontiguousarray(value).tobytes()
        out.append(_TAG_NDARRAY)
        out.append(struct.pack(">B", len(dtype)))
        out.append(dtype)
        out.append(struct.pack(">B", len(shape)))
        out.append(struct.pack(">%dq" % len(shape), *shape) if shape else b"")
        out.append(struct.pack(">I", len(payload)))
        out.append(payload)
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), out)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), out)
    else:
        raise SerializationError("cannot serialize value of type %r"
                                 % type(value).__name__)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > len(self.data):
            raise SerializationError("truncated payload")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def unpack(self, fmt: str) -> Tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))


def decode_value(data: bytes) -> Any:
    """Decode a value produced by :func:`encode_value`."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise SerializationError("%d trailing bytes after value"
                                 % (len(data) - reader.pos))
    return value


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return reader.unpack(">q")[0]
    if tag == _TAG_FLOAT:
        return reader.unpack(">d")[0]
    if tag == _TAG_STR:
        (length,) = reader.unpack(">I")
        try:
            return reader.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise SerializationError("malformed utf-8 string") from error
    if tag == _TAG_BYTES:
        (length,) = reader.unpack(">I")
        return reader.take(length)
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = reader.unpack(">I")
        items = [_decode_from(reader) for _ in range(count)]
        return items if tag == _TAG_LIST else tuple(items)
    if tag == _TAG_DICT:
        (count,) = reader.unpack(">I")
        result = {}
        for _ in range(count):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _TAG_NDARRAY:
        (dtype_len,) = reader.unpack(">B")
        try:
            dtype_name = reader.take(dtype_len).decode("ascii")
        except UnicodeDecodeError as error:
            raise SerializationError("malformed array dtype name") from error
        try:
            dtype = np.dtype(dtype_name)
        except (TypeError, ValueError) as error:
            raise SerializationError("bad array dtype %r" % dtype_name) \
                from error
        (ndim,) = reader.unpack(">B")
        shape = reader.unpack(">%dq" % ndim) if ndim else ()
        (length,) = reader.unpack(">I")
        payload = reader.take(length)
        expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if shape and length != expected:
            raise SerializationError("array payload size mismatch")
        try:
            array = np.frombuffer(payload, dtype=dtype)
            return array.reshape(shape) if shape else array.reshape(())
        except (TypeError, ValueError) as error:
            raise SerializationError("malformed array payload") from error
    raise SerializationError("unknown type tag %r" % tag)


def encode_tuple(data: DataTuple) -> bytes:
    """Serialize a :class:`DataTuple` (values + routing metadata)."""
    fields = {
        "seq": data.seq,
        "created_at": data.created_at,
        "values": data.values,
    }
    if data.deadline is not None:
        fields["deadline"] = data.deadline
    if data.trace is not None:
        fields["trace"] = data.trace.to_dict()
    if data.delivery_attempt != 1:
        fields["delivery_attempt"] = data.delivery_attempt
    body = encode_value(fields)
    if len(body) > MAX_ENCODED_BYTES:
        raise SerializationError("tuple exceeds maximum encoded size")
    return body


def decode_tuple(payload: bytes) -> DataTuple:
    """Reconstruct a :class:`DataTuple` from :func:`encode_tuple` output."""
    decoded = decode_value(payload)
    if not isinstance(decoded, dict) or not {"seq", "created_at", "values"} <= set(decoded):
        raise SerializationError("payload is not an encoded tuple")
    return DataTuple(values=decoded["values"], seq=decoded["seq"],
                     created_at=decoded["created_at"],
                     deadline=decoded.get("deadline"),
                     trace=SpanContext.from_dict(decoded.get("trace")),
                     delivery_attempt=decoded.get("delivery_attempt", 1))
