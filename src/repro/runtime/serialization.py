"""Serialization Service (paper Sec. IV-C).

SEEP serializes tuples with Kryo; Swing extends it so customized objects
(image containers, sensor vectors, audio segments) are transformed into
byte arrays at the sender and reconstructed at the receiver.  We
implement a compact, self-describing binary codec from scratch — no
pickle, so a malicious peer cannot execute code through the data plane.

Supported value types: None, bool, int, float, str, bytes, list, tuple,
dict (string keys), and numpy arrays.

On top of the per-value codec sits the batched frame format of the
batched data plane: :func:`encode_batch` concatenates many encoded
tuples behind a magic byte with length-prefixed sub-tuples, and
:func:`decode_batch` reconstructs them with a zero-copy reader — every
``bytes`` / ndarray payload is a :class:`memoryview` slice of (or an
ndarray view over) the received frame rather than a copy, so a 64-tuple
camera batch is decoded without 64 payload copies.  A batch of one is
emitted in the legacy single-tuple wire format, byte-identical to what
this module produced before batching existed, which keeps mixed-version
peers and the sim/runtime parity tests working unchanged.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Sequence, Union

import numpy as np

from repro.core.exceptions import SerializationError
from repro.core.tuples import DataTuple
from repro.trace.spans import SpanContext

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_NDARRAY = b"a"

# Decode dispatches on the tag's integer value (one index, no slice).
_ORD_NONE = _TAG_NONE[0]
_ORD_TRUE = _TAG_TRUE[0]
_ORD_FALSE = _TAG_FALSE[0]
_ORD_INT = _TAG_INT[0]
_ORD_FLOAT = _TAG_FLOAT[0]
_ORD_STR = _TAG_STR[0]
_ORD_BYTES = _TAG_BYTES[0]
_ORD_LIST = _TAG_LIST[0]
_ORD_TUPLE = _TAG_TUPLE[0]
_ORD_DICT = _TAG_DICT[0]
_ORD_NDARRAY = _TAG_NDARRAY[0]

#: guards against hostile or corrupt length prefixes
MAX_ENCODED_BYTES = 256 * 1024 * 1024

#: nesting bound for both directions of the codec: deep enough for any
#: real tuple, shallow enough that a hostile peer cannot blow the
#: recursion limit of a worker thread with a nesting bomb
MAX_DEPTH = 64

#: first byte of a multi-tuple frame; deliberately not a valid value
#: tag, so single-tuple frames (which always start with the dict tag)
#: and batch frames are distinguishable from their first byte
BATCH_MAGIC = 0x80
_BATCH_MAGIC_BYTE = bytes([BATCH_MAGIC])

#: sanity bound on the declared tuple count of one batch frame
MAX_BATCH_TUPLES = 65536

# Prebound packers/unpackers: struct.Struct avoids the per-call format
# parse on the per-value hot path.
_PACK_I64 = struct.Struct(">q")
_PACK_F64 = struct.Struct(">d")
_PACK_U32 = struct.Struct(">I")
_PACK_U8 = struct.Struct(">B")


def encode_value(value: Any) -> bytes:
    """Encode one value into the self-describing binary format.

    Every failure — unsupported type, out-of-range scalar, pathological
    nesting — raises :class:`SerializationError`; no other exception
    type escapes, so callers sitting on the data plane never crash on a
    hostile value.
    """
    out: List[bytes] = []
    try:
        _encode_into(value, out, 0)
    except struct.error as error:
        # e.g. an int outside the signed-64-bit wire range
        raise SerializationError("unencodable field value: %s" % error) \
            from error
    return b"".join(out)


def _encode_into(value: Any, out: List[bytes], depth: int) -> None:
    if depth > MAX_DEPTH:
        raise SerializationError("value nesting exceeds depth limit %d"
                                 % MAX_DEPTH)
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out.append(_PACK_I64.pack(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(_PACK_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_PACK_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_TAG_BYTES)
        out.append(_PACK_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out.append(_PACK_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out.append(_PACK_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.append(_PACK_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError("dict keys must be strings, got %r"
                                         % type(key).__name__)
            _encode_into(key, out, depth + 1)
            _encode_into(item, out, depth + 1)
    elif isinstance(value, np.ndarray):
        dtype = value.dtype.str.encode("ascii")
        shape = value.shape
        payload = np.ascontiguousarray(value).tobytes()
        out.append(_TAG_NDARRAY)
        out.append(_PACK_U8.pack(len(dtype)))
        out.append(dtype)
        out.append(_PACK_U8.pack(len(shape)))
        out.append(struct.pack(">%dq" % len(shape), *shape) if shape else b"")
        out.append(_PACK_U32.pack(len(payload)))
        out.append(payload)
    elif isinstance(value, np.bool_):
        # Checked before np.integer: np.bool_ is neither a Python bool
        # nor a Python int, so the identity checks above miss it.
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), out, depth)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), out, depth)
    else:
        raise SerializationError("cannot serialize value of type %r"
                                 % type(value).__name__)


class _Reader:
    """Cursor over one received frame.

    The frame is held as a flat :class:`memoryview`, so ``take`` is a
    constant-time slice with no copy.  In ``zero_copy`` mode the decoded
    ``bytes`` values stay memoryview slices of the frame and ndarrays
    are built with :func:`np.frombuffer` over the slice (read-only views
    of the frame); otherwise payloads are copied out into independent
    ``bytes`` objects, the historical :func:`decode_value` behavior.
    """

    __slots__ = ("data", "size", "pos", "zero_copy")

    def __init__(self, data: Union[bytes, bytearray, memoryview],
                 zero_copy: bool = False) -> None:
        view = data if isinstance(data, memoryview) else memoryview(data)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        self.data = view
        self.size = len(view)
        self.pos = 0
        self.zero_copy = zero_copy

    def take(self, count: int) -> memoryview:
        pos = self.pos
        if count < 0 or pos + count > self.size:
            raise SerializationError("truncated payload")
        self.pos = pos + count
        return self.data[pos:pos + count]

    def take_byte(self) -> int:
        pos = self.pos
        if pos >= self.size:
            raise SerializationError("truncated payload")
        self.pos = pos + 1
        return self.data[pos]

    def take_u32(self) -> int:
        return _PACK_U32.unpack(self.take(4))[0]

    def unpack(self, packer: struct.Struct):
        return packer.unpack(self.take(packer.size))


def decode_value(data: Union[bytes, bytearray, memoryview]) -> Any:
    """Decode a value produced by :func:`encode_value`."""
    reader = _Reader(data)
    value = _decode_from(reader, 0)
    if reader.pos != reader.size:
        raise SerializationError("%d trailing bytes after value"
                                 % (reader.size - reader.pos))
    return value


def _decode_from(reader: _Reader, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise SerializationError("payload nesting exceeds depth limit %d"
                                 % MAX_DEPTH)
    tag = reader.take_byte()
    if tag == _ORD_NONE:
        return None
    if tag == _ORD_TRUE:
        return True
    if tag == _ORD_FALSE:
        return False
    if tag == _ORD_INT:
        return reader.unpack(_PACK_I64)[0]
    if tag == _ORD_FLOAT:
        return reader.unpack(_PACK_F64)[0]
    if tag == _ORD_STR:
        length = reader.take_u32()
        try:
            return str(reader.take(length), "utf-8")
        except UnicodeDecodeError as error:
            raise SerializationError("malformed utf-8 string") from error
    if tag == _ORD_BYTES:
        length = reader.take_u32()
        chunk = reader.take(length)
        return chunk if reader.zero_copy else bytes(chunk)
    if tag in (_ORD_LIST, _ORD_TUPLE):
        count = reader.take_u32()
        items = [_decode_from(reader, depth + 1) for _ in range(count)]
        return items if tag == _ORD_LIST else tuple(items)
    if tag == _ORD_DICT:
        count = reader.take_u32()
        result = {}
        for _ in range(count):
            key = _decode_from(reader, depth + 1)
            value = _decode_from(reader, depth + 1)
            try:
                result[key] = value
            except TypeError as error:  # corrupt frame decoding to dict key
                raise SerializationError("unhashable dict key") from error
        return result
    if tag == _ORD_NDARRAY:
        return _decode_ndarray(reader)
    raise SerializationError("unknown type tag %r" % bytes([tag]))


def _decode_ndarray(reader: _Reader) -> np.ndarray:
    dtype_len = reader.take_byte()
    try:
        dtype_name = str(reader.take(dtype_len), "ascii")
    except UnicodeDecodeError as error:
        raise SerializationError("malformed array dtype name") from error
    try:
        dtype = np.dtype(dtype_name)
    except (TypeError, ValueError) as error:
        raise SerializationError("bad array dtype %r" % dtype_name) \
            from error
    ndim = reader.take_byte()
    shape = (struct.unpack(">%dq" % ndim, reader.take(8 * ndim))
             if ndim else ())
    expected = dtype.itemsize
    for dim in shape:
        if dim < 0:
            raise SerializationError("negative array dimension")
        expected *= dim
    length = reader.take_u32()
    # Enforced for every rank, scalars (shape ()) included: a 0-length
    # or padded scalar payload must fail here, not reach frombuffer.
    if length != expected:
        raise SerializationError("array payload size mismatch")
    payload = reader.take(length)
    if not reader.zero_copy:
        payload = bytes(payload)
    try:
        array = np.frombuffer(payload, dtype=dtype)
        return array.reshape(shape) if shape else array.reshape(())
    except (TypeError, ValueError) as error:
        raise SerializationError("malformed array payload") from error


# Pre-encoded envelope keys: the tuple envelope is a dict with a fixed
# key set, so its string keys never need to pass through the generic
# encoder on the per-tuple hot path.
_KEY_SEQ = _TAG_STR + _PACK_U32.pack(3) + b"seq"
_KEY_CREATED_AT = _TAG_STR + _PACK_U32.pack(10) + b"created_at"
_KEY_VALUES = _TAG_STR + _PACK_U32.pack(6) + b"values"
_KEY_DEADLINE = _TAG_STR + _PACK_U32.pack(8) + b"deadline"
_KEY_TRACE = _TAG_STR + _PACK_U32.pack(5) + b"trace"
_KEY_DELIVERY_ATTEMPT = (_TAG_STR + _PACK_U32.pack(16)
                         + b"delivery_attempt")
_KEY_TENANT = _TAG_STR + _PACK_U32.pack(6) + b"tenant"
_KEY_KEY = _TAG_STR + _PACK_U32.pack(3) + b"key"


def encode_tuple(data: DataTuple) -> bytes:
    """Serialize a :class:`DataTuple` (values + routing metadata).

    The envelope is emitted directly from precomputed key bytes —
    byte-identical to encoding the equivalent field dict through
    :func:`encode_value`, but without ~7 generic dispatches per tuple.
    Tuples whose metadata fields carry non-canonical types fall back to
    the generic path, which defines the format.
    """
    seq = data.seq
    created_at = data.created_at
    deadline = data.deadline
    attempt = data.delivery_attempt
    tenant = data.tenant
    key = data.key
    if not (type(seq) is int and type(created_at) is float
            and type(attempt) is int and type(tenant) is str
            and (deadline is None or type(deadline) is float)
            and (key is None or type(key) is str)):
        return _encode_tuple_generic(data)
    count = 3 + (deadline is not None) + (data.trace is not None) \
        + (attempt != 1) + (tenant != "") + (key is not None)
    out = [_TAG_DICT, _PACK_U32.pack(count), _KEY_SEQ, _TAG_INT]
    try:
        out.append(_PACK_I64.pack(seq))
        out.append(_KEY_CREATED_AT)
        out.append(_TAG_FLOAT)
        out.append(_PACK_F64.pack(created_at))
        out.append(_KEY_VALUES)
        _encode_into(data.values, out, 1)
        if deadline is not None:
            out.append(_KEY_DEADLINE)
            out.append(_TAG_FLOAT)
            out.append(_PACK_F64.pack(deadline))
        if data.trace is not None:
            out.append(_KEY_TRACE)
            _encode_into(data.trace.to_dict(), out, 1)
        if attempt != 1:
            out.append(_KEY_DELIVERY_ATTEMPT)
            out.append(_TAG_INT)
            out.append(_PACK_I64.pack(attempt))
        if tenant != "":
            name = tenant.encode("utf-8")
            out.append(_KEY_TENANT)
            out.append(_TAG_STR)
            out.append(_PACK_U32.pack(len(name)))
            out.append(name)
        if key is not None:
            raw = key.encode("utf-8")
            out.append(_KEY_KEY)
            out.append(_TAG_STR)
            out.append(_PACK_U32.pack(len(raw)))
            out.append(raw)
    except struct.error as error:
        raise SerializationError("unencodable field value: %s" % error) \
            from error
    body = b"".join(out)
    if len(body) > MAX_ENCODED_BYTES:
        raise SerializationError("tuple exceeds maximum encoded size")
    return body


def _encode_tuple_generic(data: DataTuple) -> bytes:
    fields = {
        "seq": data.seq,
        "created_at": data.created_at,
        "values": data.values,
    }
    if data.deadline is not None:
        fields["deadline"] = data.deadline
    if data.trace is not None:
        fields["trace"] = data.trace.to_dict()
    if data.delivery_attempt != 1:
        fields["delivery_attempt"] = data.delivery_attempt
    if data.tenant != "":
        fields["tenant"] = data.tenant
    if data.key is not None:
        fields["key"] = data.key
    body = encode_value(fields)
    if len(body) > MAX_ENCODED_BYTES:
        raise SerializationError("tuple exceeds maximum encoded size")
    return body


def decode_tuple(payload: Union[bytes, bytearray, memoryview]) -> DataTuple:
    """Reconstruct a :class:`DataTuple` from :func:`encode_tuple` output."""
    return _decode_tuple_reader(_Reader(payload))


def _decode_tuple_reader(reader: _Reader) -> DataTuple:
    decoded = _decode_from(reader, 0)
    if reader.pos != reader.size:
        raise SerializationError("%d trailing bytes after value"
                                 % (reader.size - reader.pos))
    if not isinstance(decoded, dict) or not {"seq", "created_at", "values"} <= set(decoded):
        raise SerializationError("payload is not an encoded tuple")
    return DataTuple(values=decoded["values"], seq=decoded["seq"],
                     created_at=decoded["created_at"],
                     deadline=decoded.get("deadline"),
                     trace=SpanContext.from_dict(decoded.get("trace")),
                     delivery_attempt=decoded.get("delivery_attempt", 1),
                     tenant=decoded.get("tenant", ""),
                     key=decoded.get("key"))


# -- batched frames ------------------------------------------------------
def encode_batch(payloads: Sequence[bytes]) -> bytes:
    """Frame one batch of :func:`encode_tuple` payloads for the wire.

    A single-payload batch is passed through untouched — byte-identical
    to the legacy single-tuple format — so batching degenerates cleanly
    at size 1 and mixed-version peers interoperate.  Larger batches are
    framed as ``MAGIC | count:u32 | (len:u32 | payload)*``.
    """
    if not payloads:
        raise SerializationError("cannot encode an empty batch")
    if len(payloads) == 1:
        only = payloads[0]
        return only if isinstance(only, bytes) else bytes(only)
    if len(payloads) > MAX_BATCH_TUPLES:
        raise SerializationError("batch exceeds %d tuples" % MAX_BATCH_TUPLES)
    parts = [_BATCH_MAGIC_BYTE, _PACK_U32.pack(len(payloads))]
    total = 5
    for payload in payloads:
        parts.append(_PACK_U32.pack(len(payload)))
        parts.append(payload)
        total += 4 + len(payload)
    if total > MAX_ENCODED_BYTES:
        raise SerializationError("batch exceeds maximum encoded size")
    return b"".join(parts)


def decode_batch(frame: Union[bytes, bytearray, memoryview],
                 zero_copy: bool = True) -> List[DataTuple]:
    """Decode one wire frame into its tuples (legacy single-tuple or batch).

    With ``zero_copy`` (the default, the receive hot path) the decoded
    tuples' ``bytes`` values are memoryview slices of *frame* and their
    ndarrays are read-only views over it — nothing is copied, but the
    frame stays alive as long as any decoded value does.  Pass
    ``zero_copy=False`` to detach the tuples from the frame.
    """
    reader = _Reader(frame, zero_copy=zero_copy)
    if reader.size == 0:
        raise SerializationError("empty frame")
    if reader.data[0] != BATCH_MAGIC:
        return [_decode_tuple_reader(reader)]
    reader.pos = 1
    count = reader.take_u32()
    if count == 0:
        raise SerializationError("batch frame declares zero tuples")
    if count > MAX_BATCH_TUPLES:
        raise SerializationError("batch declares %d tuples (max %d)"
                                 % (count, MAX_BATCH_TUPLES))
    tuples = []
    for _ in range(count):
        length = reader.take_u32()
        sub = _Reader(reader.take(length), zero_copy=zero_copy)
        tuples.append(_decode_tuple_reader(sub))
    if reader.pos != reader.size:
        raise SerializationError("%d trailing bytes after batch"
                                 % (reader.size - reader.pos))
    return tuples
