"""Peer health monitoring for the threaded runtime.

The paper's Background Service keeps Swing serving through churn: devices
join, leave abruptly, and drop off weak links.  :class:`HealthMonitor`
is the runtime's shared view of peer liveness, fed from three signals:

* **send outcomes** — the fabrics and dispatchers report every
  successful or failed send toward a peer;
* **heartbeats** — workers beacon the master; the master folds arrivals
  into the monitor and evicts peers whose beacons stop;
* **ACK age** — dispatchers report ACK arrivals, so a peer that accepts
  sends but never acknowledges still ages out.

Consecutive failures mark a peer dead after ``max_failures`` strikes,
and each failure opens an exponentially growing backoff window during
which :meth:`HealthMonitor.should_attempt` tells callers not to waste a
blocking connect on the peer.  Any success fully resets the peer — the
reconnect path starts fresh rather than inheriting a saturated backoff.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError


@dataclass
class PeerHealth:
    """Mutable health record of one peer endpoint."""

    peer_id: str
    consecutive_failures: int = 0
    last_success: Optional[float] = None
    last_failure: Optional[float] = None
    backoff: float = 0.0
    dead: bool = False
    #: when the monitor first saw this peer; the timeout clock starts
    #: here, so a peer that never produces a positive signal still ages
    #: out instead of lingering forever
    first_seen: float = 0.0

    def ack_age(self, now: float) -> Optional[float]:
        """Seconds since the last positive signal; None before the first."""
        if self.last_success is None:
            return None
        return max(0.0, now - self.last_success)


class HealthMonitor:
    """Tracks per-peer liveness with timeouts and exponential backoff."""

    def __init__(self, timeout: float = 10.0, max_failures: int = 3,
                 base_backoff: float = 0.1, max_backoff: float = 5.0,
                 jitter: float = 0.1,
                 rng: Optional[random.Random] = None,
                 clock: Callable[[], float] = time.monotonic,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        if timeout < 0:
            raise RuntimeStateError("health timeout must be >= 0")
        if max_failures < 1:
            raise RuntimeStateError("max_failures must be >= 1")
        if base_backoff < 0 or max_backoff < base_backoff:
            raise RuntimeStateError("need 0 <= base_backoff <= max_backoff")
        if not 0.0 <= jitter < 1.0:
            raise RuntimeStateError("jitter must be in [0, 1)")
        self.timeout = timeout
        self.max_failures = max_failures
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        #: fractional randomization of each backoff window, so peers that
        #: failed together don't retry in lockstep (thundering herd)
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerHealth] = {}

    # -- recording -------------------------------------------------------
    def _peer(self, peer_id: str) -> PeerHealth:
        peer = self._peers.get(peer_id)
        if peer is None:
            peer = PeerHealth(peer_id=peer_id, first_seen=self._clock())
            self._peers[peer_id] = peer
        return peer

    def record_success(self, peer_id: str) -> None:
        """A send/ACK/heartbeat reached us: the peer is provably alive."""
        with self._lock:
            peer = self._peer(peer_id)
            was_dead = peer.dead
            peer.last_success = self._clock()
            peer.consecutive_failures = 0
            peer.backoff = 0.0
            peer.dead = False
        if was_dead:
            self._registry.increment(metrics_mod.RESURRECTED_TOTAL,
                                     downstream=peer_id)

    #: heartbeats and ACKs are just named success signals
    record_heartbeat = record_success
    record_ack = record_success

    def record_failure(self, peer_id: str) -> bool:
        """A send toward the peer failed; returns True when now dead."""
        with self._lock:
            peer = self._peer(peer_id)
            peer.last_failure = self._clock()
            peer.consecutive_failures += 1
            if peer.backoff <= 0.0:
                peer.backoff = self.base_backoff
            else:
                peer.backoff = min(self.max_backoff, peer.backoff * 2.0)
            newly_dead = (not peer.dead
                          and peer.consecutive_failures >= self.max_failures)
            if newly_dead:
                peer.dead = True
        if newly_dead:
            self._registry.increment(metrics_mod.MARKED_DEAD_TOTAL,
                                     downstream=peer_id)
        return self.is_dead(peer_id)

    def forget(self, peer_id: str) -> None:
        with self._lock:
            self._peers.pop(peer_id, None)

    def reset_peer(self, peer_id: str) -> None:
        """Wipe a peer's failure history: a rejoin is a fresh start.

        Unlike :meth:`record_success`, this does not fabricate a
        positive signal — the rejoined peer has proven nothing yet —
        but it guarantees a pre-departure failure streak (saturated
        backoff, dead mark) cannot instantly re-kill the new
        incarnation.
        """
        with self._lock:
            self._peers.pop(peer_id, None)

    # -- queries ---------------------------------------------------------
    def is_dead(self, peer_id: str) -> bool:
        with self._lock:
            peer = self._peers.get(peer_id)
            return peer.dead if peer is not None else False

    def should_attempt(self, peer_id: str) -> bool:
        """False while the peer sits inside its current backoff window."""
        with self._lock:
            peer = self._peers.get(peer_id)
            if peer is None or peer.last_failure is None or peer.backoff <= 0:
                return True
            return self._clock() - peer.last_failure >= peer.backoff

    def backoff_for(self, peer_id: str) -> float:
        """Current reconnect backoff in seconds (0 when healthy).

        The nominal exponential window is scaled by a random factor in
        ``[1 - jitter, 1 + jitter]`` so a fleet of peers backing off
        from the same outage desynchronizes instead of hammering the
        recovered endpoint in lockstep.
        """
        with self._lock:
            peer = self._peers.get(peer_id)
            backoff = peer.backoff if peer is not None else 0.0
            if backoff <= 0.0 or self.jitter <= 0.0:
                return backoff
            factor = self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            return backoff * factor

    def ack_age(self, peer_id: str) -> Optional[float]:
        with self._lock:
            peer = self._peers.get(peer_id)
            if peer is None:
                return None
            return peer.ack_age(self._clock())

    def dead_peers(self) -> List[str]:
        with self._lock:
            return sorted(p.peer_id for p in self._peers.values() if p.dead)

    def known_peers(self) -> List[str]:
        with self._lock:
            return sorted(self._peers)

    # -- timeout sweep ---------------------------------------------------
    def check_timeouts(self, now: Optional[float] = None) -> List[str]:
        """Mark peers whose positive signals aged past the timeout.

        Returns the peers *newly* marked dead by this sweep, so callers
        (the master's failure detector) can evict exactly those.
        """
        if self.timeout <= 0:
            return []
        if now is None:
            now = self._clock()
        newly_dead = []
        with self._lock:
            for peer in self._peers.values():
                if peer.dead:
                    continue
                # A registered peer with no positive signal yet is still
                # on the clock from first sight — silent-from-birth
                # workers must age out like any other.
                reference = (peer.last_success
                             if peer.last_success is not None
                             else peer.first_seen)
                if now - reference > self.timeout:
                    peer.dead = True
                    newly_dead.append(peer.peer_id)
        for peer_id in newly_dead:
            self._registry.increment(metrics_mod.HEARTBEAT_MISS_TOTAL,
                                     downstream=peer_id)
            self._registry.increment(metrics_mod.MARKED_DEAD_TOTAL,
                                     downstream=peer_id)
        return sorted(newly_dead)

    def snapshot(self) -> Dict[str, PeerHealth]:
        with self._lock:
            return {peer_id: PeerHealth(
                        peer_id=peer.peer_id,
                        consecutive_failures=peer.consecutive_failures,
                        last_success=peer.last_success,
                        last_failure=peer.last_failure,
                        backoff=peer.backoff,
                        dead=peer.dead,
                        first_seen=peer.first_seen)
                    for peer_id, peer in self._peers.items()}
