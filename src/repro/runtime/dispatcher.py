"""Upstream dispatcher: the real runtime's adapter over the LRS control plane.

One dispatcher lives at every hosted function unit that has downstream
units.  The routing policy, ACK tracker, rate meter, once-per-second
policy update, probing, and dead-marking all live in the shared
:class:`~repro.core.controller.LrsController`; this module only
translates the threaded runtime's substrate into the controller's three
ports: ``time.monotonic`` as the Clock, a health-gated, retried fabric
send as the Egress, and the process's metrics registry as the sink.
:meth:`UpstreamDispatcher.dispatch` is called for every tuple the unit
emits; :meth:`UpstreamDispatcher.on_ack` for every timestamp echo that
returns.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro import metrics as metrics_mod
from repro.core import delivery as delivery_mod
from repro.core import overload as overload_mod
from repro.core.batching import BatchBuffer
from repro.core.controller import LrsController, PolicyConfig
from repro.core.exceptions import RoutingError
from repro.core.keyed import hash_key
from repro.core.policies import PolicyDecision
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.health import HealthMonitor
from repro.runtime.serialization import encode_batch, encode_tuple
from repro.trace import NULL_TRACER, SERIALIZE, SHED, Span, TraceSink

#: an instance is addressed as "unit@worker"
InstanceId = str

#: update-round history kept per long-lived dispatcher (policy rounds
#: run ~1/s; the simulator keeps an unbounded log instead)
DECISION_HISTORY = 256


def instance_id(unit_name: str, worker_id: str) -> InstanceId:
    return "%s@%s" % (unit_name, worker_id)


def split_instance(instance: InstanceId) -> Tuple[str, str]:
    unit_name, _, worker_id = instance.partition("@")
    if not unit_name or not worker_id:
        raise RoutingError("malformed instance id %r" % instance)
    return unit_name, worker_id


class BatchPayload:
    """Opaque egress context for one batched flush: frame + member seqs.

    The controller passes it through to :meth:`UpstreamDispatcher._try_send`
    (and retains it wholesale for at-least-once replay, so a redelivery
    re-sends the entire batch and the receiver's dedup window absorbs
    already-delivered members).
    """

    __slots__ = ("frame", "seqs", "nbytes")

    def __init__(self, frame: bytes, seqs) -> None:
        self.frame = frame
        self.seqs = list(seqs)
        #: lets the replay buffer charge the batch at its wire size
        self.nbytes = len(frame)


class _FabricEgress:
    """Egress port: encode-once payloads pushed via health-gated sends."""

    def __init__(self, dispatcher: "UpstreamDispatcher") -> None:
        self._dispatcher = dispatcher

    def send(self, downstream_id: InstanceId, seq: int,
             context: Optional[bytes]) -> Optional[float]:
        return self._dispatcher._try_send(downstream_id, context, seq)

    def send_redelivery(self, downstream_id: InstanceId, seq: int,
                        context: Optional[bytes],
                        attempt: int) -> Optional[float]:
        """Replay send: same path, but the attempt number rides along
        so the receiver can attribute the duplicate to redelivery."""
        return self._dispatcher._try_send(downstream_id, context, seq,
                                          attempt=attempt)


class UpstreamDispatcher:
    """Routes one unit's output tuples across downstream instances."""

    def __init__(self, unit_name: str,
                 send: Callable[[str, messages.Message], None],
                 policy: str = "LRS", seed: Optional[int] = None,
                 control_interval: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 edge: Optional[str] = None,
                 health: Optional[HealthMonitor] = None,
                 max_send_retries: int = 1,
                 ack_timeout: Optional[float] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 config: Optional[PolicyConfig] = None,
                 trace: Optional[TraceSink] = None,
                 device_id: str = "",
                 delivery: Optional[delivery_mod.DeliveryConfig] = None,
                 tenant: str = ""
                 ) -> None:
        self.unit_name = unit_name
        self.edge = edge or unit_name
        self.device_id = device_id
        #: owning tenant pipeline; "" is the single-tenant namespace and
        #: keeps every wire frame and metric identity unchanged
        self.tenant = tenant
        self._trace = trace if trace is not None else NULL_TRACER
        self._send = send
        self._clock = clock
        if config is None:
            defaults = PolicyConfig()
            config = PolicyConfig(
                policy=policy, seed=seed,
                control_interval=(control_interval
                                  if control_interval is not None
                                  else defaults.control_interval),
                ack_timeout=(ack_timeout if ack_timeout is not None
                             else defaults.ack_timeout),
                delivery=delivery)
        # Internal component: never the process-wide default registry —
        # an uninjected dispatcher gets a private one so two runtimes in
        # one process cannot merge their counters.
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._health = health
        self._max_send_retries = max(0, max_send_retries)
        self._lock = threading.Lock()
        self._downstreams: Dict[InstanceId, Tuple[str, str]] = {}
        self.controller = LrsController(config, clock=clock,
                                        egress=_FabricEgress(self),
                                        registry=self._registry,
                                        name=self.edge,
                                        max_decisions=DECISION_HISTORY,
                                        trace=self._trace,
                                        tenant=tenant)
        # -- batched data plane: pending tuples awaiting a flush ---------
        batching = self.controller.config.batching_config()
        self._batch_lock = threading.Lock()
        self._batch: Optional[BatchBuffer] = (BatchBuffer(batching)
                                              if batching.enabled else None)

    # -- membership --------------------------------------------------------
    def set_downstreams(self, instances) -> None:
        """Reconcile the downstream instance set (deploy updates)."""
        desired = {instance: split_instance(instance)
                   for instance in instances}
        with self._lock:
            previous = set(self._downstreams)
            self._downstreams = desired
        self.controller.set_downstreams(sorted(desired))
        if self._health is not None:
            # Instances that are new to this deploy round belong to a
            # (re)joining worker: start it from a clean slate so a
            # pre-departure failure streak can't instantly re-kill it.
            for instance in set(desired) - previous:
                self._health.reset_peer(desired[instance][1])

    def add_downstream(self, instance: InstanceId) -> None:
        parts = split_instance(instance)
        with self._lock:
            known = instance in self._downstreams
            self._downstreams[instance] = parts
        self.controller.add_downstream(instance)
        if self._health is not None and not known:
            self._health.reset_peer(parts[1])

    def remove_downstream(self, instance: InstanceId) -> None:
        with self._lock:
            self._downstreams.pop(instance, None)
        self.controller.remove_downstream(instance)

    def revive_worker(self, worker_id: str) -> None:
        """Revive every downstream instance hosted on *worker_id*.

        Called when a successor master re-hosts its instances after a
        failover: the crash dead-marked them, and an edge whose only
        downstreams live on the master can never probe its way back
        (no live member → no sends → no resurrecting ACK).  Clears the
        dead-marks and the send-failure backoff so retained frames
        redeliver on the next replay sweep.
        """
        if self._health is not None:
            self._health.forget(worker_id)
        with self._lock:
            instances = [instance
                         for instance, (_unit, hosted_on)
                         in self._downstreams.items()
                         if hosted_on == worker_id]
        for instance in instances:
            self.controller.revive_downstream(instance)

    def downstream_instances(self):
        with self._lock:
            return sorted(self._downstreams)

    def live_instances(self):
        """Downstream instances not currently marked dead."""
        return self.controller.live_downstreams()

    # -- data plane ----------------------------------------------------------
    def dispatch(self, data: DataTuple) -> Optional[InstanceId]:
        """Route one tuple; returns the chosen instance (None if lost).

        A failed send is retried up to ``max_send_retries`` times (gated
        by the health monitor's backoff window); once a downstream
        exhausts its attempts the controller marks it dead — kept in the
        membership so probing can resurrect it, but excluded from
        routing — and re-routes the tuple to the next live downstream
        (Sec. IV-C).

        A tuple already past its deadline is shed here, at egress,
        before any transmission cost is paid; the shed is counted as
        ``swing_tuples_shed_total{reason=expired}``.
        """
        now = self._clock()
        tracer = self._trace
        # The wire-carried context wins over the local sampling decision
        # so every hop traces exactly the tuples the source sampled.
        sampled = (data.trace.sampled if data.trace is not None
                   else tracer.sampled(data.seq))
        if data.expired(now):
            labels = {"reason": overload_mod.REASON_EXPIRED,
                      "edge": self.edge}
            if self.tenant:
                labels["tenant"] = self.tenant
            self._registry.increment(metrics_mod.SHED_TOTAL, **labels)
            if tracer.enabled:
                tracer.emit(Span(SHED, data.seq, now, now,
                                 device_id=self.device_id or self.edge,
                                 hop="egress:%s" % self.edge,
                                 detail=overload_mod.REASON_EXPIRED,
                                 tenant=self.tenant),
                            sampled=sampled)
            return None
        self.controller.observe_arrival(now)
        self.controller.maybe_update(now)
        if tracer.enabled:
            encode_started = self._clock()
            payload = encode_tuple(data)
            tracer.emit(Span(SERIALIZE, data.seq, encode_started,
                             self._clock(),
                             device_id=self.device_id or self.edge,
                             hop="serialize:%s" % self.edge),
                        sampled=sampled)
        else:
            payload = encode_tuple(data)
        if data.key is not None and self.controller.key_table is not None:
            # Keyed tuples bypass the batch buffer: a batch is one
            # routing decision, and key-range ownership must be honored
            # per key, not per flush.
            return self.controller.dispatch(data.seq, context=payload,
                                            deadline=data.deadline,
                                            key_hash=hash_key(data.key))
        if self._batch is None:
            return self.controller.dispatch(data.seq, context=payload,
                                            deadline=data.deadline)
        with self._batch_lock:
            full = self._batch.append((data.seq, payload, data.deadline),
                                      now)
            close = full or self._batch.due(now)
        if close:
            return self.flush(now)
        return None

    def flush(self, now: Optional[float] = None) -> Optional[InstanceId]:
        """Send the pending batch now; returns the chosen downstream.

        A one-tuple batch goes through the per-tuple controller path and
        the legacy DATA envelope, byte-identical to unbatched dispatch.
        """
        if self._batch is None:
            return None
        with self._batch_lock:
            items = self._batch.take()
        if not items:
            return None
        if now is None:
            now = self._clock()
        seqs = [seq for seq, _payload, _deadline in items]
        deadlines = [deadline for _seq, _payload, deadline in items
                     if deadline is not None]
        deadline = min(deadlines) if deadlines else None
        if len(items) == 1:
            context: object = items[0][1]
        else:
            context = BatchPayload(
                encode_batch([payload for _seq, payload, _d in items]), seqs)
        return self.controller.dispatch_batch(seqs, context=context,
                                              deadline=deadline)

    def maybe_flush(self, now: Optional[float] = None) -> Optional[InstanceId]:
        """Flush only when the oldest pending tuple has waited past
        ``max_delay`` (the hosting loop's periodic age check)."""
        if self._batch is None:
            return None
        if now is None:
            now = self._clock()
        with self._batch_lock:
            due = self._batch.due(now)
        if due:
            return self.flush(now)
        return None

    def pending_batch(self) -> int:
        """Tuples buffered and not yet flushed (drain visibility)."""
        if self._batch is None:
            return 0
        with self._batch_lock:
            return len(self._batch)

    def unsatisfiable(self) -> bool:
        """Whether every downstream is currently marked dead (the source
        admission-control backpressure signal)."""
        return self.controller.unsatisfiable()

    def _try_send(self, instance: InstanceId, payload: object,
                  seq: int, attempt: int = 1) -> Optional[float]:
        """Attempt (with bounded retry) to push one tuple (or one
        :class:`BatchPayload`) at *instance*.

        Returns the send timestamp on success, None once the instance
        exhausts its attempts (or sits inside its backoff window).
        ``attempt`` > 1 marks an at-least-once redelivery; it is stamped
        on the wire so the receiver can attribute the duplicate.
        """
        with self._lock:
            parts = self._downstreams.get(instance)
        if parts is None:
            return None
        unit_name, worker_id = parts
        attempts = 1 + self._max_send_retries
        for retry in range(attempts):
            if (self._health is not None
                    and not self._health.should_attempt(worker_id)):
                break
            if retry > 0:
                self._registry.increment(metrics_mod.RETRIED_TOTAL,
                                         downstream=instance)
            now = self._clock()
            if isinstance(payload, BatchPayload):
                message = messages.batch_message(unit_name, payload.frame,
                                                 payload.seqs, now,
                                                 tenant=self.tenant)
            else:
                message = messages.data_message(unit_name, payload, seq, now,
                                                tenant=self.tenant)
            message.payload["edge"] = self.edge
            if attempt > 1:
                message.payload["delivery_attempt"] = attempt
            try:
                self._send(worker_id, message)
            except Exception:
                if self._health is not None:
                    self._health.record_failure(worker_id)
                continue
            if self._health is not None:
                self._health.record_success(worker_id)
            return now
        return None

    def on_ack(self, seq: int, processing_delay: float) -> None:
        """Fold a downstream's timestamp echo into the estimators."""
        result = self.controller.on_ack(seq,
                                        processing_delay=processing_delay)
        if result is not None and self._health is not None:
            self._health.record_ack(split_instance(result.downstream_id)[1])

    def on_ack_batch(self, seqs, processing_delay: float) -> None:
        """Fold one batched timestamp echo into the estimators."""
        result = self.controller.on_ack_batch(
            seqs, processing_delay=processing_delay)
        if result is not None and self._health is not None:
            self._health.record_ack(split_instance(result.downstream_id)[1])

    # -- control plane ---------------------------------------------------
    def force_update(self) -> PolicyDecision:
        """Run a policy round immediately (tests, shutdown reporting)."""
        return self.controller.update()

    @property
    def policy(self):
        return self.controller.policy

    @property
    def _tracker(self):
        # Kept for tests/tools that inject tracker state directly.
        return self.controller.tracker

    @property
    def dispatched(self) -> int:
        return self.controller.dispatched

    @property
    def ack_count(self) -> int:
        return self.controller.ack_count

    def stats(self):
        return self.controller.stats()
