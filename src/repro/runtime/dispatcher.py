"""Upstream dispatcher: applies a routing policy on the real runtime.

One dispatcher lives at every hosted function unit that has downstream
units.  It owns the unit's routing policy, the ACK tracker feeding it
latency estimates (paper Sec. V-B), and the once-per-second policy
update; :meth:`UpstreamDispatcher.dispatch` is called for every tuple
the unit emits.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro import metrics as metrics_mod
from repro.core.exceptions import RoutingError
from repro.core.latency import AckTracker, RateMeter
from repro.core.policies import PolicyDecision, make_policy
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.health import HealthMonitor
from repro.runtime.serialization import encode_tuple

#: an instance is addressed as "unit@worker"
InstanceId = str


def instance_id(unit_name: str, worker_id: str) -> InstanceId:
    return "%s@%s" % (unit_name, worker_id)


def split_instance(instance: InstanceId) -> Tuple[str, str]:
    unit_name, _, worker_id = instance.partition("@")
    if not unit_name or not worker_id:
        raise RoutingError("malformed instance id %r" % instance)
    return unit_name, worker_id


class UpstreamDispatcher:
    """Routes one unit's output tuples across downstream instances."""

    def __init__(self, unit_name: str,
                 send: Callable[[str, messages.Message], None],
                 policy: str = "LRS", seed: Optional[int] = None,
                 control_interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 edge: Optional[str] = None,
                 health: Optional[HealthMonitor] = None,
                 max_send_retries: int = 1,
                 ack_timeout: float = 10.0,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        self.unit_name = unit_name
        self.edge = edge or unit_name
        self._send = send
        self._clock = clock
        self._control_interval = control_interval
        self._policy = make_policy(policy, seed=seed)
        self._registry = registry if registry is not None else metrics_mod.REGISTRY
        self._tracker = AckTracker(timeout=ack_timeout, registry=self._registry)
        self._health = health
        self._max_send_retries = max(0, max_send_retries)
        self._rate = RateMeter(window=1.0)
        self._lock = threading.Lock()
        self._last_update = clock()
        self._downstreams: Dict[InstanceId, Tuple[str, str]] = {}
        self.dispatched = 0
        self.ack_count = 0

    # -- membership --------------------------------------------------------
    def set_downstreams(self, instances) -> None:
        """Reconcile the downstream instance set (deploy updates)."""
        desired = {inst: split_instance(inst) for inst in instances}
        with self._lock:
            for instance in list(self._downstreams):
                if instance not in desired:
                    self._remove(instance)
            for instance, parts in desired.items():
                if instance not in self._downstreams:
                    self._downstreams[instance] = parts
                    self._tracker.add_downstream(instance)
                    self._policy.on_downstream_added(instance)

    def add_downstream(self, instance: InstanceId) -> None:
        with self._lock:
            if instance in self._downstreams:
                return
            self._downstreams[instance] = split_instance(instance)
            self._tracker.add_downstream(instance)
            self._policy.on_downstream_added(instance)

    def remove_downstream(self, instance: InstanceId) -> None:
        with self._lock:
            self._remove(instance)

    def _remove(self, instance: InstanceId) -> None:
        self._downstreams.pop(instance, None)
        self._tracker.remove_downstream(instance)
        if instance in self._policy.downstream_ids():
            self._policy.on_downstream_removed(instance)

    def downstream_instances(self):
        with self._lock:
            return sorted(self._downstreams)

    def live_instances(self):
        """Downstream instances not currently marked dead."""
        with self._lock:
            return sorted(instance for instance in self._downstreams
                          if self._tracker.is_alive(instance))

    # -- data plane ----------------------------------------------------------
    def dispatch(self, data: DataTuple) -> Optional[InstanceId]:
        """Route one tuple; returns the chosen instance (None if lost).

        A failed send is retried up to ``max_send_retries`` times (gated
        by the health monitor's backoff window); once a downstream
        exhausts its attempts it is marked dead — kept in the membership
        so probing can resurrect it, but excluded from routing — and the
        tuple is re-routed to the next live downstream (Sec. IV-C).
        """
        now = self._clock()
        with self._lock:
            self._rate.observe(now)
            self._maybe_update(now)
            try:
                instance = self._policy.route()
            except RoutingError:
                return None
            if instance not in self._downstreams:
                return None
        payload = encode_tuple(data)
        tried = set()
        while instance is not None:
            if self._try_send(instance, payload, data.seq):
                if tried:
                    self._registry.increment(metrics_mod.REROUTED_TOTAL,
                                             downstream=instance)
                self.dispatched += 1
                return instance
            tried.add(instance)
            self._mark_instance_dead(instance)
            instance = self._pick_fallback(tried)
        return None

    def _try_send(self, instance: InstanceId, payload: bytes,
                  seq: int) -> bool:
        """Attempt (with bounded retry) to push one tuple at *instance*."""
        with self._lock:
            parts = self._downstreams.get(instance)
        if parts is None:
            return False
        unit_name, worker_id = parts
        attempts = 1 + self._max_send_retries
        for attempt in range(attempts):
            if (self._health is not None
                    and not self._health.should_attempt(worker_id)):
                break
            if attempt > 0:
                self._registry.increment(metrics_mod.RETRIED_TOTAL,
                                         downstream=instance)
            now = self._clock()
            message = messages.data_message(unit_name, payload, seq, now)
            message.payload["edge"] = self.edge
            try:
                self._send(worker_id, message)
            except Exception:
                if self._health is not None:
                    self._health.record_failure(worker_id)
                continue
            if self._health is not None:
                self._health.record_success(worker_id)
            with self._lock:
                self._tracker.record_send(seq, instance, now)
            return True
        return False

    def _mark_instance_dead(self, instance: InstanceId) -> None:
        with self._lock:
            self._tracker.mark_dead(instance)
            self._policy.mark_dead(instance)

    def _pick_fallback(self, tried) -> Optional[InstanceId]:
        """Next live, not-yet-tried downstream; None when exhausted."""
        with self._lock:
            try:
                candidate = self._policy.route()
            except RoutingError:
                candidate = None
            if (candidate is not None and candidate not in tried
                    and candidate in self._downstreams):
                return candidate
            for instance in sorted(self._downstreams):
                if instance not in tried and self._tracker.is_alive(instance):
                    return instance
        return None

    def on_ack(self, seq: int, processing_delay: float) -> None:
        """Fold a downstream's timestamp echo into the estimators."""
        now = self._clock()
        with self._lock:
            downstream = self._tracker.pending_downstream(seq)
            sample = self._tracker.record_ack(seq, now, processing_delay)
            if sample is not None:
                self.ack_count += 1
        if sample is not None and downstream is not None \
                and self._health is not None:
            self._health.record_ack(split_instance(downstream)[1])

    # -- control plane ---------------------------------------------------
    def _maybe_update(self, now: float) -> PolicyDecision:
        if now - self._last_update >= self._control_interval:
            self._last_update = now
            self._tracker.expire_pending(now)
            return self._policy.update(self._tracker.stats(),
                                       self._rate.rate(now))
        return self._policy.last_decision

    def force_update(self) -> PolicyDecision:
        """Run a policy round immediately (tests, shutdown reporting)."""
        now = self._clock()
        with self._lock:
            self._last_update = now
            self._tracker.expire_pending(now)
            return self._policy.update(self._tracker.stats(),
                                       self._rate.rate(now))

    @property
    def policy(self):
        return self._policy

    def stats(self):
        with self._lock:
            return self._tracker.stats()
