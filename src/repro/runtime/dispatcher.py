"""Upstream dispatcher: applies a routing policy on the real runtime.

One dispatcher lives at every hosted function unit that has downstream
units.  It owns the unit's routing policy, the ACK tracker feeding it
latency estimates (paper Sec. V-B), and the once-per-second policy
update; :meth:`UpstreamDispatcher.dispatch` is called for every tuple
the unit emits.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.exceptions import RoutingError
from repro.core.latency import AckTracker, RateMeter
from repro.core.policies import PolicyDecision, make_policy
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.serialization import encode_tuple

#: an instance is addressed as "unit@worker"
InstanceId = str


def instance_id(unit_name: str, worker_id: str) -> InstanceId:
    return "%s@%s" % (unit_name, worker_id)


def split_instance(instance: InstanceId) -> Tuple[str, str]:
    unit_name, _, worker_id = instance.partition("@")
    if not unit_name or not worker_id:
        raise RoutingError("malformed instance id %r" % instance)
    return unit_name, worker_id


class UpstreamDispatcher:
    """Routes one unit's output tuples across downstream instances."""

    def __init__(self, unit_name: str,
                 send: Callable[[str, messages.Message], None],
                 policy: str = "LRS", seed: Optional[int] = None,
                 control_interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 edge: Optional[str] = None) -> None:
        self.unit_name = unit_name
        self.edge = edge or unit_name
        self._send = send
        self._clock = clock
        self._control_interval = control_interval
        self._policy = make_policy(policy, seed=seed)
        self._tracker = AckTracker()
        self._rate = RateMeter(window=1.0)
        self._lock = threading.Lock()
        self._last_update = clock()
        self._downstreams: Dict[InstanceId, Tuple[str, str]] = {}
        self.dispatched = 0
        self.ack_count = 0

    # -- membership --------------------------------------------------------
    def set_downstreams(self, instances) -> None:
        """Reconcile the downstream instance set (deploy updates)."""
        desired = {inst: split_instance(inst) for inst in instances}
        with self._lock:
            for instance in list(self._downstreams):
                if instance not in desired:
                    self._remove(instance)
            for instance, parts in desired.items():
                if instance not in self._downstreams:
                    self._downstreams[instance] = parts
                    self._tracker.add_downstream(instance)
                    self._policy.on_downstream_added(instance)

    def add_downstream(self, instance: InstanceId) -> None:
        with self._lock:
            if instance in self._downstreams:
                return
            self._downstreams[instance] = split_instance(instance)
            self._tracker.add_downstream(instance)
            self._policy.on_downstream_added(instance)

    def remove_downstream(self, instance: InstanceId) -> None:
        with self._lock:
            self._remove(instance)

    def _remove(self, instance: InstanceId) -> None:
        self._downstreams.pop(instance, None)
        self._tracker.remove_downstream(instance)
        if instance in self._policy.downstream_ids():
            self._policy.on_downstream_removed(instance)

    def downstream_instances(self):
        with self._lock:
            return sorted(self._downstreams)

    # -- data plane ----------------------------------------------------------
    def dispatch(self, data: DataTuple) -> Optional[InstanceId]:
        """Route one tuple; returns the chosen instance (None if lost)."""
        now = self._clock()
        with self._lock:
            self._rate.observe(now)
            self._maybe_update(now)
            try:
                instance = self._policy.route()
            except RoutingError:
                return None
            parts = self._downstreams.get(instance)
            if parts is None:
                return None
            unit_name, worker_id = parts
            self._tracker.record_send(data.seq, instance, now)
        payload = encode_tuple(data)
        message = messages.data_message(unit_name, payload, data.seq, now)
        message.payload["edge"] = self.edge
        try:
            self._send(worker_id, message)
        except Exception:
            # Broken link: remove the downstream and re-route (Sec. IV-C).
            self.remove_downstream(instance)
            with self._lock:
                try:
                    fallback = self._policy.route()
                except RoutingError:
                    return None
                fallback_parts = self._downstreams.get(fallback)
                if fallback_parts is None:
                    return None
            message = messages.data_message(fallback_parts[0], payload,
                                            data.seq, self._clock())
            message.payload["edge"] = self.edge
            try:
                self._send(fallback_parts[1], message)
            except Exception:
                return None
            instance = fallback
        self.dispatched += 1
        return instance

    def on_ack(self, seq: int, processing_delay: float) -> None:
        """Fold a downstream's timestamp echo into the estimators."""
        now = self._clock()
        with self._lock:
            sample = self._tracker.record_ack(seq, now, processing_delay)
            if sample is not None:
                self.ack_count += 1

    # -- control plane ---------------------------------------------------
    def _maybe_update(self, now: float) -> PolicyDecision:
        if now - self._last_update >= self._control_interval:
            self._last_update = now
            self._tracker.expire_pending(now)
            return self._policy.update(self._tracker.stats(),
                                       self._rate.rate(now))
        return self._policy.last_decision

    def force_update(self) -> PolicyDecision:
        """Run a policy round immediately (tests, shutdown reporting)."""
        now = self._clock()
        with self._lock:
            self._last_update = now
            self._tracker.expire_pending(now)
            return self._policy.update(self._tracker.stats(),
                                       self._rate.rate(now))

    @property
    def policy(self):
        return self._policy

    def stats(self):
        with self._lock:
            return self._tracker.stats()
