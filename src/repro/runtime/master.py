"""Master: deploys app graphs and coordinates the shared swarm.

"The master deploys the app dataflow graph by assigning function units
and connecting devices ... The master thread is responsible only for
control, bootstrapping connections and sending start/stop commands.  It
can co-locate on the same device with worker threads." (paper Sec. IV-B)

The control plane is split in two layers:

* :class:`SwarmPool` — pool-level membership and health.  One pool
  tracks the worker set (JOIN / LEAVE / LEAVING / heartbeats, failure
  detection) for *every* pipeline sharing the swarm, and notifies each
  attached session when membership changes.
* :class:`DeploymentSession` — per-tenant deployment.  One session owns
  one pipeline's graph, placement and lifecycle (deploy / start / stop)
  and tags every control message with its tenant id, so a shared worker
  can host units from many tenants concurrently.

:class:`Master` composes one pool with the default-tenant session and
preserves the historical single-app API; ``add_pipeline`` attaches
further tenants to the same pool.  The master owns its own
:class:`~repro.runtime.worker.WorkerRuntime` (so sources and sinks can
live on the master device, like phone A in the evaluation).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import metrics as metrics_mod
from repro.core import delivery as delivery_mod
from repro.core import multitenant as multitenant_mod
from repro.core import overload as overload_mod
from repro.core.controller import PolicyConfig
from repro.core.exceptions import DeploymentError
from repro.core.graph import AppGraph
from repro.core.recovery import (CheckpointManager, CheckpointStore,
                                 ControlPlaneCheckpoint, RecoveryConfig,
                                 SessionState, retention_entries)
from repro.runtime import messages
from repro.runtime.dispatcher import instance_id
from repro.runtime.fabric import Fabric
from repro.runtime.health import HealthMonitor
from repro.runtime.worker import WorkerRuntime
from repro.trace import NULL_TRACER, RECOVERY, Span, TraceSink


@dataclass
class Placement:
    """Which workers host each logical function unit.

    The default (:meth:`Placement.default`) puts sources and sinks on the
    master device and replicates every compute unit on all workers —
    matching the paper's deployments (phone A sources and displays; the
    rest compute).
    """

    assignments: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def default(cls, graph: AppGraph, master_id: str,
                worker_ids: Sequence[str]) -> "Placement":
        assignments: Dict[str, List[str]] = {}
        for spec in graph.sources() + graph.sinks():
            assignments[spec.name] = [master_id]
        compute_hosts = sorted(worker_ids) or [master_id]
        for spec in graph.compute_units():
            assignments[spec.name] = list(compute_hosts)
        return cls(assignments)

    def workers_for(self, unit_name: str) -> List[str]:
        try:
            return list(self.assignments[unit_name])
        except KeyError:
            raise DeploymentError("no placement for unit %r" % unit_name) from None

    def add_worker(self, graph: AppGraph, worker_id: str) -> None:
        """Activate all compute units on a newly joined worker."""
        for spec in graph.compute_units():
            hosts = self.assignments.setdefault(spec.name, [])
            if worker_id not in hosts:
                hosts.append(worker_id)
                hosts.sort()

    def remove_worker(self, worker_id: str) -> None:
        for hosts in self.assignments.values():
            if worker_id in hosts:
                hosts.remove(worker_id)

    def units_on(self, worker_id: str) -> List[str]:
        return sorted(name for name, hosts in self.assignments.items()
                      if worker_id in hosts)

    def instances_of(self, unit_name: str) -> List[str]:
        return [instance_id(unit_name, worker)
                for worker in self.workers_for(unit_name)]


class SwarmPool:
    """Pool-level membership and health for a shared swarm.

    Tracks the worker set once for every tenant pipeline attached to
    it: JOIN admits a device into the pool, LEAVE / LEAVING / heartbeat
    timeout evicts it, and every attached :class:`DeploymentSession` is
    notified so its routing tables follow the shared membership.
    """

    def __init__(self, master_id: str, fabric: Fabric,
                 heartbeat_timeout: float = 0.0,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 epoch: int = 0,
                 detector_interval: Optional[float] = None
                 ) -> None:
        if heartbeat_timeout < 0:
            raise DeploymentError("heartbeat timeout must be >= 0")
        if epoch < 0:
            raise DeploymentError("epoch must be >= 0")
        self.master_id = master_id
        self.fabric = fabric
        self.heartbeat_timeout = heartbeat_timeout
        #: this master incarnation's fencing epoch; 0 = never recovered,
        #: where every control frame stays byte-identical to history
        self.epoch = epoch
        self._detector_interval = detector_interval
        #: per-worker hosted-unit inventory from re-registration JOINs
        self.inventory: Dict[str, List[str]] = {}
        #: called (outside the pool lock) after any membership change;
        #: the master hangs its on-mutation checkpoint write here
        self.on_mutation: Optional[Callable[[], None]] = None
        #: reentrant: a membership event holds the lock while it calls
        #: back into every session, and sessions call pool helpers
        self.lock = threading.RLock()
        self._workers: List[str] = []
        self._sessions: List["DeploymentSession"] = []
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self.registry = (registry if registry is not None
                         else metrics_mod.MetricsRegistry())
        self.health = HealthMonitor(timeout=heartbeat_timeout,
                                    registry=self.registry)
        self._detector: Optional[threading.Thread] = None
        self._detector_running = threading.Event()
        self._stopped = False
        if heartbeat_timeout > 0:
            self._detector_running.set()
            self._detector = threading.Thread(
                target=self._detect_failures,
                name="failure-detector:%s" % master_id, daemon=True)
            self._detector.start()

    # -- sessions ----------------------------------------------------------
    def attach(self, session: "DeploymentSession") -> None:
        with self.lock:
            self._sessions.append(session)

    def sessions(self) -> List["DeploymentSession"]:
        with self.lock:
            return list(self._sessions)

    # -- membership --------------------------------------------------------
    def handle_control(self, sender_id: str,
                       message: messages.Message) -> None:
        epoch = message.payload.get("epoch", 0)
        if isinstance(epoch, int) and epoch > self.epoch:
            # Zombie step-aside: this worker already follows a NEWER
            # master incarnation, so a stale survivor of an old epoch
            # must not record (or act on) its control traffic.
            self.registry.increment(metrics_mod.FENCED_TOTAL,
                                    device=self.master_id,
                                    kind=message.kind)
            return
        if message.kind == messages.JOIN:
            self.health.record_heartbeat(message.payload["worker_id"])
            self.handle_join(message.payload["worker_id"],
                             units=message.payload.get("units"))
        elif message.kind == messages.LEAVE:
            self.handle_leave(message.payload["worker_id"])
        elif message.kind == messages.LEAVING:
            # Graceful drain: drop the worker from every routing table
            # NOW, while it keeps running until its queue is empty.
            self.handle_leave(message.payload["worker_id"])
        elif message.kind == messages.HEARTBEAT:
            worker_id = message.payload["worker_id"]
            self.health.record_heartbeat(worker_id)
            if self.epoch > 0 and worker_id not in self.worker_ids:
                # A recovered master hears a survivor it has not
                # re-admitted yet: announce the new epoch so the worker
                # re-registers with its inventory.  Absent at epoch 0,
                # so the steady-state heartbeat path sends no replies.
                try:
                    self.fabric.send(
                        self.master_id, worker_id,
                        messages.welcome_message(worker_id,
                                                 epoch=self.epoch))
                except Exception:
                    pass

    def _detect_failures(self) -> None:
        """Evict workers whose heartbeats stopped (broken link / crash)."""
        interval = (self._detector_interval
                    if self._detector_interval is not None
                    else self.heartbeat_timeout / 2.0)
        while self._detector_running.is_set():
            time.sleep(interval)
            members = set(self.worker_ids)
            for worker_id in self.health.check_timeouts():
                if worker_id in members:
                    self.handle_leave(worker_id)

    def handle_join(self, worker_id: str,
                    units: Optional[Sequence[str]] = None) -> None:
        """Involve a new device as soon as it connects (Sec. IV-C).

        A re-registration after a master recovery carries the worker's
        hosted-unit inventory in *units*; it is recorded either way so
        the recovered master can reconcile checkpoint state against
        what survivors actually still host.
        """
        with self.lock:
            if units is not None:
                self.inventory[worker_id] = list(units)
            if self._stopped or worker_id in self._workers:
                return
            # A rejoin starts from a clean slate: stale failure history
            # from a previous incarnation must not shadow the new one.
            # The JOIN itself is a positive signal, so the heartbeat
            # clock starts now — a joiner that then goes silent still
            # ages out.
            self.health.reset_peer(worker_id)
            self.health.record_heartbeat(worker_id)
            self._workers.append(worker_id)
            for session in self._sessions:
                session.on_join(worker_id)
        self._notify_mutation()

    def handle_leave(self, worker_id: str) -> None:
        """Remove a departed device's instances from all routing tables.

        A no-op once the pool is stopped: the failure detector (or a
        straggling LEAVE/LEAVING message) may race ``stop()``, and a
        late call must neither raise nor resurrect control traffic.
        """
        if self._stopped:
            return
        self.health.forget(worker_id)
        with self.lock:
            if self._stopped:
                return
            if worker_id in self._workers:
                self._workers.remove(worker_id)
            self.inventory.pop(worker_id, None)
            for session in self._sessions:
                session.on_leave(worker_id)
        self._notify_mutation()

    def _notify_mutation(self) -> None:
        if self.on_mutation is not None:
            try:
                self.on_mutation()
            except Exception:
                pass  # a failed checkpoint write must not break control

    def admit(self, worker_ids: Sequence[str]) -> None:
        """Add workers to the pool without the JOIN protocol (an
        explicit ``deploy(worker_ids=...)`` names its devices)."""
        with self.lock:
            for worker_id in worker_ids:
                if worker_id not in self._workers:
                    self._workers.append(worker_id)

    @property
    def worker_ids(self) -> List[str]:
        with self.lock:
            return list(self._workers)

    def members(self) -> List[str]:
        """Every control-plane endpoint: the master device + workers."""
        with self.lock:
            return [self.master_id] + self._workers

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- lifecycle ---------------------------------------------------------
    def stop(self) -> None:
        """Stop membership tracking; idempotent."""
        with self.lock:
            self._stopped = True
        self._detector_running.clear()
        if self._detector is not None:
            self._detector.join(timeout=2.0)
            self._detector = None


class DeploymentSession:
    """One tenant pipeline deployed over the shared pool.

    Owns the tenant's graph, placement and lifecycle.  Every control
    message it emits is tagged with the tenant id, so workers scope
    deploys/starts/stops to this pipeline's units; the default tenant
    (``""``) emits untagged messages, byte-identical to the historical
    single-app control plane.
    """

    def __init__(self, pool: SwarmPool, graph: AppGraph,
                 tenant_id: str = "") -> None:
        graph.validate()
        self.pool = pool
        self.graph = graph
        self.tenant_id = tenant_id
        self.placement: Optional[Placement] = None
        self.started = False
        pool.attach(self)

    # -- membership callbacks (called under the pool lock) ----------------
    def on_join(self, worker_id: str) -> None:
        if self.placement is None:
            return  # not deployed yet; the worker waits for deploy()
        self.placement.add_worker(self.graph, worker_id)
        self._send_deploy(worker_id)
        self._refresh_upstreams()
        if self.started:
            self.pool.fabric.send(
                self.pool.master_id, worker_id,
                messages.start_message(tenant=self.tenant_id,
                                       epoch=self.pool.epoch))

    def on_leave(self, worker_id: str) -> None:
        if self.placement is None:
            return
        self.placement.remove_worker(worker_id)
        self._refresh_upstreams()

    # -- deployment --------------------------------------------------------
    def deploy(self, worker_ids: Optional[Sequence[str]] = None) -> None:
        """Compute the placement and push DEPLOY to every device."""
        with self.pool.lock:
            if worker_ids is not None:
                self.pool.admit(worker_ids)
            self.placement = Placement.default(self.graph,
                                               self.pool.master_id,
                                               self.pool.worker_ids)
            for worker_id in self.pool.members():
                self._send_deploy(worker_id)

    def _send_deploy(self, worker_id: str) -> None:
        assert self.placement is not None
        unit_names = self.placement.units_on(worker_id)
        downstream_map = {}
        for unit_name in unit_names:
            for downstream_unit in self.graph.downstreams(unit_name):
                edge = WorkerRuntime.edge_key(unit_name, downstream_unit,
                                              self.tenant_id)
                downstream_map[edge] = self.placement.instances_of(
                    downstream_unit)
        self.pool.fabric.send(
            self.pool.master_id, worker_id,
            messages.deploy_message(worker_id, unit_names, downstream_map,
                                    tenant=self.tenant_id,
                                    epoch=self.pool.epoch))

    def _refresh_upstreams(self) -> None:
        """Re-send DEPLOY everywhere so routing tables reflect membership.

        A device may vanish between membership snapshot and send (churn
        is the normal case); its refresh is skipped, not fatal — the
        next membership change re-sends anyway.
        """
        assert self.placement is not None
        for worker_id in self.pool.members():
            try:
                self._send_deploy(worker_id)
            except Exception:
                continue

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        """Instruct this tenant's source devices to begin sensing."""
        with self.pool.lock:
            if self.placement is None:
                raise DeploymentError("deploy() must run before start()")
            self.started = True
            for worker_id in self.pool.members():
                self.pool.fabric.send(
                    self.pool.master_id, worker_id,
                    messages.start_message(tenant=self.tenant_id,
                                           epoch=self.pool.epoch))

    def stop(self) -> None:
        """Halt this tenant's sources; other tenants keep running.

        Only meaningful for non-default tenants — workers treat an
        untagged STOP as a global shutdown, so the default session's
        teardown goes through :meth:`Master.stop` instead.
        """
        with self.pool.lock:
            self.started = False
            if self.tenant_id == "":
                return
            for worker_id in self.pool.members():
                try:
                    self.pool.fabric.send(
                        self.pool.master_id, worker_id,
                        messages.stop_message(tenant=self.tenant_id,
                                              epoch=self.pool.epoch))
                except Exception:
                    continue


class Master:
    """Coordinates deployment, membership and execution of one app.

    Historical single-app facade over the :class:`SwarmPool` +
    :class:`DeploymentSession` split: the constructor graph becomes the
    default tenant's session, and :meth:`add_pipeline` attaches further
    tenant pipelines to the same shared pool.
    """

    def __init__(self, master_id: str, fabric: Fabric, graph: AppGraph,
                 policy: str = "LRS", source_rate: float = 24.0,
                 seed: Optional[int] = None,
                 control_interval: float = 1.0,
                 heartbeat_timeout: float = 0.0,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 trace: Optional[TraceSink] = None,
                 delivery: Optional[delivery_mod.DeliveryConfig] = None,
                 recovery: Optional[RecoveryConfig] = None,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 epoch: int = 0,
                 policy_config: Optional[PolicyConfig] = None
                 ) -> None:
        graph.validate()
        self.master_id = master_id
        self.fabric = fabric
        self.graph = graph
        self.policy = policy
        self.heartbeat_timeout = heartbeat_timeout
        self.trace = trace if trace is not None else NULL_TRACER
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        # Top-level entry point: when the caller injects no registry,
        # create ONE private registry here and thread it through the
        # pool, the health monitor and the co-located worker runtime, so
        # their metrics aggregate without touching the process default.
        self.registry = (registry if registry is not None
                         else metrics_mod.MetricsRegistry())
        self.pool = SwarmPool(master_id, fabric,
                              heartbeat_timeout=heartbeat_timeout,
                              registry=self.registry, epoch=epoch,
                              detector_interval=self.recovery
                              .detector_interval)
        self.health = self.pool.health
        #: optional crash-recovery checkpointing; None = historical
        #: unrecoverable master (nothing written, nothing to restore)
        self.checkpoints = (CheckpointManager(self._capture_checkpoint,
                                              checkpoint_store,
                                              config=self.recovery,
                                              registry=self.registry)
                            if checkpoint_store is not None else None)
        if self.checkpoints is not None:
            self.pool.on_mutation = self.checkpoints.mutation
        self.runtime = WorkerRuntime(
            master_id, fabric, graph, policy=policy, source_rate=source_rate,
            seed=seed, control_interval=control_interval,
            control_handler=self._handle_control,
            policy_config=policy_config,
            overload=overload, registry=self.registry, trace=trace,
            delivery=delivery, recovery=self.recovery)
        self.session = DeploymentSession(self.pool, graph, tenant_id="")
        self._tenant_sessions: Dict[str, DeploymentSession] = {}
        #: checkpointed retention staged by restore(), imported into the
        #: runtime's dispatchers once the new deployment exists
        self._staged_retention: Tuple = ()
        #: checkpointed key-range tables staged alongside it
        self._staged_key_ranges: Tuple = ()
        self._crashed = False

    @property
    def epoch(self) -> int:
        return self.pool.epoch

    def _handle_control(self, sender_id: str,
                        message: messages.Message) -> None:
        """Pool control handling plus piggybacked periodic checkpoints.

        Heartbeats arrive every interval from every worker, so hanging
        ``maybe_checkpoint`` here gives the periodic path a clock
        without a dedicated timer thread.
        """
        self.pool.handle_control(sender_id, message)
        if self.checkpoints is not None:
            self.checkpoints.maybe_checkpoint()

    # -- multi-tenancy -----------------------------------------------------
    def add_pipeline(self,
                     deployment: "multitenant_mod.PipelineDeployment",
                     graph: AppGraph) -> DeploymentSession:
        """Attach one tenant's pipeline to the shared pool.

        Registers the graph on the master's own runtime (callers must
        register it on every remote worker too — the workers host units
        from this graph once the session deploys) and returns the
        tenant's :class:`DeploymentSession`.
        """
        tenant_id = deployment.tenant_id
        if tenant_id in self._tenant_sessions or tenant_id == "":
            raise DeploymentError("tenant %r already deployed" % tenant_id)
        self.runtime.register_pipeline(tenant_id, graph)
        session = DeploymentSession(self.pool, graph, tenant_id=tenant_id)
        self._tenant_sessions[tenant_id] = session
        return session

    def tenant_session(self, tenant_id: str) -> DeploymentSession:
        if tenant_id == "":
            return self.session
        try:
            return self._tenant_sessions[tenant_id]
        except KeyError:
            raise DeploymentError("unknown tenant %r" % tenant_id) from None

    # -- membership (delegated to the pool) --------------------------------
    def handle_join(self, worker_id: str) -> None:
        self.pool.handle_join(worker_id)

    def handle_leave(self, worker_id: str) -> None:
        self.pool.handle_leave(worker_id)

    @property
    def worker_ids(self) -> List[str]:
        return self.pool.worker_ids

    @property
    def placement(self) -> Optional[Placement]:
        return self.session.placement

    @property
    def started(self) -> bool:
        return self.session.started

    @property
    def _detector(self) -> Optional[threading.Thread]:
        return self.pool._detector

    # -- deployment / execution (default-tenant session) -------------------
    def deploy(self, worker_ids: Optional[Sequence[str]] = None) -> None:
        """Compute the placement and push DEPLOY to every device."""
        self.session.deploy(worker_ids)

    def start(self) -> None:
        """Instruct source devices to begin sensing (Fig. 3 step 4)."""
        self.session.start()

    def stop(self) -> None:
        """Shut down control; idempotent, and late membership events
        arriving after this point are ignored rather than raised."""
        self.pool.stop()
        with self.pool.lock:
            self.session.started = False
            for session in self._tenant_sessions.values():
                session.started = False
            for worker_id in self.pool.worker_ids:
                try:
                    self.fabric.send(self.master_id, worker_id,
                                     messages.stop_message(
                                         epoch=self.pool.epoch))
                except Exception:
                    continue

    # -- crash recovery ----------------------------------------------------
    def _capture_checkpoint(self) -> ControlPlaneCheckpoint:
        """Snapshot everything a successor needs (checkpoint writer)."""
        with self.pool.lock:
            workers = tuple(self.pool.worker_ids)
            sessions = []
            for session in [self.session] \
                    + sorted(self._tenant_sessions.values(),
                             key=lambda s: s.tenant_id):
                if session.placement is None:
                    continue
                assignments = tuple(sorted(
                    (unit, tuple(hosts))
                    for unit, hosts in session.placement.assignments.items()))
                sessions.append(SessionState(tenant=session.tenant_id,
                                             started=session.started,
                                             assignments=assignments))
        retention = tuple(
            (edge, retention_entries(items))
            for edge, items in sorted(self.runtime.export_retention()
                                      .items()))
        key_ranges = tuple(
            (edge, tuple((lo, hi, owner) for lo, hi, owner in ranges))
            for edge, ranges in sorted(self.runtime.export_key_ranges()
                                       .items()))
        return ControlPlaneCheckpoint(
            epoch=self.pool.epoch, workers=workers, sessions=tuple(sessions),
            retention=retention,
            dedup=tuple((edge, seq)
                        for edge, seq in self.runtime.dedup_snapshot()),
            key_ranges=key_ranges)

    def checkpoint(self) -> None:
        """Write one checkpoint now (no-op without a store)."""
        if self.checkpoints is not None:
            self.checkpoints.write()

    def crash(self) -> None:
        """Abrupt master death for failover testing: no STOP broadcast.

        Halts the control plane and the co-located runtime, writes one
        final checkpoint (standing in for a per-dispatch write-ahead
        log — see DESIGN.md §12), and frees the fabric endpoint so a
        successor can register it.  Workers learn of the death only
        through silence: their units, dispatchers and buffered ACKs all
        stay live.
        """
        if self._crashed:
            return
        self._crashed = True
        self.pool.stop()
        self.runtime.stop()
        if self.checkpoints is not None:
            self.checkpoints.write()
        try:
            self.fabric.unregister(self.master_id)
        except Exception:
            pass

    def restore(self, checkpoint: ControlPlaneCheckpoint) -> Tuple[str, ...]:
        """Adopt a predecessor's checkpoint (call before deploy/start).

        Seeds the co-located sink's dedup window (so redelivered
        retention is absorbed, not double-counted), stages the
        checkpointed replay retention for :meth:`import_retention`, and
        counts ``swing_master_recoveries_total``.  Returns the
        checkpointed worker set so callers can await re-registration
        before computing a placement.
        """
        if self.pool.epoch <= checkpoint.epoch:
            raise DeploymentError(
                "recovered master must run a newer epoch than its "
                "checkpoint (have %d, checkpoint %d)"
                % (self.pool.epoch, checkpoint.epoch))
        self.runtime.restore_dedup(checkpoint.dedup)
        self._staged_retention = checkpoint.retention
        self._staged_key_ranges = checkpoint.key_ranges
        self.registry.increment(metrics_mod.MASTER_RECOVERIES_TOTAL,
                                device=self.master_id)
        if self.trace.enabled:
            now = time.monotonic()
            self.trace.emit(Span(RECOVERY, 0, now, now,
                                 device_id=self.master_id,
                                 hop="master:%s" % self.master_id,
                                 detail="epoch=%d" % self.pool.epoch))
        return checkpoint.workers

    def import_retention(self) -> int:
        """Re-retain staged checkpoint retention (call after deploy).

        The runtime's edge dispatchers only exist once the new
        deployment's DEPLOY has been processed, so the import is a
        separate step; entries land unassigned and the next control
        sweep redelivers them.  Returns the number imported.
        """
        count = 0
        for edge, entries in self._staged_retention:
            count += self.runtime.import_retention(edge, entries)
        self._staged_retention = ()
        # Keyed routing survives failover too: re-apply the predecessor's
        # range tables over the fresh deploy's bootstrap tables, so every
        # split/migration it performed stays in force.
        for edge, ranges in self._staged_key_ranges:
            self.runtime.import_key_ranges(edge, ranges)
        self._staged_key_ranges = ()
        return count
