"""Master: deploys the app graph and coordinates the swarm.

"The master deploys the app dataflow graph by assigning function units
and connecting devices ... The master thread is responsible only for
control, bootstrapping connections and sending start/stop commands.  It
can co-locate on the same device with worker threads." (paper Sec. IV-B)

The master here owns its own :class:`~repro.runtime.worker.WorkerRuntime`
(so sources and sinks can live on the master device, like phone A in the
evaluation) plus the control logic: placement planning, JOIN handling
(deploy to the newcomer, refresh upstream routing tables) and LEAVE
handling (drop the departed instances everywhere).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import metrics as metrics_mod
from repro.core import delivery as delivery_mod
from repro.core import overload as overload_mod
from repro.core.exceptions import DeploymentError
from repro.core.graph import AppGraph
from repro.runtime import messages
from repro.runtime.dispatcher import instance_id
from repro.runtime.fabric import Fabric
from repro.runtime.health import HealthMonitor
from repro.runtime.worker import WorkerRuntime


@dataclass
class Placement:
    """Which workers host each logical function unit.

    The default (:meth:`Placement.default`) puts sources and sinks on the
    master device and replicates every compute unit on all workers —
    matching the paper's deployments (phone A sources and displays; the
    rest compute).
    """

    assignments: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def default(cls, graph: AppGraph, master_id: str,
                worker_ids: Sequence[str]) -> "Placement":
        assignments: Dict[str, List[str]] = {}
        for spec in graph.sources() + graph.sinks():
            assignments[spec.name] = [master_id]
        compute_hosts = sorted(worker_ids) or [master_id]
        for spec in graph.compute_units():
            assignments[spec.name] = list(compute_hosts)
        return cls(assignments)

    def workers_for(self, unit_name: str) -> List[str]:
        try:
            return list(self.assignments[unit_name])
        except KeyError:
            raise DeploymentError("no placement for unit %r" % unit_name) from None

    def add_worker(self, graph: AppGraph, worker_id: str) -> None:
        """Activate all compute units on a newly joined worker."""
        for spec in graph.compute_units():
            hosts = self.assignments.setdefault(spec.name, [])
            if worker_id not in hosts:
                hosts.append(worker_id)
                hosts.sort()

    def remove_worker(self, worker_id: str) -> None:
        for hosts in self.assignments.values():
            if worker_id in hosts:
                hosts.remove(worker_id)

    def units_on(self, worker_id: str) -> List[str]:
        return sorted(name for name, hosts in self.assignments.items()
                      if worker_id in hosts)

    def instances_of(self, unit_name: str) -> List[str]:
        return [instance_id(unit_name, worker)
                for worker in self.workers_for(unit_name)]


class Master:
    """Coordinates deployment, membership and execution of one app."""

    def __init__(self, master_id: str, fabric: Fabric, graph: AppGraph,
                 policy: str = "LRS", source_rate: float = 24.0,
                 seed: Optional[int] = None,
                 control_interval: float = 1.0,
                 heartbeat_timeout: float = 0.0,
                 overload: Optional[overload_mod.OverloadConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 trace: Optional[object] = None,
                 delivery: Optional[delivery_mod.DeliveryConfig] = None
                 ) -> None:
        graph.validate()
        if heartbeat_timeout < 0:
            raise DeploymentError("heartbeat timeout must be >= 0")
        self.master_id = master_id
        self.fabric = fabric
        self.graph = graph
        self.policy = policy
        self.heartbeat_timeout = heartbeat_timeout
        self._lock = threading.Lock()
        self._workers: List[str] = []
        self.health = HealthMonitor(timeout=heartbeat_timeout)
        self._detector: Optional[threading.Thread] = None
        self._detector_running = threading.Event()
        self.placement: Optional[Placement] = None
        self.runtime = WorkerRuntime(
            master_id, fabric, graph, policy=policy, source_rate=source_rate,
            seed=seed, control_interval=control_interval,
            control_handler=self._on_control,
            overload=overload, registry=registry, trace=trace,
            delivery=delivery)
        self.started = False
        self._stopped = False
        if heartbeat_timeout > 0:
            self._detector_running.set()
            self._detector = threading.Thread(
                target=self._detect_failures,
                name="failure-detector:%s" % master_id, daemon=True)
            self._detector.start()

    # -- membership --------------------------------------------------------
    def _on_control(self, sender_id: str, message: messages.Message) -> None:
        if message.kind == messages.JOIN:
            self.health.record_heartbeat(message.payload["worker_id"])
            self.handle_join(message.payload["worker_id"])
        elif message.kind == messages.LEAVE:
            self.handle_leave(message.payload["worker_id"])
        elif message.kind == messages.LEAVING:
            # Graceful drain: drop the worker from every routing table
            # NOW, while it keeps running until its queue is empty.
            self.handle_leave(message.payload["worker_id"])
        elif message.kind == messages.HEARTBEAT:
            self.health.record_heartbeat(message.payload["worker_id"])

    def _detect_failures(self) -> None:
        """Evict workers whose heartbeats stopped (broken link / crash)."""
        while self._detector_running.is_set():
            time.sleep(self.heartbeat_timeout / 2.0)
            members = set(self.worker_ids)
            for worker_id in self.health.check_timeouts():
                if worker_id in members:
                    self.handle_leave(worker_id)

    def handle_join(self, worker_id: str) -> None:
        """Involve a new device as soon as it connects (Sec. IV-C)."""
        with self._lock:
            if self._stopped or worker_id in self._workers:
                return
            # A rejoin starts from a clean slate: stale failure history
            # from a previous incarnation must not shadow the new one.
            # The JOIN itself is a positive signal, so the heartbeat
            # clock starts now — a joiner that then goes silent still
            # ages out.
            self.health.reset_peer(worker_id)
            self.health.record_heartbeat(worker_id)
            self._workers.append(worker_id)
            if self.placement is None:
                return  # not deployed yet; the worker waits for deploy()
            self.placement.add_worker(self.graph, worker_id)
            self._send_deploy(worker_id)
            self._refresh_upstreams()
            if self.started:
                self.fabric.send(self.master_id, worker_id,
                                 messages.start_message())

    def handle_leave(self, worker_id: str) -> None:
        """Remove a departed device's instances from all routing tables.

        A no-op once the master is stopped: the failure detector (or a
        straggling LEAVE/LEAVING message) may race ``stop()``, and a
        late call must neither raise nor resurrect control traffic.
        """
        if self._stopped:
            return
        self.health.forget(worker_id)
        with self._lock:
            if self._stopped:
                return
            if worker_id in self._workers:
                self._workers.remove(worker_id)
            if self.placement is None:
                return
            self.placement.remove_worker(worker_id)
            self._refresh_upstreams()

    @property
    def worker_ids(self) -> List[str]:
        with self._lock:
            return list(self._workers)

    # -- deployment --------------------------------------------------------
    def deploy(self, worker_ids: Optional[Sequence[str]] = None) -> None:
        """Compute the placement and push DEPLOY to every device."""
        with self._lock:
            if worker_ids is not None:
                for worker_id in worker_ids:
                    if worker_id not in self._workers:
                        self._workers.append(worker_id)
            self.placement = Placement.default(self.graph, self.master_id,
                                               self._workers)
            for worker_id in [self.master_id] + self._workers:
                self._send_deploy(worker_id)

    def _send_deploy(self, worker_id: str) -> None:
        assert self.placement is not None
        unit_names = self.placement.units_on(worker_id)
        downstream_map = {}
        for unit_name in unit_names:
            for downstream_unit in self.graph.downstreams(unit_name):
                edge = WorkerRuntime.edge_key(unit_name, downstream_unit)
                downstream_map[edge] = self.placement.instances_of(downstream_unit)
        self.fabric.send(self.master_id, worker_id,
                         messages.deploy_message(worker_id, unit_names,
                                                 downstream_map))

    def _refresh_upstreams(self) -> None:
        """Re-send DEPLOY everywhere so routing tables reflect membership.

        A device may vanish between membership snapshot and send (churn
        is the normal case); its refresh is skipped, not fatal — the
        next membership change re-sends anyway.
        """
        assert self.placement is not None
        for worker_id in [self.master_id] + self._workers:
            try:
                self._send_deploy(worker_id)
            except Exception:
                continue

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        """Instruct source devices to begin sensing (Fig. 3 step 4)."""
        with self._lock:
            if self.placement is None:
                raise DeploymentError("deploy() must run before start()")
            self.started = True
            for worker_id in [self.master_id] + self._workers:
                self.fabric.send(self.master_id, worker_id,
                                 messages.start_message())

    def stop(self) -> None:
        """Shut down control; idempotent, and late membership events
        arriving after this point are ignored rather than raised."""
        with self._lock:
            self._stopped = True
        self._detector_running.clear()
        if self._detector is not None:
            self._detector.join(timeout=2.0)
            self._detector = None
        with self._lock:
            self.started = False
            for worker_id in list(self._workers):
                try:
                    self.fabric.send(self.master_id, worker_id,
                                     messages.stop_message())
                except Exception:
                    continue
