"""Offline swarm capacity planning.

The runtime Worker Selection step answers "which downstreams should
carry this stream *right now*" from measured rates; this module answers
the deployment-time questions a user asks *before* forming a swarm:

* how many (and which) of my devices must participate to sustain an
  app's input rate;
* what utilisation, power draw and battery life to expect per device;
* whether the target is feasible at all with the devices at hand.

It applies the same minimum-prefix selection rule (paper Sec. V-A) to
nominal device rates, discounted by the framework overhead and an
optional safety headroom for jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.exceptions import SwingError
from repro.core.selection import select_min_prefix
from repro.simulation.device import DeviceProfile


@dataclass(frozen=True)
class DevicePlan:
    """Planned contribution of one device."""

    device_id: str
    share_rate: float       # frames per second assigned
    utilization: float      # expected busy fraction
    power_w: float          # expected dynamic power draw
    battery_hours: float    # expected battery life at that draw


@dataclass(frozen=True)
class SwarmPlan:
    """The outcome of planning one deployment."""

    app: str
    target_rate: float
    feasible: bool
    devices: List[DevicePlan]
    total_power_w: float

    @property
    def device_ids(self) -> List[str]:
        return [plan.device_id for plan in self.devices]

    @property
    def fps_per_watt(self) -> float:
        if self.total_power_w <= 0:
            return 0.0
        achieved = sum(plan.share_rate for plan in self.devices)
        return achieved / self.total_power_w


def effective_rate(profile: DeviceProfile, app: str,
                   headroom: float = 0.15) -> float:
    """A device's plannable service rate for *app*.

    The nominal Table-I rate, minus the framework's CPU overhead, minus a
    jitter/thermal ``headroom`` fraction kept in reserve.
    """
    if not 0.0 <= headroom < 1.0:
        raise SwingError("headroom must be in [0, 1)")
    usable = (1.0 - profile.framework_overhead) * (1.0 - headroom)
    return profile.service_rate(app) * usable


def plan_swarm(profiles: Mapping[str, DeviceProfile], app: str,
               target_rate: float, headroom: float = 0.15) -> SwarmPlan:
    """Choose the minimal device set sustaining *target_rate* for *app*.

    Devices are selected fastest-first (minimum-prefix rule); the load is
    then split proportionally to each selected device's effective rate —
    the static analogue of LRS's inverse-latency weights.
    """
    if target_rate <= 0:
        raise SwingError("target rate must be positive")
    if not profiles:
        raise SwingError("no devices to plan over")
    rates = {device_id: effective_rate(profile, app, headroom)
             for device_id, profile in profiles.items()}
    selected = select_min_prefix(rates, target_rate)
    capacity = sum(rates[device_id] for device_id in selected)
    feasible = capacity >= target_rate
    served = min(target_rate, capacity)

    plans = []
    total_power = 0.0
    for device_id in selected:
        profile = profiles[device_id]
        share = served * rates[device_id] / capacity if capacity else 0.0
        utilization = min(1.0, share * profile.base_delay(app)
                          + profile.framework_overhead)
        power = profile.power.cpu_power(utilization)
        battery = (profile.power.battery_wh
                   / (profile.power.idle_w + power)) if \
            (profile.power.idle_w + power) > 0 else float("inf")
        plans.append(DevicePlan(device_id=device_id, share_rate=share,
                                utilization=utilization, power_w=power,
                                battery_hours=battery))
        total_power += power
    return SwarmPlan(app=app, target_rate=target_rate, feasible=feasible,
                     devices=plans, total_power_w=total_power)


def minimum_devices_for(profiles: Mapping[str, DeviceProfile], app: str,
                        target_rate: float,
                        headroom: float = 0.15) -> Optional[int]:
    """How many devices a feasible plan needs (None when infeasible)."""
    plan = plan_swarm(profiles, app, target_rate, headroom=headroom)
    return len(plan.devices) if plan.feasible else None


def feasibility_frontier(profiles: Mapping[str, DeviceProfile], app: str,
                         rates: Sequence[float],
                         headroom: float = 0.15) -> Dict[float, Optional[int]]:
    """Device count needed at each target rate (None = infeasible)."""
    return {rate: minimum_devices_for(profiles, app, rate,
                                      headroom=headroom)
            for rate in rates}
