"""Swing: swarm computing for mobile sensing — full reproduction.

A Python reimplementation of the ICDCS 2018 Swing system: a dataflow
programming model for collaborative mobile sensing apps, the LRS
distributed resource-management algorithm with its four baselines, a
threaded master/worker runtime, a calibrated discrete-event swarm
simulator, and the paper's two sensing applications (face recognition
and voice translation) built on numpy.

Quickstart::

    from repro.simulation import scenarios, run_swarm

    result = run_swarm(scenarios.testbed(policy="LRS"))
    print(result.throughput, result.latency.mean)
"""

from repro import core, planner, profiles, simulation, tools

__version__ = "1.0.0"

__all__ = ["core", "planner", "profiles", "simulation", "tools",
           "__version__"]
