"""Small presentation helpers shared by examples, CLI and benchmarks.

Terminal-friendly rendering only — no plotting dependencies: sparklines
for time series and fixed-width tables for per-policy comparisons.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.exceptions import SwingError

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], peak: Optional[float] = None) -> str:
    """Render a series as a fixed-alphabet intensity strip."""
    values = list(values)
    if not values:
        return ""
    top = peak if peak is not None else max(values)
    if top <= 0:
        return " " * len(values)
    cells = []
    for value in values:
        level = int(max(0.0, min(1.0, value / top)) * (len(_SPARK_LEVELS) - 1))
        cells.append(_SPARK_LEVELS[level])
    return "".join(cells)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 min_width: int = 6) -> str:
    """Left-padded fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise SwingError("row width %d != header width %d"
                             % (len(row), len(headers)))
    widths = [max(min_width, len(header),
                  *(len(row[index]) for row in rows)) if rows
              else max(min_width, len(header))
              for index, header in enumerate(headers)]
    lines = [" ".join(header.rjust(width)
                      for header, width in zip(headers, widths))]
    lines.append(" ".join("-" * width for width in widths))
    for row in rows:
        lines.append(" ".join(cell.rjust(width)
                              for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_rate(value: float) -> str:
    return "%.1f FPS" % value


def format_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.2f s" % seconds
    return "%.0f ms" % (seconds * 1000.0)


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40) -> List[str]:
    """ASCII histogram lines for a latency distribution."""
    values = list(values)
    if not values:
        return ["(no samples)"]
    if bins < 1:
        raise SwingError("need at least one bin")
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    top = max(counts)
    lines = []
    for index, count in enumerate(counts):
        edge = low + span * index / bins
        bar = "#" * int(round(width * count / top)) if top else ""
        lines.append("%8.3f | %-*s %d" % (edge, width, bar, count))
    return lines
