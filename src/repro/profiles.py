"""The paper's testbed device catalogue (Table I + Sec. III).

Nine devices: A (Galaxy S3) acts as source/master; B..I run workers.  The
face-recognition processing delays are the paper's measured values
(Table I, second row).  The paper gives no per-device numbers for the
voice-translation app; its per-frame compute (PocketSphinx recognition +
Apertium translation on a 72 kB audio segment) is far heavier than one
video frame, so we scale each device's delay by
:data:`TRANSLATION_COMPUTE_SCALE` (see DESIGN.md) — preserving the same
relative heterogeneity, which is what the routing policies react to.

Power profiles follow the paper's offline-profiling method: an idle draw,
a peak-CPU dynamic draw and a peak-Wi-Fi dynamic draw per device, with
older/slower devices less energy-efficient per unit work (the paper's
observation about phone E).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.exceptions import SimulationError
from repro.simulation.device import DeviceProfile, PowerProfile
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

#: multiplier from a device's face-recognition delay to its
#: voice-translation delay (speech recognition + translation per 72 kB
#: audio segment)
TRANSLATION_COMPUTE_SCALE = 6.0

#: Table I, second row: mean per-frame face-recognition delay in seconds
FACE_DELAYS_S: Dict[str, float] = {
    "A": 0.0850,  # Galaxy S3 (source/master; delay used only if it computes)
    "B": 0.0929,  # Galaxy Nexus
    "C": 0.1216,  # Insignia7 tablet
    "D": 0.1677,  # NeuTab7 tablet
    "E": 0.4634,  # Galaxy S
    "F": 0.1664,  # DragonTouch tablet
    "G": 0.0822,  # Galaxy Nexus
    "H": 0.0713,  # LG Nexus 4
    "I": 0.0780,  # Galaxy Note 2
}

MODELS: Dict[str, str] = {
    "A": "Galaxy S3",
    "B": "Galaxy Nexus",
    "C": "Insignia7",
    "D": "NeuTab7",
    "E": "Galaxy S",
    "F": "DragonTouch",
    "G": "Galaxy Nexus",
    "H": "LG Nexus 4",
    "I": "Galaxy Note 2",
}

#: Table I, third row: reported integer throughput (inverse delays)
TABLE1_THROUGHPUT_FPS: Dict[str, int] = {
    "B": 10, "C": 8, "D": 6, "E": 2, "F": 5, "G": 12, "H": 13, "I": 12,
}

#: (idle_w, peak_cpu_w, peak_wifi_w, battery_wh) per device
_POWER: Dict[str, tuple] = {
    "A": (0.33, 1.25, 0.60, 7.77),
    "B": (0.35, 1.10, 0.65, 6.48),
    "C": (0.40, 1.20, 0.70, 9.00),
    "D": (0.40, 1.25, 0.70, 8.00),
    "E": (0.30, 1.35, 0.75, 5.55),  # oldest device: least efficient per frame
    "F": (0.38, 1.20, 0.70, 8.00),
    "G": (0.35, 1.10, 0.65, 6.48),
    "H": (0.32, 1.30, 0.60, 7.77),
    "I": (0.33, 1.25, 0.60, 11.40),
}

SOURCE_ID = "A"
WORKER_IDS: List[str] = ["B", "C", "D", "E", "F", "G", "H", "I"]

#: devices the paper places at locations of poor Wi-Fi signal (Sec. VI-B)
POOR_SIGNAL_IDS: List[str] = ["B", "C", "D"]


def device_profile(device_id: str) -> DeviceProfile:
    """Build the catalogue profile for one device (A..I)."""
    if device_id not in FACE_DELAYS_S:
        raise SimulationError("unknown device %r (expected A..I)" % device_id)
    face_delay = FACE_DELAYS_S[device_id]
    idle_w, peak_cpu_w, peak_wifi_w, battery_wh = _POWER[device_id]
    return DeviceProfile(
        device_id=device_id,
        model=MODELS[device_id],
        processing_delay={
            FACE_APP: face_delay,
            TRANSLATE_APP: face_delay * TRANSLATION_COMPUTE_SCALE,
        },
        power=PowerProfile(idle_w=idle_w, peak_cpu_w=peak_cpu_w,
                           peak_wifi_w=peak_wifi_w, battery_wh=battery_wh),
    )


def worker_profiles(ids: List[str] = None) -> Dict[str, DeviceProfile]:
    """Profiles for the worker devices (default: all of B..I)."""
    return {device_id: device_profile(device_id)
            for device_id in (ids if ids is not None else WORKER_IDS)}


#: per-frame face-recognition delay of a cloudlet VM (paper Sec. II:
#: Swing "does support cloudlet mode through Android virtual machines");
#: a server-class VM is ~5x faster than the fastest phone
CLOUDLET_FACE_DELAY_S = 0.014


def cloudlet_profile(cloudlet_id: str = "CL") -> DeviceProfile:
    """A wall-powered cloudlet VM reachable over the same WLAN.

    Far faster than any phone and effectively unconstrained on energy
    (huge battery capacity models wall power); its power draw still
    counts toward swarm totals so energy comparisons stay honest.
    """
    face_delay = CLOUDLET_FACE_DELAY_S
    return DeviceProfile(
        device_id=cloudlet_id,
        model="Cloudlet VM",
        processing_delay={
            FACE_APP: face_delay,
            TRANSLATE_APP: face_delay * TRANSLATION_COMPUTE_SCALE,
        },
        power=PowerProfile(idle_w=8.0, peak_cpu_w=25.0, peak_wifi_w=2.0,
                           battery_wh=1e6),
        cores=8,
        framework_overhead=0.02,
        throttles=False,
    )


def all_profiles() -> Dict[str, DeviceProfile]:
    return {device_id: device_profile(device_id) for device_id in FACE_DELAYS_S}
