"""Command-line interface for running Swing experiments.

Usage::

    python -m repro testbed --policy LRS --app face --duration 60
    python -m repro compare --app face --seeds 0 1 2
    python -m repro single --device E --rate 24
    python -m repro dynamics --mode leave
    python -m repro cloudlet --policy LRS
    python -m repro faults --kill B G --kill-time 10
    python -m repro overload --ttl 2 --queue-capacity 8
    python -m repro tenants --tenants 3 --hot-tenant t0
    python -m repro failover --kill-time 12 --outage 4
    python -m repro skew --keys 64 --alpha 1.2
    python -m repro trace --out swing.trace.json

Each subcommand runs a calibrated simulation and prints a summary table;
exit code 0 on success.  ``--metrics-json PATH`` (on single-run
subcommands) dumps the run's full metrics registry — counters, gauges
and histogram summaries, plus the trace summary when tracing was on —
as one JSON document.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
from typing import List, Optional

from repro import trace as trace_mod
from repro.core.controller import PolicyConfig
from repro.core.overload import DROP_POLICIES, DROP_OLDEST
from repro.core.policies import EXTENSION_POLICY_NAMES, POLICY_NAMES
from repro.simulation import scenarios
from repro.simulation.replication import compare_policies
from repro.simulation.swarm import SwarmResult, run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP
from repro.tools import format_latency, format_table, sparkline

APP_ALIASES = {"face": FACE_APP, "translation": TRANSLATE_APP,
               "translate": TRANSLATE_APP}
ALL_POLICIES = POLICY_NAMES + EXTENSION_POLICY_NAMES


def _app(name: str) -> str:
    try:
        return APP_ALIASES[name]
    except KeyError:
        raise argparse.ArgumentTypeError(
            "unknown app %r (expected face|translation)" % name) from None


def _rate01(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            "sample rate must be in [0, 1], got %r" % text)
    return value


def _add_metrics_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="dump the run's metrics registry (and trace "
                             "summary when tracing is on) as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swing (ICDCS'18) reproduction: swarm experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    testbed = sub.add_parser("testbed",
                             help="the Sec. VI-B routing-comparison testbed")
    testbed.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    testbed.add_argument("--app", type=_app, default="face")
    testbed.add_argument("--duration", type=float, default=60.0)
    testbed.add_argument("--seed", type=int, default=0)
    testbed.add_argument("--csv", metavar="PATH", default=None,
                         help="write the per-frame trace to PATH")
    testbed.add_argument("--metrics", action="store_true",
                         help="print the run's failure/loss counters")
    _add_metrics_json(testbed)

    compare = sub.add_parser("compare",
                             help="all five policies, replicated over seeds")
    compare.add_argument("--app", type=_app, default="face")
    compare.add_argument("--duration", type=float, default=60.0)
    compare.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    single = sub.add_parser("single",
                            help="stream to one device (Sec. III)")
    single.add_argument("--device", default="B")
    single.add_argument("--rate", type=float, default=24.0)
    single.add_argument("--duration", type=float, default=10.0)
    single.add_argument("--signal", default="good",
                        choices=["good", "fair", "poor"])
    _add_metrics_json(single)

    dynamics = sub.add_parser("dynamics",
                              help="join / leave / move experiments "
                                   "(Sec. VI-C)")
    dynamics.add_argument("--mode", required=True,
                          choices=["join", "leave", "move"])
    dynamics.add_argument("--seed", type=int, default=0)
    dynamics.add_argument("--metrics", action="store_true",
                          help="print the run's failure/loss counters")
    _add_metrics_json(dynamics)

    faults = sub.add_parser("faults",
                            help="fault injection: silent kills mid-stream "
                                 "discovered via loss accounting")
    faults.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    faults.add_argument("--app", type=_app, default="face")
    faults.add_argument("--duration", type=float, default=30.0)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--kill", nargs="+", default=["B", "G"],
                        metavar="DEVICE",
                        help="devices killed silently mid-run")
    faults.add_argument("--kill-time", type=float, default=10.0)
    faults.add_argument("--revive-time", type=float, default=None,
                        help="bring the killed devices back at this time")
    # Tight ACK timeout so kills are detected within the short run; the
    # dead-marking threshold is the control plane's shared default.
    faults.add_argument("--ack-timeout", type=float, default=2.0)
    faults.add_argument("--dead-after", type=int,
                        default=PolicyConfig().dead_after)
    _add_metrics_json(faults)

    overload = sub.add_parser("overload",
                              help="chaos/soak: sustained overload with "
                                   "bounded queues, TTL shedding and a "
                                   "mid-run kill/revive")
    overload.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    overload.add_argument("--app", type=_app, default="face")
    overload.add_argument("--duration", type=float, default=30.0)
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--overload-until", type=float, default=14.0,
                          help="background load lifts at this time")
    overload.add_argument("--background", type=float, default=0.8,
                          help="per-worker background CPU load in [0, 1]")
    overload.add_argument("--ttl", type=float, default=2.0,
                          help="tuple time-to-live in seconds")
    overload.add_argument("--queue-capacity", type=int, default=8,
                          help="bounded worker-ingress capacity in frames")
    overload.add_argument("--drop-policy", default=DROP_OLDEST,
                          choices=sorted(DROP_POLICIES))
    overload.add_argument("--no-kill", action="store_true",
                          help="skip the mid-overload kill/revive of G")
    overload.add_argument("--metrics", action="store_true",
                          help="print the run's shed/loss counters and "
                               "queue-depth gauges")
    _add_metrics_json(overload)

    churn = sub.add_parser("churn",
                           help="churn soak: seeded kill/leave/rejoin "
                                "schedule under at-least-once delivery")
    churn.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    churn.add_argument("--app", type=_app, default="face")
    churn.add_argument("--duration", type=float, default=40.0)
    churn.add_argument("--seed", type=int, default=7)
    churn.add_argument("--best-effort", action="store_true",
                       help="run the same schedule without replay/dedup "
                            "(reproduces today's loss accounting)")
    churn.add_argument("--settle", type=float, default=10.0,
                       help="churn stops this many seconds before the end "
                            "so outstanding redeliveries can land")
    churn.add_argument("--metrics", action="store_true",
                       help="print the run's delivery/loss counters")
    _add_metrics_json(churn)

    failover = sub.add_parser("failover",
                              help="master failover soak: kill the master "
                                   "mid-run, restart it, and require zero "
                                   "at-least-once loss")
    failover.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    failover.add_argument("--app", type=_app, default="face")
    failover.add_argument("--duration", type=float, default=40.0)
    failover.add_argument("--seed", type=int, default=11)
    failover.add_argument("--kill-time", type=float, default=12.0,
                          help="the master dies at this time")
    failover.add_argument("--outage", type=float, default=4.0,
                          help="seconds until the successor master is up")
    failover.add_argument("--best-effort", action="store_true",
                          help="run the same outage without replay/dedup "
                               "(shows what an unguarded crash loses)")
    failover.add_argument("--settle", type=float, default=10.0,
                          help="the outage must end this many seconds "
                               "before the run does, so redeliveries land")
    failover.add_argument("--metrics", action="store_true",
                          help="print the run's recovery/loss counters")
    _add_metrics_json(failover)

    tenants = sub.add_parser("tenants",
                             help="multi-tenant isolation soak: N pipelines "
                                  "share one swarm under fair-share "
                                  "admission")
    tenants.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    tenants.add_argument("--app", type=_app, default="face")
    tenants.add_argument("--duration", type=float, default=30.0)
    tenants.add_argument("--seed", type=int, default=3)
    tenants.add_argument("--tenants", dest="tenant_count", type=int,
                         default=3, metavar="N",
                         help="number of tenant pipelines sharing the swarm")
    tenants.add_argument("--rate", type=float, default=6.0,
                         help="per-tenant source rate in tuples/s")
    tenants.add_argument("--hot-tenant", default=None, metavar="TENANT",
                         help="ramp this tenant (t0..tN-1) past its fair "
                              "share; omit for an even baseline")
    tenants.add_argument("--hot-factor", type=float, default=4.0,
                         help="hot tenant's rate multiplier")
    tenants.add_argument("--queue-capacity", type=int, default=12,
                         help="bounded worker-ingress capacity in frames "
                              "(split into fair-share budgets)")
    tenants.add_argument("--ttl", type=float, default=2.0,
                         help="tuple time-to-live in seconds")
    tenants.add_argument("--best-effort", action="store_true",
                         help="run without at-least-once replay/dedup")
    tenants.add_argument("--metrics", action="store_true",
                         help="print the run's shed/loss counters")
    _add_metrics_json(tenants)

    skew = sub.add_parser("skew",
                          help="keyed-skew soak: Zipf-hot keys, hot-range "
                               "splitting and live state migration")
    skew.add_argument("--app", type=_app, default="face")
    skew.add_argument("--duration", type=float, default=40.0)
    skew.add_argument("--seed", type=int, default=3)
    skew.add_argument("--keys", type=int, default=64,
                      help="size of the user/key universe")
    skew.add_argument("--alpha", type=float, default=1.2,
                      help="Zipf exponent of the key popularity")
    skew.add_argument("--rate", type=float, default=16.0,
                      help="source input rate in tuples/s")
    skew.add_argument("--static", action="store_true",
                      help="disable hot-range splitting (the static "
                           "hash-routing baseline)")
    skew.add_argument("--bound", type=float, default=1.0,
                      help="latency bound for SLO throughput in seconds")
    skew.add_argument("--best-effort", action="store_true",
                      help="run without at-least-once replay/dedup")
    skew.add_argument("--metrics", action="store_true",
                      help="print the run's keyed/migration counters")
    _add_metrics_json(skew)

    verify = sub.add_parser("verify",
                            help="chaos sweep: N seeded fault schedules "
                                 "checked against the global invariant "
                                 "catalog; violations shrink to a minimal "
                                 "JSON repro")
    verify.add_argument("--schedules", type=int, default=20, metavar="N",
                        help="number of seeded schedules to explore")
    verify.add_argument("--seed", type=int, default=1,
                        help="base seed; schedule i uses seed + i")
    verify.add_argument("--substrate", default="sim",
                        choices=["sim", "runtime", "both"],
                        help="which substrate(s) execute each schedule")
    verify.add_argument("--out", default=None, metavar="FILE",
                        help="write the first failing schedule's shrunk "
                             "repro JSON here")
    verify.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run a repro JSON written by --out "
                             "instead of sweeping")
    verify.add_argument("--no-shrink", action="store_true",
                        help="report failures without ddmin shrinking")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress per-schedule progress lines")

    cloudlet = sub.add_parser("cloudlet",
                              help="testbed plus a cloudlet VM (Sec. II)")
    cloudlet.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    cloudlet.add_argument("--app", type=_app, default="face")
    cloudlet.add_argument("--duration", type=float, default=60.0)

    trace = sub.add_parser("trace",
                           help="run a traced scenario, export spans, and "
                                "check measured vs analytic delay "
                                "decomposition")
    trace.add_argument("--scenario", default="single",
                       choices=["single", "testbed"])
    trace.add_argument("--policy", default="LRS", choices=ALL_POLICIES)
    trace.add_argument("--app", type=_app, default="face")
    trace.add_argument("--device", default="B",
                       help="worker device for --scenario single")
    trace.add_argument("--rate", type=float, default=24.0)
    trace.add_argument("--duration", type=float, default=10.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--sample-rate", type=_rate01, default=1.0,
                       help="fraction of tuples traced (deterministic "
                            "in seed and seq)")
    trace.add_argument("--out", metavar="PATH", default="swing.trace.json",
                       help="Chrome trace_event JSON (chrome://tracing / "
                            "Perfetto)")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="also write raw spans as JSONL")
    _add_metrics_json(trace)

    return parser


def _print_result(result: SwarmResult) -> None:
    latency = result.latency
    rows = [
        ("throughput", "%.1f FPS" % result.throughput),
        ("target", "%.1f FPS (%s)" % (
            result.config.workload.input_rate,
            "met" if result.meets_input_rate() else "missed")),
        ("latency mean", format_latency(latency.mean) if latency else "n/a"),
        ("latency max", format_latency(latency.maximum) if latency else "n/a"),
        ("frames lost", str(result.frames_lost)),
        ("aggregate power", "%.2f W" % result.energy.aggregate_w),
        ("efficiency", "%.2f FPS/W" % result.fps_per_watt()),
    ]
    print(format_table(["metric", "value"], rows, min_width=16))
    rates = result.input_rates()
    print()
    print(format_table(["device", "input FPS", "cpu %"],
                       [(device_id, "%.1f" % rates[device_id],
                         "%.0f" % (100 * cpu))
                        for device_id, cpu in
                        sorted(result.cpu_utilization().items())]))


def _print_registry(result: SwarmResult) -> None:
    """Dump the run's counter registry (sent/acked/lost/marked-dead…)."""
    if result.registry is None:
        return
    rendered = result.registry.render()
    print()
    print("counters:")
    print(rendered if rendered else "  (none)")


def _write_metrics_json(result: SwarmResult, args) -> None:
    """Honor ``--metrics-json PATH`` on single-run subcommands."""
    path = getattr(args, "metrics_json", None)
    if not path:
        return
    body = {"metrics": (result.registry.to_dict()
                        if result.registry is not None else {})}
    if result.trace:
        body["trace"] = trace_mod.summarize(result.trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(body, handle, indent=2, sort_keys=True)
    print("\nmetrics written to %s" % path)


def cmd_testbed(args) -> int:
    result = run_swarm(scenarios.testbed(app=args.app, policy=args.policy,
                                         duration=args.duration,
                                         seed=args.seed))
    print("testbed: %s under %s for %.0fs"
          % (args.app, args.policy, args.duration))
    _print_result(result)
    if args.metrics:
        _print_registry(result)
    if args.csv:
        result.metrics.write_csv(args.csv)
        print("\nper-frame trace written to %s" % args.csv)
    _write_metrics_json(result, args)
    return 0


def cmd_compare(args) -> int:
    outcomes = compare_policies(
        lambda policy: scenarios.testbed(app=args.app, policy=policy,
                                         duration=args.duration),
        POLICY_NAMES, args.seeds)
    rows = []
    for policy in POLICY_NAMES:
        replicated = outcomes[policy]
        throughput = replicated.throughput()
        latency = replicated.latency_mean()
        efficiency = replicated.fps_per_watt()
        rows.append((policy,
                     "%.1f ± %.1f" % (throughput.mean,
                                      throughput.ci95_halfwidth),
                     "%.2f ± %.2f" % (latency.mean, latency.ci95_halfwidth),
                     "%.2f" % efficiency.mean))
    print("policy comparison: %s, %d seeds" % (args.app, len(args.seeds)))
    print(format_table(["policy", "thr FPS", "lat s", "FPS/W"], rows))
    return 0


def cmd_single(args) -> int:
    from repro.simulation.network import rssi_for_region
    config = scenarios.single_device(args.device, input_rate=args.rate,
                                     duration=args.duration,
                                     rssi=rssi_for_region(args.signal))
    result = run_swarm(config)
    decomposition = result.metrics.delay_decomposition()
    print("single device %s at %.0f FPS (%s signal) for %.0fs"
          % (args.device, args.rate, args.signal, args.duration))
    print(format_table(
        ["metric", "value"],
        [("completed", "%d frames" % len(result.metrics.completed_frames())),
         ("throughput", "%.1f FPS" % result.throughput),
         ("transmission", format_latency(decomposition["transmission"])),
         ("queuing", format_latency(decomposition["queuing"])),
         ("processing", format_latency(decomposition["processing"]))],
        min_width=14))
    _write_metrics_json(result, args)
    return 0


def cmd_dynamics(args) -> int:
    if args.mode == "join":
        result = run_swarm(scenarios.joining(seed=args.seed))
        note = "G joins at t=10s"
    elif args.mode == "leave":
        result = run_swarm(scenarios.leaving(seed=args.seed))
        note = "G killed at t=15s"
    else:
        result = run_swarm(scenarios.moving(seed=args.seed))
        note = "G walks good->fair->poor"
    series = result.throughput_series()
    print("dynamics/%s (%s)" % (args.mode, note))
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    print("frames lost: %d" % result.frames_lost)
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    return 0


def cmd_faults(args) -> int:
    config = scenarios.fault_injection(
        app=args.app, policy=args.policy, duration=args.duration,
        seed=args.seed, kill_ids=tuple(args.kill),
        kill_time=args.kill_time, revive_time=args.revive_time,
        ack_timeout=args.ack_timeout, dead_after=args.dead_after)
    result = run_swarm(config)
    revive_note = ("" if args.revive_time is None
                   else ", revived at t=%.0fs" % args.revive_time)
    print("fault injection: %s killed silently at t=%.0fs%s"
          % ("/".join(args.kill), args.kill_time, revive_note))
    series = result.throughput_series()
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    print(format_table(
        ["metric", "value"],
        [("throughput", "%.1f FPS" % result.throughput),
         ("frames lost", str(result.frames_lost)),
         ("lost per downstream",
          ", ".join("%s=%d" % (device_id, count)
                    for device_id, count in
                    sorted(result.lost_by_downstream.items())) or "none"),
         ("dead at end", ", ".join(result.dead_downstreams) or "none")],
        min_width=20))
    _print_registry(result)
    _write_metrics_json(result, args)
    # Guarantee: a silently-killed worker must be detected.  A kill with
    # no revive that is still undetected at the end of the run means the
    # failure detector lost it.
    if args.revive_time is None:
        undetected = [device_id for device_id in args.kill
                      if device_id not in result.dead_downstreams]
        if undetected:
            print("FAIL: killed device(s) never dead-marked: %s"
                  % ", ".join(undetected))
            return 1
    return 0


def cmd_overload(args) -> int:
    config = scenarios.overload(
        app=args.app, policy=args.policy, duration=args.duration,
        seed=args.seed, overload_until=args.overload_until,
        background=args.background, ttl=args.ttl,
        queue_capacity=args.queue_capacity, drop_policy=args.drop_policy,
        kill_id=None if args.no_kill else "G")
    result = run_swarm(config)
    print("overload soak: %s under %s, background %.0f%% until t=%.0fs, "
          "ttl %.1fs, ingress capacity %d (%s)"
          % (args.app, args.policy, 100 * args.background,
             args.overload_until, args.ttl, args.queue_capacity,
             args.drop_policy))
    series = result.throughput_series()
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    completed = result.metrics.completed_frames()
    early = [record.total_delay for record in completed
             if record.created_at < args.overload_until]
    late = [record.total_delay for record in completed
            if record.created_at >= args.overload_until + 2.0]
    sheds = ", ".join("%s=%d" % item
                      for item in sorted(result.shed_by_reason.items()))
    depths = ", ".join("%s=%d" % item
                       for item in sorted(result.max_queue_depths.items()))
    print(format_table(
        ["metric", "value"],
        [("throughput", "%.1f FPS" % result.throughput),
         ("shed by reason", sheds or "none"),
         ("max queue depth", depths or "none"),
         ("p50 under overload",
          format_latency(statistics.median(early)) if early else "n/a"),
         ("p50 after recovery",
          format_latency(statistics.median(late)) if late else "n/a"),
         ("frames lost", str(result.frames_lost))],
        min_width=20))
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    # Guarantee: overload protection keeps every bounded ingress queue
    # at or under its configured capacity.
    over = {name: depth
            for name, depth in result.max_queue_depths.items()
            if name.startswith("ingress:")
            and depth > args.queue_capacity}
    if over:
        print("FAIL: bounded queue(s) exceeded capacity %d: %s"
              % (args.queue_capacity,
                 ", ".join("%s=%d" % item for item in sorted(over.items()))))
        return 1
    return 0


def cmd_churn(args) -> int:
    config = scenarios.churn(app=args.app, policy=args.policy,
                             duration=args.duration, seed=args.seed,
                             at_least_once=not args.best_effort,
                             settle=args.settle)
    result = run_swarm(config)
    schedule = config.churn
    assert schedule is not None
    mode = "best-effort" if args.best_effort else "at-least-once"
    print("churn soak: %s under %s (%s), %d events over %.0fs"
          % (args.app, args.policy, mode, len(schedule), args.duration))
    print("schedule: %s"
          % "; ".join("t=%.1fs %s %s" % (event.time, event.action,
                                         event.device_id)
                      for event in schedule))
    series = result.throughput_series()
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    # Judge loss on frames old enough that every redelivery had time to
    # land: the settle window at the end of the run.
    horizon = args.duration - args.settle / 2.0
    losses = result.end_to_end_losses(horizon)
    drains = ", ".join("%s=%.2fs" % item
                       for item in sorted(result.drain_seconds.items()))
    evictions = ", ".join("%s=%d" % item
                          for item in
                          sorted(result.replay_evicted_by_reason.items()))
    print(format_table(
        ["metric", "value"],
        [("throughput", "%.1f FPS" % result.throughput),
         ("frames dropped", str(result.frames_lost)),
         ("end-to-end lost", str(len(losses))),
         ("redelivered", str(result.redelivered)),
         ("sink duplicates deduped", str(result.deduped)),
         ("replay evictions", evictions or "none"),
         ("retained at end", str(result.replay_depth_end)),
         ("graceful drains", drains or "none")],
        min_width=24))
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    if not args.best_effort and losses:
        print("FAIL: %d tuple(s) lost end-to-end under at-least-once "
              "delivery: %s" % (len(losses), losses[:20]))
        return 1
    return 0


def cmd_failover(args) -> int:
    config = scenarios.failover(app=args.app, policy=args.policy,
                                duration=args.duration, seed=args.seed,
                                kill_time=args.kill_time,
                                outage=args.outage,
                                at_least_once=not args.best_effort,
                                settle=args.settle)
    result = run_swarm(config)
    mode = "best-effort" if args.best_effort else "at-least-once"
    print("failover soak: %s under %s (%s), master down t=%.0fs..%.0fs "
          "of %.0fs"
          % (args.app, args.policy, mode, args.kill_time,
             args.kill_time + args.outage, args.duration))
    series = result.throughput_series()
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    # Judge loss on frames old enough that every post-recovery
    # redelivery had time to land: the settle window at the end.
    horizon = args.duration - args.settle / 2.0
    losses = result.end_to_end_losses(horizon)
    print(format_table(
        ["metric", "value"],
        [("throughput", "%.1f FPS" % result.throughput),
         ("master recoveries", str(result.master_recoveries)),
         ("frames dropped", str(result.frames_lost)),
         ("end-to-end lost", str(len(losses))),
         ("redelivered", str(result.redelivered)),
         ("sink duplicates deduped", str(result.deduped)),
         ("retained at end", str(result.replay_depth_end))],
        min_width=24))
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    if result.master_recoveries < 1:
        print("FAIL: the master never recovered during the run")
        return 1
    if not args.best_effort and losses:
        print("FAIL: %d tuple(s) lost end-to-end across the master "
              "kill+restart under at-least-once delivery: %s"
              % (len(losses), losses[:20]))
        return 1
    return 0


def cmd_tenants(args) -> int:
    config = scenarios.tenants(
        app=args.app, policy=args.policy, duration=args.duration,
        seed=args.seed, tenant_count=args.tenant_count,
        per_tenant_rate=args.rate, hot_tenant=args.hot_tenant,
        hot_rate_factor=args.hot_factor,
        at_least_once=not args.best_effort,
        ttl=args.ttl, queue_capacity=args.queue_capacity)
    result = run_swarm(config)
    mode = "best-effort" if args.best_effort else "at-least-once"
    hot_note = ("" if args.hot_tenant is None
                else ", %s at %.0fx" % (args.hot_tenant, args.hot_factor))
    print("tenants: %d pipelines of %s under %s (%s)%s, %.1f tup/s each"
          % (args.tenant_count, args.app, args.policy, mode, hot_note,
             args.rate))
    # Judge loss on frames old enough for every redelivery to land.
    horizon = args.duration - 5.0
    rows = []
    victim_losses: List[int] = []
    for spec in config.tenants:
        tenant = spec.tenant_id
        latency = result.tenant_latency(tenant, after=5.0)
        losses = result.tenant_losses(tenant, horizon=horizon)
        if tenant != args.hot_tenant:
            victim_losses.extend(losses)
        rows.append((tenant,
                     "%.1f" % result.tenant_throughput(tenant),
                     format_latency(latency.mean) if latency else "n/a",
                     format_latency(latency.maximum) if latency else "n/a",
                     str(result.shed_by_tenant.get(tenant, 0)),
                     str(len(losses))))
    print(format_table(
        ["tenant", "thr FPS", "lat mean", "lat max", "shed", "lost"], rows))
    print("frames dropped: %d  |  redelivered: %d  |  deduped: %d"
          % (result.frames_lost, result.redelivered, result.deduped))
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    if not args.best_effort and victim_losses:
        print("FAIL: %d victim-tenant tuple(s) lost end-to-end under "
              "at-least-once delivery: %s"
              % (len(victim_losses), sorted(victim_losses)[:20]))
        return 1
    return 0


def cmd_skew(args) -> int:
    config = scenarios.skew(app=args.app, duration=args.duration,
                            seed=args.seed, key_count=args.keys,
                            zipf_alpha=args.alpha, input_rate=args.rate,
                            split_enabled=not args.static,
                            at_least_once=not args.best_effort)
    result = run_swarm(config)
    mode = "static hash routing" if args.static else "hot-range splitting"
    print("keyed skew: %s, %d keys Zipf(%.1f) at %.1f tup/s (%s)"
          % (args.app, args.keys, args.alpha, args.rate, mode))
    series = result.throughput_series()
    print("throughput: [%s] peak %.0f FPS"
          % (sparkline(series, peak=28.0), max(series)))
    # Judge loss on frames old enough for every redelivery to land.
    horizon = args.duration - 5.0
    losses = result.end_to_end_losses(horizon)
    moves = ", ".join("%s=%d" % item
                      for item in sorted(result.key_moves_by_reason.items()))
    print(format_table(
        ["metric", "value"],
        [("throughput", "%.1f FPS" % result.throughput),
         ("SLO throughput (<=%.1fs)" % args.bound,
          "%.1f FPS" % result.bounded_throughput(args.bound, warmup=5.0)),
         ("hot ranges detected", str(result.hot_ranges_detected)),
         ("range splits", str(result.key_splits)),
         ("range moves", moves or "none"),
         ("end-to-end lost", str(len(losses))),
         ("redelivered", str(result.redelivered)),
         ("sink duplicates deduped", str(result.deduped))],
        min_width=24))
    if args.metrics:
        _print_registry(result)
    _write_metrics_json(result, args)
    if not args.best_effort and not args.static and losses:
        print("FAIL: %d tuple(s) lost end-to-end across hot-range "
              "migration under at-least-once delivery: %s"
              % (len(losses), losses[:20]))
        return 1
    return 0


def cmd_trace(args) -> int:
    if args.scenario == "single":
        from repro.simulation.network import rssi_for_region
        config = scenarios.single_device(args.device, input_rate=args.rate,
                                         duration=args.duration,
                                         seed=args.seed,
                                         rssi=rssi_for_region("good"))
        label = "single device %s" % args.device
    else:
        config = scenarios.testbed(app=args.app, policy=args.policy,
                                   duration=args.duration, seed=args.seed)
        label = "testbed under %s" % args.policy
    config = dataclasses.replace(config,
                                 trace_sample_rate=args.sample_rate)
    result = run_swarm(config)
    spans = result.trace
    summary = trace_mod.summarize(spans)
    measured = summary["delay_decomposition"]
    analytic = result.metrics.delay_decomposition()
    print("trace: %s for %.0fs at sample rate %.2f"
          % (label, args.duration, args.sample_rate))
    print(format_table(
        ["component", "measured", "analytic"],
        [(component, format_latency(measured[component]),
          format_latency(analytic[component]))
         for component in trace_mod.COMPONENTS],
        min_width=14))
    print(format_table(
        ["spans", "value"],
        [("total", str(summary["spans"])),
         ("tuples traced", str(summary["tuples"]))]
        + [("kind %s" % kind, str(count))
           for kind, count in summary["by_kind"].items()],
        min_width=14))
    trace_json = trace_mod.to_chrome_trace(spans)
    trace_mod.validate_chrome_trace(trace_json)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trace_json, handle)
    print("chrome trace written to %s (open in chrome://tracing)" % args.out)
    if args.jsonl:
        trace_mod.write_jsonl(spans, args.jsonl)
        print("spans written to %s" % args.jsonl)
    _write_metrics_json(result, args)
    return 0


def cmd_cloudlet(args) -> int:
    baseline = run_swarm(scenarios.testbed(app=args.app, policy=args.policy,
                                           duration=args.duration))
    assisted = run_swarm(scenarios.cloudlet_mode(app=args.app,
                                                 policy=args.policy,
                                                 duration=args.duration))
    rows = []
    for label, result in (("phones only", baseline),
                          ("with cloudlet", assisted)):
        rows.append((label, "%.1f" % result.throughput,
                     format_latency(result.latency.mean),
                     "%.2f W" % result.energy.aggregate_w))
    print("cloudlet mode: %s under %s" % (args.app, args.policy))
    print(format_table(["setup", "thr FPS", "latency", "power"], rows))
    return 0


def cmd_verify(args) -> int:
    from repro.verify import adapters as verify_adapters
    from repro.verify import explorer

    progress = None if args.quiet else print
    if args.replay is not None:
        case, violations = explorer.replay(args.replay, progress=progress)
        print("replayed %d-event repro (seed=%s) on %s"
              % (len(case.shrunk), case.shrunk.seed, case.substrate))
        if violations:
            for violation in violations:
                print("FAIL: [%s] %s"
                      % (violation.invariant, violation.message))
            return 1
        print("clean: the repro no longer violates any invariant")
        return 0
    substrates = (verify_adapters.SUBSTRATES if args.substrate == "both"
                  else (args.substrate,))
    report = explorer.explore(args.schedules, seed=args.seed,
                              substrates=substrates,
                              shrink_failures=not args.no_shrink,
                              progress=progress)
    clean = sum(1 for record in report.runs if record.ok)
    print("verify: %d schedule(s) x %s -> %d/%d run(s) clean"
          % (args.schedules, "+".join(substrates), clean,
             len(report.runs)))
    if report.ok:
        return 0
    for case in report.failures:
        print("FAIL: seed=%s substrate=%s shrunk to %d event(s):"
              % (case.schedule.seed, case.substrate, len(case.shrunk)))
        for event in case.shrunk:
            print("  t=%.1fs %s %s" % (event.time, event.action,
                                       event.target))
        for violation in case.violations:
            print("  [%s] %s" % (violation.invariant, violation.message))
    if args.out is not None:
        explorer.write_repro(report.failures[0], args.out)
        print("repro written to %s (re-run: swing verify --replay %s)"
              % (args.out, args.out))
    return 1


COMMANDS = {
    "testbed": cmd_testbed,
    "compare": cmd_compare,
    "single": cmd_single,
    "dynamics": cmd_dynamics,
    "cloudlet": cmd_cloudlet,
    "faults": cmd_faults,
    "overload": cmd_overload,
    "churn": cmd_churn,
    "failover": cmd_failover,
    "tenants": cmd_tenants,
    "skew": cmd_skew,
    "trace": cmd_trace,
    "verify": cmd_verify,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
