"""One adapter per substrate: FaultSchedule in, RunHistory out.

The simulator adapter maps a schedule onto a ``SwarmConfig`` — the
churn projection drives membership / master / partition faults, window
events map onto the engine's fault mirror (``MessageDropEvent`` /
``MessageDelayEvent`` / ``BackgroundLoadEvent``) and the profile picks
the keyed or multi-tenant workload shape.  ``chaos_duplicate`` /
``chaos_corrupt`` windows are codec-level nemeses with no discrete-event
mirror (the engine has no byte wire); the adapter records them as notes
rather than silently claiming coverage.

The runtime adapter builds a real threaded :class:`SwingRuntime` behind
a seeded :class:`ChaosFabric`, replays the churn projection through the
existing :class:`ChurnHarness` (time-compressed) while a window driver
imposes and lifts per-link chaos, and normalises the sink collections,
metrics registry and control-plane epochs into the same
:class:`RunHistory` shape.  ``load_burst`` windows are CPU-model
nemeses with no threaded mirror and are likewise recorded as notes.

Both adapters run the *same* schedule bytes; the invariant checker
never needs to know which substrate produced the history.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import metrics as metrics_mod
from repro.core.delivery import (AT_LEAST_ONCE, CHURN_RESTART_MASTER,
                                 DeliveryConfig)
from repro.core.exceptions import RuntimeStateError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.core.keyed import KeyedConfig
from repro.core.multitenant import TenantSpec
from repro.core.overload import DROP_OLDEST, OverloadConfig
from repro.core.recovery import InMemoryCheckpointStore, RecoveryConfig
from repro import profiles
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.chaos import ChaosFabric, ChurnHarness, LinkChaos
from repro.simulation import scenarios
from repro.simulation.swarm import (BackgroundLoadEvent, MessageDelayEvent,
                                    MessageDropEvent, SwarmConfig,
                                    SwarmResult, SwarmSimulation)
from repro.simulation.workload import FACE_APP
from repro.verify.invariants import RunHistory, TenantHistory
from repro.verify.schedule import (CHAOS_CORRUPT, CHAOS_DELAY, CHAOS_DROP,
                                   CHAOS_DUPLICATE, LOAD_BURST,
                                   FaultSchedule)

SIM = "sim"
RUNTIME = "runtime"
SUBSTRATES = (SIM, RUNTIME)

#: sizing for the threaded substrate: the whole scenario timeline is
#: compressed by TIME_SCALE and the source emits TUPLES tuples across
#: the fault window, so faults interleave live traffic.
TIME_SCALE = 0.1
TUPLES = 120
_COLLECT_TIMEOUT = 30.0


def _link_target(link: str) -> str:
    """The receiving device of an ``a>b`` link (or a bare device id)."""
    return link.partition(">")[2] or link


# -- simulator ------------------------------------------------------------
def build_sim_config(schedule: FaultSchedule,
                     delivery: Optional[DeliveryConfig] = None
                     ) -> SwarmConfig:
    """Map *schedule* onto the discrete-event engine's fault mirror."""
    spec, profile = schedule.spec, schedule.profile
    workload = scenarios.workload_for_app(FACE_APP)
    faults: List[object] = []
    background: List[BackgroundLoadEvent] = []
    bursting = False
    for event in schedule.window_events():
        target = _link_target(event.target)
        if event.action == CHAOS_DROP:
            faults.append(MessageDropEvent(time=event.time,
                                           duration=event.duration,
                                           drop_prob=event.value,
                                           device_id=target))
        elif event.action == CHAOS_DELAY:
            faults.append(MessageDelayEvent(time=event.time,
                                            duration=event.duration,
                                            extra_delay=event.value,
                                            device_id=target))
        elif event.action == LOAD_BURST:
            bursting = True
            background.append(BackgroundLoadEvent(time=event.time,
                                                  device_id=event.target,
                                                  load=event.value))
            background.append(BackgroundLoadEvent(
                time=round(event.end, 3), device_id=event.target,
                load=0.0))
        # CHAOS_DUPLICATE / CHAOS_CORRUPT: codec-level, runtime-only.
    if delivery is None:
        delivery = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=4096,
                                  dedup_window=8192,
                                  max_delivery_attempts=8)
    keyed = None
    ack_timeout, dead_after = 2.0, 2
    if profile.keyed:
        # Generous ACK budget, as in the skew scenario: migration
        # parking, not redelivery storms, is the mechanism under test.
        keyed = KeyedConfig(key_count=64, zipf_alpha=1.2,
                            split_enabled=True, hot_ratio=1.5,
                            min_split_interval=2.0, max_splits=8)
        ack_timeout, dead_after = 6.0, 4
    overload = None
    if profile.tenant_count > 1 or bursting:
        overload = OverloadConfig(ttl=2.0, queue_capacity=12,
                                  drop_policy=DROP_OLDEST)
    tenants: Tuple[TenantSpec, ...] = ()
    if profile.tenant_count > 1:
        rate = workload.input_rate / profile.tenant_count
        tenants = tuple(
            TenantSpec(tenant_id="t%d" % index, weight=1.0, priority=0,
                       input_rate=(rate * 3.0
                                   if profile.hot_tenant == "t%d" % index
                                   else rate))
            for index in range(profile.tenant_count))
    return SwarmConfig(
        workload=workload,
        workers=profiles.worker_profiles(list(spec.workers)),
        source=profiles.device_profile(spec.source_id),
        policy="LRS",
        duration=spec.duration,
        seed=schedule.seed or 0,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        detection_delay=0.25,
        delivery=delivery,
        churn=schedule.churn_view(),
        faults=tuple(faults),
        background_events=tuple(background),
        overload=overload,
        keyed=keyed,
        tenants=tenants,
    )


def history_from_sim(schedule: FaultSchedule,
                     result: SwarmResult,
                     horizon: Optional[float] = None,
                     queued: Optional[Dict[str, List[int]]] = None,
                     retained: Optional[Dict[str, Set[int]]] = None
                     ) -> RunHistory:
    """Normalise one engine run into the checker's RunHistory shape.

    *queued* is the engine's end-of-run source-egress occupancy
    (:meth:`SwarmSimulation.pending_source_frames`); *retained* the
    per-tenant seqs the replay buffers still hold — together, the
    conservation equation's in-flight term.
    """
    spec = schedule.spec
    if horizon is None:
        horizon = spec.duration - spec.settle / 2.0
    tenants: Dict[str, TenantHistory] = {}

    def ledger(tenant: str) -> TenantHistory:
        if tenant not in tenants:
            tenants[tenant] = TenantHistory()
        return tenants[tenant]

    for tenant, seqs in (queued or {}).items():
        ledger(tenant).queued_end.update(seqs)
    for tenant, seqs in (retained or {}).items():
        ledger(tenant).retained.update(seqs)

    drop_reasons: Dict[str, int] = {}
    for seq, record in result.metrics.frames.items():
        entry = ledger(record.tenant or "")
        entry.emitted.add(seq)
        if record.created_at < horizon:
            entry.judged.add(seq)
        if record.sink_arrived_at is not None:
            entry.delivered.append(seq)
        if record.dropped is not None:
            entry.accounted.add(seq)
            drop_reasons[record.dropped] = \
                drop_reasons.get(record.dropped, 0) + 1
    registry = result.registry
    if registry is not None:
        # Per-tenant eviction budgets: the replay buffer's edge label is
        # the controller name — "A" single-tenant, "A@tX" multi-tenant.
        by_edge = registry.values_by_label(
            metrics_mod.REPLAY_EVICTED_TOTAL, "edge")
        for edge, count in by_edge.items():
            tenant = edge.partition("@")[2]
            ledger(tenant).evictions += count
    fenced = 0
    if registry is not None:
        fenced = sum(registry.values_by_label(
            metrics_mod.FENCED_TOTAL, "device").values())
    expected = sum(1 for event in schedule
                   if event.action == CHURN_RESTART_MASTER)
    config = result.config
    capacity = (config.overload.queue_capacity
                if config.overload is not None else None)
    at_least_once = (config.delivery is not None
                     and config.delivery.at_least_once)
    notes = ["%s window on %s has no discrete-event mirror"
             % (event.action, event.target)
             for event in schedule.window_events()
             if event.action in (CHAOS_DUPLICATE, CHAOS_CORRUPT)]
    return RunHistory(
        substrate=SIM,
        at_least_once=at_least_once,
        tenants=tenants,
        hot_tenant=schedule.profile.hot_tenant,
        drop_reasons=drop_reasons,
        evict_reasons=dict(result.replay_evicted_by_reason),
        redelivered=result.redelivered,
        deduped=result.deduped,
        retained_end=result.replay_depth_end,
        queue_depths={name: depth
                      for name, depth in result.max_queue_depths.items()
                      if name.startswith("ingress:")},
        queue_capacity=capacity,
        expected_recoveries=expected,
        recoveries=result.master_recoveries,
        epochs=(),
        fenced=fenced,
        keyed_audit=result.keyed_audit,
        notes=notes,
    )


def _retained_seqs(items) -> Set[int]:
    """Seqs covered by one controller's export_retention() snapshot."""
    seqs: Set[int] = set()
    for seq, _attempt, _deadline, _context, members in items:
        seqs.add(seq)
        seqs.update(members)
    return seqs


def run_sim(schedule: FaultSchedule) -> RunHistory:
    """Run *schedule* on the discrete-event engine and normalise it."""
    schedule.validate()
    sim = SwarmSimulation(build_sim_config(schedule))
    result = sim.run()
    retained = {tenant: _retained_seqs(state.controller.export_retention())
                for tenant, state in sim._states.items()}
    return history_from_sim(schedule, result,
                            queued=sim.pending_source_frames(),
                            retained=retained)


# -- threaded runtime -----------------------------------------------------
class _RecordingHarness(ChurnHarness):
    """ChurnHarness that captures sinks and epochs around restarts."""

    def __init__(self, runtime: SwingRuntime, schedule, time_scale: float,
                 sinks: List[CollectingSink],
                 epochs: List[int]) -> None:
        super().__init__(runtime, schedule, time_scale=time_scale)
        self._sinks = sinks
        self._epochs = epochs

    def _apply(self, event) -> None:
        super()._apply(event)
        if event.action == CHURN_RESTART_MASTER:
            self._sinks.append(self.runtime.sink_unit())
            self._epochs.append(self.runtime.master.pool.epoch)


class _WindowDriver(threading.Thread):
    """Imposes and lifts per-link chaos windows on a ChaosFabric."""

    def __init__(self, fabric: ChaosFabric, schedule: FaultSchedule,
                 time_scale: float) -> None:
        super().__init__(name="chaos-windows", daemon=True)
        self._ops: List[Tuple[float, Callable[[], None]]] = []
        for event in schedule.window_events():
            if event.action == LOAD_BURST:
                continue  # CPU-model nemesis; no threaded mirror
            link = event.target
            if ">" not in link:
                continue
            sender_id, _, target_id = link.partition(">")
            chaos = _link_chaos(event.action, event.value)
            if chaos is None:
                continue
            self._ops.append((event.time * time_scale,
                              _setter(fabric, sender_id, target_id,
                                      chaos)))
            self._ops.append((event.end * time_scale,
                              _setter(fabric, sender_id, target_id,
                                      LinkChaos())))
        self._ops.sort(key=lambda item: item[0])

    def run(self) -> None:
        started = time.monotonic()
        for offset, operation in self._ops:
            delay = started + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            operation()


def _setter(fabric: ChaosFabric, sender_id: str, target_id: str,
            chaos: LinkChaos) -> Callable[[], None]:
    return lambda: fabric.set_link(sender_id, target_id, chaos)


def _link_chaos(action: str, value: float) -> Optional[LinkChaos]:
    if action == CHAOS_DROP:
        return LinkChaos(drop=value)
    if action == CHAOS_DELAY:
        return LinkChaos(delay=1.0, delay_seconds=value * TIME_SCALE)
    if action == CHAOS_DUPLICATE:
        return LinkChaos(duplicate=value)
    if action == CHAOS_CORRUPT:
        return LinkChaos(corrupt=value)
    return None


def _retained_runtime_seqs(runtime: SwingRuntime) -> Set[int]:
    """Un-ACKed seqs still held by the master's dispatchers."""
    master_runtime = getattr(runtime.master, "runtime", None)
    dispatchers = getattr(master_runtime, "_dispatchers", {})
    seqs: Set[int] = set()
    for dispatcher in dispatchers.values():
        seqs |= _retained_seqs(dispatcher.controller.export_retention())
    return seqs


def run_runtime(schedule: FaultSchedule,
                time_scale: float = TIME_SCALE,
                tuples: int = TUPLES) -> RunHistory:
    """Run *schedule* on the threaded runtime and normalise it.

    The runtime consumes the plain single-tenant pipeline regardless of
    the schedule's workload profile: keyed and multi-tenant mirrors are
    simulator-side (their threaded soaks live in the keyed /
    multi-tenant integration suites), which the history records as a
    note rather than silently claiming coverage.
    """
    schedule.validate()
    spec = schedule.spec
    graph = (GraphBuilder("verify-app")
             .source("src", lambda: IterableSource(
                 [{"x": i} for i in range(tuples)]))
             .unit("work", lambda: LambdaUnit(
                 lambda value: {"y": value["x"] * 2}))
             .sink("snk", CollectingSink)
             .chain("src", "work", "snk")
             .build())
    registry = metrics_mod.MetricsRegistry()
    seed = schedule.seed or 0
    fabric_holder: List[ChaosFabric] = []

    def wrap(inner):
        fabric = ChaosFabric(inner, seed=seed, registry=registry)
        fabric_holder.append(fabric)
        return fabric

    source_rate = tuples / max(0.5, spec.window_end * time_scale)
    delivery = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=4096,
                              dedup_window=8192, max_delivery_attempts=8,
                              redelivery_timeout=0.4)
    runtime = SwingRuntime(
        graph, worker_ids=sorted(spec.workers), policy="RR",
        source_rate=source_rate, seed=seed, registry=registry,
        delivery=delivery, fabric_wrapper=wrap,
        heartbeat_interval=0.1, heartbeat_timeout=0.6,
        recovery=RecoveryConfig(checkpoint_interval=0.2),
        checkpoint_store=InMemoryCheckpointStore())
    sinks: List[CollectingSink] = []
    epochs: List[int] = []
    harness = _RecordingHarness(runtime, schedule.churn_view(),
                                time_scale, sinks, epochs)
    windows = _WindowDriver(fabric_holder[0], schedule, time_scale)
    expected = set(range(tuples))
    runtime.start()
    try:
        sinks.append(runtime.sink_unit())
        epochs.append(runtime.master.pool.epoch)
        windows.start()
        harness.run()
        windows.join(timeout=_COLLECT_TIMEOUT)
        deadline = time.monotonic() + _COLLECT_TIMEOUT
        while time.monotonic() < deadline:
            union = {data.seq for sink in sinks for data in sink.results}
            if expected <= union:
                break
            time.sleep(0.05)
        time.sleep(0.4)  # let straggling duplicates land
        retained = _retained_runtime_seqs(runtime)
        recoveries = int(registry.value(
            metrics_mod.MASTER_RECOVERIES_TOTAL,
            device=runtime.master.master_id))
        delivered = [data.seq for sink in sinks for data in sink.results]
    finally:
        runtime.stop()
    evict_reasons = registry.values_by_label(
        metrics_mod.REPLAY_EVICTED_TOTAL, "reason")
    ledger = TenantHistory(emitted=set(expected), judged=set(expected),
                           delivered=delivered, accounted=set(),
                           retained=set(retained),
                           evictions=sum(evict_reasons.values()))
    fenced = sum(registry.values_by_label(
        metrics_mod.FENCED_TOTAL, "device").values())
    notes = ["runtime substrate runs the plain pipeline; %s is a "
             "simulator-side nemesis" % note
             for note in (["keyed migration"] if schedule.profile.keyed
                          else [])
             + (["tenant overload"]
                if schedule.profile.tenant_count > 1 else [])]
    notes.extend("load_burst on %s has no threaded mirror" % event.target
                 for event in schedule.window_events()
                 if event.action == LOAD_BURST)
    return RunHistory(
        substrate=RUNTIME,
        at_least_once=True,
        tenants={"": ledger},
        hot_tenant=None,
        drop_reasons=registry.values_by_label(
            metrics_mod.DROPPED_TOTAL, "reason"),
        evict_reasons=evict_reasons,
        redelivered=sum(registry.values_by_label(
            metrics_mod.REDELIVERED_TOTAL, "downstream").values()),
        deduped=sum(registry.values_by_label(
            metrics_mod.DEDUPED_TOTAL, "queue").values()),
        retained_end=len(retained),
        queue_depths={},
        queue_capacity=None,
        expected_recoveries=sum(
            1 for event in schedule
            if event.action == CHURN_RESTART_MASTER),
        recoveries=recoveries,
        epochs=tuple(epochs),
        fenced=fenced,
        keyed_audit=None,
        notes=notes,
    )


def run_schedule(schedule: FaultSchedule, substrate: str) -> RunHistory:
    """Dispatch one schedule onto one substrate."""
    if substrate == SIM:
        return run_sim(schedule)
    if substrate == RUNTIME:
        return run_runtime(schedule)
    raise RuntimeStateError("unknown substrate %r (want one of %s)"
                            % (substrate, list(SUBSTRATES)))
