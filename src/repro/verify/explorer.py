"""The sweep loop behind ``swing verify``.

``explore`` generates N seeded schedules, runs each on the requested
substrates and checks the invariant catalog against the resulting
histories.  A violation triggers ``shrink`` — classic ddmin over the
schedule's fault *atoms* (paired events such as depart+rejoin or
partition+heal shrink as one unit, so every candidate subset is still a
structurally coherent schedule) — and the minimal failing schedule is
written as a JSON repro that ``replay`` re-executes deterministically.

Schedules are seeded ``base_seed + index``; the same base seed yields
byte-identical schedules (``FaultSchedule.to_json`` is canonical) and,
on the discrete-event substrate, an identical verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.exceptions import RuntimeStateError
from repro.verify import adapters
from repro.verify.invariants import InvariantChecker, Violation
from repro.verify.schedule import FaultSchedule, ScheduleSpec

_REPRO_VERSION = 1

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class RunRecord:
    """One (schedule, substrate) execution inside a sweep."""

    index: int
    seed: int
    substrate: str
    violations: Tuple[Violation, ...]
    notes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class ReproCase:
    """A failing schedule plus its shrunk minimal form."""

    substrate: str
    schedule: FaultSchedule
    shrunk: FaultSchedule
    violations: Tuple[Violation, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": _REPRO_VERSION,
            "substrate": self.substrate,
            "schedule": self.schedule.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "violations": [violation.to_dict()
                           for violation in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReproCase":
        if data.get("version") != _REPRO_VERSION:
            raise RuntimeStateError("unknown repro version %r"
                                    % data.get("version"))
        return cls(
            substrate=str(data["substrate"]),
            schedule=FaultSchedule.from_dict(data["schedule"]),
            shrunk=FaultSchedule.from_dict(data["shrunk"]),
            violations=tuple(
                Violation(invariant=item["invariant"],
                          message=item["message"],
                          details=dict(item.get("details", {})))
                for item in data.get("violations", ())),
        )


@dataclass
class ExploreReport:
    """Everything one ``swing verify`` sweep learned."""

    runs: List[RunRecord] = field(default_factory=list)
    failures: List[ReproCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedules": len({record.seed for record in self.runs}),
            "runs": len(self.runs),
            "clean": sum(1 for record in self.runs if record.ok),
            "failures": [case.to_dict() for case in self.failures],
        }


def check_run(schedule: FaultSchedule, substrate: str,
              checker: Optional[InvariantChecker] = None
              ) -> Tuple[Tuple[Violation, ...], Tuple[str, ...]]:
    """Run one schedule on one substrate and check every invariant."""
    checker = checker or InvariantChecker()
    history = adapters.run_schedule(schedule, substrate)
    return tuple(checker.check(history)), tuple(history.notes)


def explore(schedules: int, seed: int,
            substrates: Sequence[str] = (adapters.SIM,),
            spec: Optional[ScheduleSpec] = None,
            shrink_failures: bool = True,
            progress: Progress = None) -> ExploreReport:
    """Sweep *schedules* seeded chaos schedules across *substrates*."""
    if schedules < 1:
        raise RuntimeStateError("need at least one schedule")
    for substrate in substrates:
        if substrate not in adapters.SUBSTRATES:
            raise RuntimeStateError("unknown substrate %r" % (substrate,))
    checker = InvariantChecker()
    report = ExploreReport()
    for index in range(schedules):
        schedule_seed = seed + index
        schedule = FaultSchedule.generate(schedule_seed, spec=spec)
        for substrate in substrates:
            violations, notes = check_run(schedule, substrate, checker)
            report.runs.append(RunRecord(
                index=index, seed=schedule_seed, substrate=substrate,
                violations=violations, notes=notes))
            if progress is not None:
                progress("schedule %d/%d seed=%d substrate=%s %s"
                         % (index + 1, schedules, schedule_seed,
                            substrate,
                            "FAIL(%d)" % len(violations)
                            if violations else "ok"))
            if violations:
                shrunk = schedule
                if shrink_failures:
                    shrunk = shrink(schedule, substrate, checker=checker,
                                    progress=progress)
                report.failures.append(ReproCase(
                    substrate=substrate, schedule=schedule,
                    shrunk=shrunk, violations=violations))
    return report


def shrink(schedule: FaultSchedule, substrate: str,
           checker: Optional[InvariantChecker] = None,
           progress: Progress = None) -> FaultSchedule:
    """ddmin the failing *schedule* down to a minimal set of atoms.

    Candidate subsets that fail structural validation count as
    non-failing (they are not schedules at all); the returned schedule
    always still produces at least one violation on *substrate*.
    """
    checker = checker or InvariantChecker()
    cache: Dict[FrozenSet[int], bool] = {}

    def fails(atoms: Sequence[int]) -> bool:
        key = frozenset(atoms)
        if key in cache:
            return cache[key]
        candidate = schedule.subset(atoms)
        try:
            candidate.validate()
            violations, _ = check_run(candidate, substrate, checker)
            verdict = bool(violations)
        except RuntimeStateError:
            verdict = False
        cache[key] = verdict
        return verdict

    atoms = list(schedule.atoms())
    fails(atoms)  # seed the cache with the known-failing full set
    granularity = 2
    while len(atoms) >= 2:
        chunk = max(1, len(atoms) // granularity)
        chunks = [atoms[i:i + chunk] for i in range(0, len(atoms), chunk)]
        reduced = False
        for piece in chunks:
            complement = [atom for atom in atoms if atom not in piece]
            if complement and fails(complement):
                atoms = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                if progress is not None:
                    progress("shrink: %d atom(s) still failing"
                             % len(atoms))
                break
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(len(atoms), granularity * 2)
    return schedule.subset(atoms)


def write_repro(case: ReproCase, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(case.to_json())
        handle.write("\n")


def load_repro(path: str) -> ReproCase:
    with open(path) as handle:
        return ReproCase.from_dict(json.load(handle))


def replay(path: str, substrate: Optional[str] = None,
           progress: Progress = None
           ) -> Tuple[ReproCase, Tuple[Violation, ...]]:
    """Re-run a repro file's shrunk schedule and return the verdict."""
    case = load_repro(path)
    target = substrate or case.substrate
    if progress is not None:
        progress("replaying %d-event schedule (seed=%s) on %s"
                 % (len(case.shrunk), case.shrunk.seed, target))
    violations, _ = check_run(case.shrunk, target)
    return case, violations
