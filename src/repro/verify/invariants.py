"""Global invariants over one chaos run's normalized history.

The checker consumes a :class:`RunHistory` — the substrate-neutral
normal form both adapters produce from a run (frame records / sink
collections, the metrics registry, control-plane checkpoints) — and
checks the guarantees the repo claims (DESIGN.md §14 maps each
invariant to its guarantee-matrix rows):

``tuple_conservation``
    Every emitted tuple has exactly one disposition::

        emitted == delivered ∪ accounted ∪ covered

    where *accounted* are drop-charged tuples (shed, expired, link
    down, …) and *covered* tuples are bounded by the loud replay-budget
    terms: ``|emitted - delivered - accounted| <= evictions +
    retained_end``.  No phantom deliveries either: a delivered or
    accounted seq must have been emitted.
``at_least_once_completeness``
    Per tenant, the conservation bound with the tenant's own eviction
    budget: when nothing was evicted and nothing is still retained, the
    sink saw *everything*.
``dedup_soundness``
    No seq is delivered past a sink twice — across master
    incarnations, not just within one.
``epoch_fencing``
    Master epochs only move forward, one recovery per scheduled
    restart, and stale-epoch control traffic is counted, never acted
    on.
``keyed_state_integrity``
    After any number of hot-range splits and live migrations, a key
    lives in at most one live store and always hashes into a range its
    holder owns in the final table (crashed owners lose state by
    design — the guarantee matrix's crash row — so only live stores
    are audited).
``bounded_queues``
    No ingress queue ever exceeded its configured bound.
``tenant_isolation``
    A hot tenant's overload sheds its *own* tuples: victim tenants
    show zero unaccounted loss.
``loss_accounted``
    Every drop and eviction carries a reason from the known
    vocabulary — loss is always loud, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core import delivery
from repro.core.keyed import KeyRange, hash_key
from repro.simulation import metrics as sim_metrics

#: drop reasons either substrate may legitimately charge
KNOWN_DROP_REASONS = frozenset({
    sim_metrics.DROP_SOURCE_QUEUE, sim_metrics.DROP_CONN_OVERFLOW,
    sim_metrics.DROP_DEVICE_LEFT, sim_metrics.DROP_LINK_DOWN,
    sim_metrics.DROP_STALE, sim_metrics.DROP_EXPIRED,
    sim_metrics.DROP_BACKPRESSURE, sim_metrics.DROP_QUEUE_FULL,
    # runtime chaos fabric injections (always counted, never silent)
    "chaos_drop", "chaos_corrupt", "chaos_partition", "corrupt_batch",
})
KNOWN_EVICT_REASONS = frozenset({
    delivery.EVICT_CAPACITY, delivery.EVICT_BYTES, delivery.EVICT_ATTEMPTS,
    delivery.EVICT_EXPIRED, delivery.EVICT_SHED,
})


@dataclass(frozen=True)
class Violation:
    """One invariant broken by one run."""

    invariant: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "message": self.message,
                "details": {key: sorted(value)
                            if isinstance(value, (set, frozenset))
                            else value
                            for key, value in self.details.items()}}


@dataclass
class TenantHistory:
    """Per-tenant delivery ledger ('' = the single-tenant namespace)."""

    emitted: Set[int] = field(default_factory=set)
    judged: Set[int] = field(default_factory=set)       # inside horizon
    delivered: List[int] = field(default_factory=list)  # arrival order
    accounted: Set[int] = field(default_factory=set)    # drop-charged
    queued_end: Set[int] = field(default_factory=set)   # still in-flight
    retained: Set[int] = field(default_factory=set)     # still replayable
    evictions: int = 0

    @property
    def delivered_set(self) -> Set[int]:
        return set(self.delivered)

    @property
    def unaccounted(self) -> Set[int]:
        # Only seqs inside the judging horizon owe a disposition —
        # tuples emitted during the tail settle window may legitimately
        # still be in flight when the run is cut off — and a seq the
        # substrate can *show* still queued or retained at end of run is
        # the conservation equation's in-flight term, not a loss.  What
        # remains must fit inside the (loud) eviction count.
        return ((self.judged & self.emitted) - self.delivered_set
                - self.accounted - self.queued_end - self.retained)


@dataclass
class RunHistory:
    """Substrate-neutral evidence one chaos run leaves behind."""

    substrate: str
    at_least_once: bool = True
    tenants: Dict[str, TenantHistory] = field(default_factory=dict)
    hot_tenant: Optional[str] = None
    #: global counters (labels collapsed)
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    evict_reasons: Dict[str, int] = field(default_factory=dict)
    redelivered: int = 0
    deduped: int = 0
    retained_end: int = 0
    #: ingress high-water marks and the configured bound (None=unbounded)
    queue_depths: Dict[str, int] = field(default_factory=dict)
    queue_capacity: Optional[int] = None
    #: control plane: scheduled restarts vs observed recoveries/epochs
    expected_recoveries: int = 0
    recoveries: int = 0
    epochs: Tuple[int, ...] = ()
    fenced: int = 0
    #: keyed audit: {"tables": {tenant: [(lo, hi, owner), ...]},
    #:               "stores": {device: {tenant: [key, ...]}}}
    keyed_audit: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)

    @property
    def total_evictions(self) -> int:
        return sum(self.evict_reasons.values())


class InvariantChecker:
    """Checks every invariant against one :class:`RunHistory`."""

    def check(self, history: RunHistory) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._tuple_conservation(history))
        violations.extend(self._completeness(history))
        violations.extend(self._dedup_soundness(history))
        violations.extend(self._epoch_fencing(history))
        violations.extend(self._keyed_integrity(history))
        violations.extend(self._bounded_queues(history))
        violations.extend(self._tenant_isolation(history))
        violations.extend(self._loss_accounted(history))
        return violations

    # -- conservation ------------------------------------------------------
    def _tuple_conservation(self, history: RunHistory) -> List[Violation]:
        violations: List[Violation] = []
        for tenant, ledger in sorted(history.tenants.items()):
            phantom = ledger.delivered_set - ledger.emitted
            if phantom:
                violations.append(Violation(
                    "tuple_conservation",
                    "tenant %r delivered %d seq(s) that were never "
                    "emitted" % (tenant, len(phantom)),
                    {"tenant": tenant, "seqs": sorted(phantom)[:20]}))
            ghost = ledger.accounted - ledger.emitted
            if ghost:
                violations.append(Violation(
                    "tuple_conservation",
                    "tenant %r drop-charged %d seq(s) that were never "
                    "emitted" % (tenant, len(ghost)),
                    {"tenant": tenant, "seqs": sorted(ghost)[:20]}))
        unaccounted = sum(len(ledger.unaccounted)
                          for ledger in history.tenants.values())
        budget = history.total_evictions
        if history.at_least_once and unaccounted > budget:
            violations.append(Violation(
                "tuple_conservation",
                "%d tuple(s) have no disposition (delivered + dropped + "
                "evicted + queued + retained != emitted) but only %d "
                "eviction(s) were recorded" % (unaccounted, budget),
                {"unaccounted": unaccounted, "evictions":
                 history.total_evictions,
                 "retained_end": history.retained_end}))
        return violations

    # -- at-least-once -----------------------------------------------------
    def _completeness(self, history: RunHistory) -> List[Violation]:
        if not history.at_least_once:
            return []
        violations: List[Violation] = []
        for tenant, ledger in sorted(history.tenants.items()):
            missing = ledger.unaccounted
            budget = ledger.evictions
            if len(missing) > budget:
                violations.append(Violation(
                    "at_least_once_completeness",
                    "tenant %r lost %d tuple(s) end-to-end beyond its "
                    "eviction budget of %d under at-least-once delivery"
                    % (tenant, len(missing), budget),
                    {"tenant": tenant, "seqs": sorted(missing)[:20],
                     "evictions": ledger.evictions,
                     "retained_end": history.retained_end}))
        return violations

    # -- dedup -------------------------------------------------------------
    def _dedup_soundness(self, history: RunHistory) -> List[Violation]:
        violations: List[Violation] = []
        for tenant, ledger in sorted(history.tenants.items()):
            seen: Set[int] = set()
            duplicated: Set[int] = set()
            for seq in ledger.delivered:
                if seq in seen:
                    duplicated.add(seq)
                seen.add(seq)
            if duplicated:
                violations.append(Violation(
                    "dedup_soundness",
                    "tenant %r saw %d seq(s) delivered past the sink "
                    "more than once" % (tenant, len(duplicated)),
                    {"tenant": tenant, "seqs": sorted(duplicated)[:20]}))
        return violations

    # -- epochs ------------------------------------------------------------
    def _epoch_fencing(self, history: RunHistory) -> List[Violation]:
        violations: List[Violation] = []
        if history.recoveries != history.expected_recoveries:
            violations.append(Violation(
                "epoch_fencing",
                "schedule restarts the master %d time(s) but %d "
                "recovery(ies) were observed"
                % (history.expected_recoveries, history.recoveries),
                {"expected": history.expected_recoveries,
                 "observed": history.recoveries}))
        epochs = history.epochs
        for previous, current in zip(epochs, epochs[1:]):
            if current <= previous:
                violations.append(Violation(
                    "epoch_fencing",
                    "master epoch went from %d to %d — epochs must be "
                    "strictly increasing" % (previous, current),
                    {"epochs": list(epochs)}))
                break
        if history.fenced < 0:  # defensive; counters never go negative
            violations.append(Violation(
                "epoch_fencing", "negative fenced-message count",
                {"fenced": history.fenced}))
        return violations

    # -- keyed state -------------------------------------------------------
    def _keyed_integrity(self, history: RunHistory) -> List[Violation]:
        audit = history.keyed_audit
        if not audit:
            return []
        violations: List[Violation] = []
        tables: Dict[str, Sequence[Tuple[int, int, str]]] = \
            audit.get("tables", {})  # type: ignore[assignment]
        stores: Dict[str, Dict[str, Sequence[str]]] = \
            audit.get("stores", {})  # type: ignore[assignment]
        holders: Dict[Tuple[str, str], List[str]] = {}
        for device_id, by_tenant in sorted(stores.items()):
            for tenant, keys in sorted(by_tenant.items()):
                for key in keys:
                    holders.setdefault((tenant, key),
                                       []).append(device_id)
        for (tenant, key), devices in sorted(holders.items()):
            if len(devices) > 1:
                violations.append(Violation(
                    "keyed_state_integrity",
                    "key %r (tenant %r) lives in %d stores at once: %s"
                    % (key, tenant, len(devices), sorted(devices)),
                    {"tenant": tenant, "key": key,
                     "devices": sorted(devices)}))
                continue
            entries = tables.get(tenant, ())
            owner = None
            key_hash = hash_key(key)
            for lo, hi, range_owner in entries:
                if KeyRange(int(lo), int(hi)).contains(key_hash):
                    owner = range_owner
                    break
            if owner != devices[0]:
                violations.append(Violation(
                    "keyed_state_integrity",
                    "key %r (tenant %r) is stored on %r but the final "
                    "table routes its range to %r"
                    % (key, tenant, devices[0], owner),
                    {"tenant": tenant, "key": key, "holder": devices[0],
                     "owner": owner}))
        return violations

    # -- queues ------------------------------------------------------------
    def _bounded_queues(self, history: RunHistory) -> List[Violation]:
        capacity = history.queue_capacity
        if capacity is None:
            return []
        violations: List[Violation] = []
        for name, depth in sorted(history.queue_depths.items()):
            if depth > capacity:
                violations.append(Violation(
                    "bounded_queues",
                    "queue %r reached depth %d, past its bound of %d"
                    % (name, depth, capacity),
                    {"queue": name, "depth": depth,
                     "capacity": capacity}))
        return violations

    # -- tenant isolation --------------------------------------------------
    def _tenant_isolation(self, history: RunHistory) -> List[Violation]:
        hot = history.hot_tenant
        if hot is None or not history.at_least_once:
            return []
        violations: List[Violation] = []
        for tenant, ledger in sorted(history.tenants.items()):
            if tenant == hot:
                continue
            missing = ledger.unaccounted
            budget = ledger.evictions
            if len(missing) > budget:
                violations.append(Violation(
                    "tenant_isolation",
                    "victim tenant %r lost %d tuple(s) while %r ran hot "
                    "— overload must shed the offender's own traffic"
                    % (tenant, len(missing), hot),
                    {"tenant": tenant, "hot_tenant": hot,
                     "seqs": sorted(missing)[:20]}))
        return violations

    # -- loud loss ---------------------------------------------------------
    def _loss_accounted(self, history: RunHistory) -> List[Violation]:
        violations: List[Violation] = []
        unknown_drops = set(history.drop_reasons) - KNOWN_DROP_REASONS
        if unknown_drops:
            violations.append(Violation(
                "loss_accounted",
                "drops charged under unknown reason(s): %s"
                % sorted(unknown_drops),
                {"reasons": sorted(unknown_drops)}))
        unknown_evictions = set(history.evict_reasons) \
            - KNOWN_EVICT_REASONS
        if unknown_evictions:
            violations.append(Violation(
                "loss_accounted",
                "replay evictions under unknown reason(s): %s"
                % sorted(unknown_evictions),
                {"reasons": sorted(unknown_evictions)}))
        return violations


def check_history(history: RunHistory) -> List[Violation]:
    """Convenience wrapper: run every invariant over *history*."""
    return InvariantChecker().check(history)
