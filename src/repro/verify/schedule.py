"""Seeded fault schedules: one nemesis vocabulary for both substrates.

A :class:`FaultSchedule` is a validated, replayable composition of every
fault the repo can inject, generated deterministically from a seed.  It
extends the membership-only :class:`~repro.core.delivery.ChurnSchedule`
with *windowed* nemeses (message drop / delay / duplicate / corrupt,
background-load bursts) and a :class:`RunProfile` selecting the keyed /
multi-tenant workload shape the faults compose against.

Events come in two shapes:

- **point events** reuse the churn vocabulary (``kill`` / ``leave`` /
  ``rejoin`` / ``kill_master`` / ``restart_master`` / ``partition`` /
  ``heal``) and project onto a plain ``ChurnSchedule`` via
  :meth:`FaultSchedule.churn_view` — the projection both substrates
  already consume.
- **window events** (``chaos_*`` / ``load_burst``) carry a duration and
  an intensity; the simulator maps them onto its fault mirror
  (``MessageDropEvent`` …) and the runtime onto per-link
  :class:`~repro.runtime.chaos.LinkChaos` settings.

Every event belongs to an **atom** — the smallest unit that can be
removed while keeping the schedule coherent (a departure travels with
its rejoin, a partition with its heal, a master kill with its restart).
The shrinker in :mod:`repro.verify.explorer` delta-debugs over atoms so
each candidate subset still validates.

Serialization (:meth:`to_json` / :meth:`from_json`) is canonical —
sorted keys, fixed separators, times rounded at generation — so the
same seed yields byte-identical schedule documents run after run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.delivery import (CHURN_HEAL, CHURN_JOIN, CHURN_KILL,
                                 CHURN_KILL_MASTER, CHURN_LEAVE,
                                 CHURN_PARTITION, CHURN_REJOIN,
                                 CHURN_RESTART_MASTER, ChurnEvent,
                                 ChurnSchedule)
from repro.core.exceptions import RuntimeStateError

#: windowed nemeses (duration > 0; ``value`` is the intensity)
CHAOS_DROP = "chaos_drop"            # drop probability on one link
CHAOS_DELAY = "chaos_delay"          # extra per-message delay (seconds)
CHAOS_DUPLICATE = "chaos_duplicate"  # duplicate probability (runtime codec)
CHAOS_CORRUPT = "chaos_corrupt"      # bit-flip probability (runtime codec)
LOAD_BURST = "load_burst"            # background CPU load on one worker

_POINT_ACTIONS = frozenset({CHURN_JOIN, CHURN_KILL, CHURN_LEAVE,
                            CHURN_REJOIN, CHURN_KILL_MASTER,
                            CHURN_RESTART_MASTER, CHURN_PARTITION,
                            CHURN_HEAL})
_WINDOW_ACTIONS = frozenset({CHAOS_DROP, CHAOS_DELAY, CHAOS_DUPLICATE,
                             CHAOS_CORRUPT, LOAD_BURST})
_ACTIONS = _POINT_ACTIONS | _WINDOW_ACTIONS
#: window intensities that are probabilities (bounded to [0, 1])
_PROBABILITY_ACTIONS = frozenset({CHAOS_DROP, CHAOS_DUPLICATE,
                                  CHAOS_CORRUPT, LOAD_BURST})

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One fault at a point (or over a window) of scenario time."""

    time: float
    action: str
    target: str          # device id, master id, or a directed "a>b" link
    duration: float = 0.0
    value: float = 0.0
    atom: int = 0        # shrink unit this event belongs to

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise RuntimeStateError("unknown fault action %r (want one "
                                    "of %s)" % (self.action,
                                                sorted(_ACTIONS)))
        if self.time < 0:
            raise RuntimeStateError("fault event time must be >= 0")
        if not self.target:
            raise RuntimeStateError("fault event needs a target")
        if self.action in _WINDOW_ACTIONS:
            if self.duration <= 0:
                raise RuntimeStateError("%s window needs a positive "
                                        "duration" % self.action)
        elif self.duration:
            raise RuntimeStateError("%s is a point event; duration must "
                                    "be 0" % self.action)
        if self.action in _PROBABILITY_ACTIONS \
                and not 0.0 <= self.value <= 1.0:
            raise RuntimeStateError("%s intensity must be in [0, 1], got "
                                    "%r" % (self.action, self.value))
        if self.action == CHAOS_DELAY and self.value < 0:
            raise RuntimeStateError("chaos_delay needs a non-negative "
                                    "extra delay")

    @property
    def end(self) -> float:
        return self.time + self.duration

    def to_dict(self) -> Dict[str, object]:
        return {"time": self.time, "action": self.action,
                "target": self.target, "duration": self.duration,
                "value": self.value, "atom": self.atom}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(time=float(data["time"]), action=str(data["action"]),
                   target=str(data["target"]),
                   duration=float(data.get("duration", 0.0)),
                   value=float(data.get("value", 0.0)),
                   atom=int(data.get("atom", 0)))


@dataclass(frozen=True)
class ScheduleSpec:
    """Shape and feature toggles the generator draws schedules from."""

    workers: Tuple[str, ...] = ("B", "D", "G", "H")
    source_id: str = "A"
    duration: float = 36.0
    start_after: float = 6.0
    settle: float = 12.0
    master_faults: bool = True
    partitions: bool = True
    link_chaos: bool = True
    load_bursts: bool = True
    keyed: bool = True
    max_tenants: int = 3

    def __post_init__(self) -> None:
        if len(self.workers) < 3:
            raise RuntimeStateError("schedules need >= 3 workers so a "
                                    "survivor always remains")
        if self.duration <= self.start_after + self.settle:
            raise RuntimeStateError("duration too short for a fault "
                                    "window (need > start_after + settle)")
        if self.max_tenants < 1:
            raise RuntimeStateError("max_tenants must be >= 1")

    @property
    def window_end(self) -> float:
        """Faults stop here so the tail of the run can recover."""
        return self.duration - self.settle

    def to_dict(self) -> Dict[str, object]:
        return {"workers": list(self.workers), "source_id": self.source_id,
                "duration": self.duration, "start_after": self.start_after,
                "settle": self.settle, "master_faults": self.master_faults,
                "partitions": self.partitions, "link_chaos": self.link_chaos,
                "load_bursts": self.load_bursts, "keyed": self.keyed,
                "max_tenants": self.max_tenants}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScheduleSpec":
        return cls(workers=tuple(str(w) for w in data["workers"]),
                   source_id=str(data["source_id"]),
                   duration=float(data["duration"]),
                   start_after=float(data["start_after"]),
                   settle=float(data["settle"]),
                   master_faults=bool(data["master_faults"]),
                   partitions=bool(data["partitions"]),
                   link_chaos=bool(data["link_chaos"]),
                   load_bursts=bool(data["load_bursts"]),
                   keyed=bool(data["keyed"]),
                   max_tenants=int(data["max_tenants"]))


@dataclass(frozen=True)
class RunProfile:
    """Workload shape the schedule's faults compose against."""

    keyed: bool = False
    tenant_count: int = 1
    hot_tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tenant_count < 1:
            raise RuntimeStateError("tenant_count must be >= 1")
        if self.keyed and self.tenant_count > 1:
            raise RuntimeStateError("keyed and multi-tenant profiles do "
                                    "not compose (per-tenant key tables "
                                    "are a future PR)")
        if self.hot_tenant is not None and self.tenant_count < 2:
            raise RuntimeStateError("a hot tenant needs >= 2 tenants")

    def to_dict(self) -> Dict[str, object]:
        return {"keyed": self.keyed, "tenant_count": self.tenant_count,
                "hot_tenant": self.hot_tenant}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunProfile":
        hot = data.get("hot_tenant")
        return cls(keyed=bool(data["keyed"]),
                   tenant_count=int(data["tenant_count"]),
                   hot_tenant=None if hot is None else str(hot))


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, validated composition of faults over one run."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None
    spec: ScheduleSpec = field(default_factory=ScheduleSpec)
    profile: RunProfile = field(default_factory=RunProfile)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.time, e.action, e.target)))
        object.__setattr__(self, "events", ordered)

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(cls, seed: int,
                 spec: Optional[ScheduleSpec] = None) -> "FaultSchedule":
        """One deterministic fault composition for *seed*.

        The generator draws a workload profile (plain / keyed /
        multi-tenant) and then composes nemeses that are legal against
        it, each under the rules :meth:`validate` re-checks:

        - worker churn (kill / graceful leave, each paired with a
          rejoin) over a strict subset of the pool;
        - at most one master outage (kill + restart), never composed
          with keyed or multi-tenant profiles and never overlapping
          other faults — the outage itself is the nemesis there;
        - link partitions, each paired with a heal on the same link;
        - seeded drop / delay / duplicate / corrupt windows on
          source->worker links;
        - background-load bursts (overload shedding territory), only
          alongside bounded queues.
        """
        spec = spec or ScheduleSpec()
        rng = random.Random(seed)
        builder = _Builder(spec, rng)
        builder.build()
        return cls(events=tuple(builder.events), seed=seed, spec=spec,
                   profile=builder.profile)

    # -- views -------------------------------------------------------------
    def churn_view(self) -> ChurnSchedule:
        """The point events as a plain membership/control schedule."""
        churn = tuple(ChurnEvent(time=event.time, action=event.action,
                                 device_id=event.target)
                      for event in self.events
                      if event.action in _POINT_ACTIONS)
        return ChurnSchedule(events=churn, seed=self.seed)

    def window_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(event for event in self.events
                     if event.action in _WINDOW_ACTIONS)

    def end_time(self) -> float:
        """When the last fault (or fault window) is over."""
        return max((max(event.time, event.end) for event in self.events),
                   default=0.0)

    def atoms(self) -> Tuple[int, ...]:
        """Distinct shrink units, in first-appearance order."""
        seen: List[int] = []
        for event in self.events:
            if event.atom not in seen:
                seen.append(event.atom)
        return tuple(seen)

    def subset(self, atoms: Iterable[int]) -> "FaultSchedule":
        """The schedule restricted to the given shrink units."""
        keep = set(atoms)
        return FaultSchedule(events=tuple(e for e in self.events
                                          if e.atom in keep),
                             seed=self.seed, spec=self.spec,
                             profile=self.profile)

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        """Check the composition rules; raises RuntimeStateError."""
        spec = self.spec
        self.churn_view().validate(spec.workers)
        self._validate_master_outages()
        self._validate_partitions()
        self._validate_windows()
        self._validate_survivor()

    def _master_outages(self) -> List[Tuple[float, float]]:
        outages: List[Tuple[float, float]] = []
        kill_at: Optional[float] = None
        for event in self.events:
            if event.action == CHURN_KILL_MASTER:
                if kill_at is not None:
                    raise RuntimeStateError("master killed twice without "
                                            "a restart in between")
                kill_at = event.time
            elif event.action == CHURN_RESTART_MASTER:
                if kill_at is None:
                    raise RuntimeStateError("master restart without a "
                                            "preceding kill")
                outages.append((kill_at, event.time))
                kill_at = None
        if kill_at is not None:
            raise RuntimeStateError("master killed but never restarted")
        return outages

    def _validate_master_outages(self) -> None:
        outages = self._master_outages()
        for kill_at, restart_at in outages:
            if restart_at <= kill_at:
                raise RuntimeStateError("master restart must come after "
                                        "the kill")
            if restart_at > self.spec.window_end:
                raise RuntimeStateError("the master outage must end by "
                                        "t=%.1f so recovery can be "
                                        "judged" % self.spec.window_end)
            for event in self.events:
                if event.action in (CHURN_KILL_MASTER,
                                    CHURN_RESTART_MASTER):
                    continue
                if event.end > kill_at and event.time < restart_at:
                    raise RuntimeStateError(
                        "%s of %r at t=%.1f overlaps the master outage "
                        "[%.1f, %.1f] — the control plane must be up to "
                        "coordinate it" % (event.action, event.target,
                                           event.time, kill_at,
                                           restart_at))
        if outages and (self.profile.keyed
                        or self.profile.tenant_count > 1):
            raise RuntimeStateError("master outages only compose with "
                                    "the plain single-tenant profile")

    def _validate_partitions(self) -> None:
        open_links: Dict[str, float] = {}
        for event in self.events:
            if event.action == CHURN_PARTITION:
                if event.target in open_links:
                    raise RuntimeStateError("link %r partitioned twice "
                                            "without a heal"
                                            % event.target)
                if ">" not in event.target:
                    raise RuntimeStateError("partition target must be a "
                                            "directed 'a>b' link, got %r"
                                            % event.target)
                open_links[event.target] = event.time
            elif event.action == CHURN_HEAL:
                if event.target not in open_links:
                    raise RuntimeStateError("heal of %r without an open "
                                            "partition" % event.target)
                del open_links[event.target]
                if event.time > self.spec.window_end:
                    raise RuntimeStateError("partitions must heal by "
                                            "t=%.1f" % self.spec.window_end)
        if open_links:
            raise RuntimeStateError("links never healed: %s"
                                    % sorted(open_links))

    def _validate_windows(self) -> None:
        for event in self.window_events():
            if event.end > self.spec.window_end:
                raise RuntimeStateError(
                    "%s window on %r runs to t=%.1f, past the fault "
                    "window end t=%.1f" % (event.action, event.target,
                                           event.end, self.spec.window_end))
            if event.action == LOAD_BURST \
                    and event.target not in self.spec.workers:
                raise RuntimeStateError("load burst targets unknown "
                                        "worker %r" % event.target)

    def _validate_survivor(self) -> None:
        churned: Set[str] = {event.target for event in self.events
                             if event.action in (CHURN_KILL, CHURN_LEAVE)}
        if not set(self.spec.workers) - churned:
            raise RuntimeStateError("every worker churns at some point; "
                                    "keep at least one untouched survivor")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"version": _SCHEMA_VERSION, "seed": self.seed,
                "spec": self.spec.to_dict(),
                "profile": self.profile.to_dict(),
                "events": [event.to_dict() for event in self.events]}

    def to_json(self) -> str:
        """Canonical (byte-deterministic) JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        version = int(data.get("version", 0))
        if version != _SCHEMA_VERSION:
            raise RuntimeStateError("unknown schedule schema version %r"
                                    % version)
        seed = data.get("seed")
        return cls(events=tuple(FaultEvent.from_dict(entry)
                                for entry in data["events"]),
                   seed=None if seed is None else int(seed),
                   spec=ScheduleSpec.from_dict(data["spec"]),
                   profile=RunProfile.from_dict(data["profile"]))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class _Builder:
    """Stateful helper assembling one seeded composition."""

    def __init__(self, spec: ScheduleSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.events: List[FaultEvent] = []
        self.profile = RunProfile()
        self._next_atom = 0
        self._outage: Optional[Tuple[float, float]] = None
        self._churned: Set[str] = set()

    def _atom(self) -> int:
        self._next_atom += 1
        return self._next_atom

    def build(self) -> None:
        rng, spec = self.rng, self.spec
        keyed = spec.keyed and rng.random() < 0.25
        tenant_count = 1
        hot_tenant = None
        if not keyed and spec.max_tenants > 1 and rng.random() < 0.3:
            tenant_count = rng.randint(2, spec.max_tenants)
            if rng.random() < 0.6:
                hot_tenant = "t0"
        self.profile = RunProfile(keyed=keyed, tenant_count=tenant_count,
                                  hot_tenant=hot_tenant)
        if spec.master_faults and not keyed and tenant_count == 1 \
                and rng.random() < 0.4:
            self._add_master_outage()
        self._add_membership_churn()
        if spec.partitions and rng.random() < 0.5:
            self._add_partitions()
        if spec.link_chaos and rng.random() < 0.6:
            self._add_chaos_windows()
        if spec.load_bursts and not keyed and rng.random() < 0.35:
            self._add_load_burst()

    # -- segments free of the master outage --------------------------------
    def _free_segments(self, need: float) -> List[Tuple[float, float]]:
        spec = self.spec
        if self._outage is None:
            segments = [(spec.start_after, spec.window_end)]
        else:
            kill_at, restart_at = self._outage
            segments = [(spec.start_after, kill_at - 1.0),
                        (restart_at + 1.0, spec.window_end)]
        return [(lo, hi) for lo, hi in segments if hi - lo >= need]

    def _pick_window(self, need: float) -> Optional[Tuple[float, float]]:
        segments = self._free_segments(need)
        if not segments:
            return None
        lo, hi = self.rng.choice(segments)
        start = round(self.rng.uniform(lo, hi - need), 3)
        return start, hi

    # -- nemeses -----------------------------------------------------------
    def _add_master_outage(self) -> None:
        rng, spec = self.rng, self.spec
        outage = rng.uniform(2.0, 4.0)
        latest = spec.window_end - outage
        earliest = spec.start_after + 2.0
        if latest <= earliest:
            return
        kill_at = round(rng.uniform(earliest, latest), 3)
        restart_at = round(kill_at + outage, 3)
        atom = self._atom()
        self.events.append(FaultEvent(kill_at, CHURN_KILL_MASTER,
                                      spec.source_id, atom=atom))
        self.events.append(FaultEvent(restart_at, CHURN_RESTART_MASTER,
                                      spec.source_id, atom=atom))
        self._outage = (kill_at, restart_at)

    def _add_membership_churn(self) -> None:
        rng, spec = self.rng, self.spec
        max_churners = len(spec.workers) - 2
        count = rng.randint(1, max(1, max_churners))
        churners = rng.sample(sorted(spec.workers), count)
        for device_id in sorted(churners):
            gap = rng.uniform(2.0, 4.0)
            window = self._pick_window(gap + 1.0)
            if window is None:
                continue
            depart_at, segment_end = window
            rejoin_at = round(min(segment_end, depart_at + gap), 3)
            action = CHURN_KILL if rng.random() < 0.5 else CHURN_LEAVE
            atom = self._atom()
            self.events.append(FaultEvent(depart_at, action, device_id,
                                          atom=atom))
            self.events.append(FaultEvent(rejoin_at, CHURN_REJOIN,
                                          device_id, atom=atom))
            self._churned.add(device_id)

    def _add_partitions(self) -> None:
        rng, spec = self.rng, self.spec
        steady = sorted(set(spec.workers) - self._churned)
        if not steady:
            return
        for target in rng.sample(steady, min(len(steady),
                                             rng.randint(1, 2))):
            hold = rng.uniform(1.5, 3.0)
            window = self._pick_window(hold + 0.5)
            if window is None:
                continue
            start, _ = window
            link = "%s>%s" % (spec.source_id, target)
            atom = self._atom()
            self.events.append(FaultEvent(start, CHURN_PARTITION, link,
                                          atom=atom))
            self.events.append(FaultEvent(round(start + hold, 3),
                                          CHURN_HEAL, link, atom=atom))

    def _add_chaos_windows(self) -> None:
        rng, spec = self.rng, self.spec
        kinds = ((CHAOS_DROP, (0.05, 0.3)), (CHAOS_DELAY, (0.05, 0.25)),
                 (CHAOS_DUPLICATE, (0.05, 0.2)), (CHAOS_CORRUPT,
                                                  (0.02, 0.1)))
        for _ in range(rng.randint(1, 2)):
            action, (lo, hi) = rng.choice(kinds)
            target = "%s>%s" % (spec.source_id,
                                rng.choice(sorted(spec.workers)))
            hold = rng.uniform(2.0, 4.0)
            window = self._pick_window(hold + 0.5)
            if window is None:
                continue
            start, _ = window
            self.events.append(FaultEvent(start, action, target,
                                          duration=round(hold, 3),
                                          value=round(rng.uniform(lo, hi),
                                                      3),
                                          atom=self._atom()))

    def _add_load_burst(self) -> None:
        rng, spec = self.rng, self.spec
        target = rng.choice(sorted(spec.workers))
        hold = rng.uniform(3.0, 5.0)
        window = self._pick_window(hold + 0.5)
        if window is None:
            return
        start, _ = window
        self.events.append(FaultEvent(start, LOAD_BURST, target,
                                      duration=round(hold, 3),
                                      value=round(rng.uniform(0.5, 0.8),
                                                  3),
                                      atom=self._atom()))
