"""Jepsen-style verification: chaos schedules + global invariants.

``repro.verify`` turns the repo's per-feature fault scenarios into one
adversarial harness:

``schedule``
    A :class:`FaultSchedule` vocabulary unifying every nemesis the
    repo already has — worker kill / graceful drain / rejoin, master
    kill+restart, link partition/heal, seeded drop / delay / duplicate
    / corrupt windows, background-load bursts, keyed hot-range
    migration and multi-tenant overload — generated from one seed with
    validated composition rules.
``invariants``
    A :class:`RunHistory` normal form plus an :class:`InvariantChecker`
    over the guarantees the repo claims: tuple conservation,
    at-least-once completeness, dedup soundness, epoch-fencing
    monotonicity, keyed-state integrity, bounded queues and tenant
    isolation.
``adapters``
    One adapter per substrate mapping a schedule onto the
    discrete-event simulator and the threaded runtime and normalising
    each run into a :class:`RunHistory`.
``explorer``
    The sweep loop behind ``swing verify``: N seeded schedules, each
    checked on both substrates; a failing schedule is shrunk
    (delta-debugging over fault atoms, deterministic replay by seed)
    to a minimal JSON repro replayable via ``--replay``.
"""

from repro.verify.explorer import explore, replay, shrink  # noqa: F401
from repro.verify.invariants import (InvariantChecker,  # noqa: F401
                                     RunHistory, Violation)
from repro.verify.schedule import (FaultEvent, FaultSchedule,  # noqa: F401
                                   RunProfile, ScheduleSpec)
