"""Swarm experiment harness.

Wires the full system together on the discrete-event engine: a source
device generating sensed frames, a dispatcher applying a routing policy
with ACK-driven latency estimation, heterogeneous worker devices behind
wireless links of varying quality, a sink with a reorder buffer, and the
control loop updating the policy every second — plus runtime dynamics
(devices joining, leaving abruptly, and moving between signal regions).

This reproduces the paper's testbed workflow (Fig. 3, step 4 onward) with
the Android devices and 802.11n WLAN replaced by the calibrated models in
:mod:`repro.simulation.device` and :mod:`repro.simulation.network`.

Transport semantics mirror SEEP over TCP: one dispatcher thread performs
blocking socket writes, each connection buffers up to a socket window's
worth of bytes, and a write to a connection whose window is full blocks
— head-of-line blocking every tuple behind it.  A straggling or
weak-signal downstream therefore throttles the whole dispatch loop,
which is exactly the effect the paper's Worker Selection and
latency-based routing exist to avoid.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import metrics as metrics_mod
from repro.core import multitenant as multitenant_mod
from repro.core import overload as overload_mod
from repro.core.batching import BatchConfig
from repro.core.controller import LrsController, PolicyConfig
from repro.core.delivery import (CHURN_HEAL, CHURN_KILL, CHURN_KILL_MASTER,
                                 CHURN_LEAVE, CHURN_PARTITION,
                                 CHURN_RESTART_MASTER, ChurnSchedule,
                                 DedupWindow, DeliveryConfig, EVICT_SHED)
from repro.core.exceptions import RuntimeStateError, SimulationError
from repro.core.keyed import (KeyedConfig, KeyRange, KeyRangeTable,
                              MOVE_CRASH, MOVE_DRAIN, MOVE_HOT_SPLIT,
                              hash_key, zipf_weights)
from repro.core.overload import OverloadConfig
from repro.core.policies import PolicyDecision
from repro.core.reorder import ReorderBuffer
from repro.core.state import (InMemoryStateStore, WindowAggregator,
                              decode_state_snapshot, encode_state_snapshot,
                              snapshot_range)
from repro.simulation.control import collect_batch, engine_controller
from repro.simulation.device import CpuModel, DeviceProfile, ThermalThrottle
from repro.simulation.energy import EnergyReport, PowerEstimator
from repro.simulation.engine import Simulator, Store
from repro.simulation.metrics import (DROP_BACKPRESSURE, DROP_CONN_OVERFLOW,
                                      DROP_DEVICE_LEFT, DROP_EXPIRED,
                                      DROP_LINK_DOWN, DROP_QUEUE_FULL,
                                      DROP_SOURCE_QUEUE, DROP_STALE,
                                      LatencyStats, MetricsCollector)
from repro.simulation.mobility import MobilityPlan
from repro.simulation.network import Network, RSSI_GOOD
from repro.simulation.rng import RngRegistry
from repro.simulation.workload import ACK_BYTES, Workload
from repro.trace import (NULL_TRACER, PROCESS, QUEUE_WAIT, SHED, Span,
                         TRANSMIT, Tracer)

#: sentinel for an unbounded source egress queue (Fig. 1 style experiments)
UNBOUNDED_QUEUE = 0

#: single source of truth for policy-construction defaults (probe
#: period, estimator window, failure-detection thresholds): the
#: simulator's knobs default to exactly what the runtime uses
_POLICY_DEFAULTS = PolicyConfig()


@dataclass(frozen=True)
class JoinEvent:
    """A device launching Swing and joining mid-run (paper Sec. VI-C)."""

    time: float
    device_id: str
    rssi: float = RSSI_GOOD


@dataclass(frozen=True)
class LeaveEvent:
    """A device abruptly terminating Swing mid-run (paper Sec. VI-C)."""

    time: float
    device_id: str


@dataclass(frozen=True)
class DeviceKillEvent:
    """A device dying *silently*: no LEAVE, no link-break notification.

    Unlike :class:`LeaveEvent` (whose broken connection the upstream
    notices after ``detection_delay``), a silent kill is only detectable
    through loss accounting: tuples routed to the dead device expire,
    its ``lost_count`` grows, and the tracker marks it dead after
    ``dead_after`` expiry rounds.  This is the fault-injection hook the
    failure-detection subsystem is tested against.
    """

    time: float
    device_id: str


@dataclass(frozen=True)
class DeviceReviveEvent:
    """A silently-killed device coming back online."""

    time: float
    device_id: str
    rssi: float = RSSI_GOOD


@dataclass(frozen=True)
class MessageDropEvent:
    """Drop (a fraction of) messages involving a device for a window."""

    time: float
    duration: float
    drop_prob: float = 1.0
    device_id: Optional[str] = None  # None = every device

    def active(self, now: float, device_id: str) -> bool:
        return (self.time <= now < self.time + self.duration
                and (self.device_id is None or self.device_id == device_id))


@dataclass(frozen=True)
class MessageDelayEvent:
    """Add latency to messages involving a device for a window."""

    time: float
    duration: float
    extra_delay: float
    device_id: Optional[str] = None  # None = every device

    def active(self, now: float, device_id: str) -> bool:
        return (self.time <= now < self.time + self.duration
                and (self.device_id is None or self.device_id == device_id))


@dataclass(frozen=True)
class BackgroundLoadEvent:
    """Another app starting/stopping on a device mid-run (paper Sec. III:
    dynamism from 'changes in applications running in the devices')."""

    time: float
    device_id: str
    load: float  # new background CPU load in [0, 1]


@dataclass
class SwarmConfig:
    """Everything that defines one swarm experiment."""

    workload: Workload
    workers: Mapping[str, DeviceProfile]
    source: DeviceProfile
    policy: str = "LRS"
    duration: float = 60.0
    seed: int = 0
    #: initial RSSI per worker; absent workers default to a good signal
    rssi: Mapping[str, float] = field(default_factory=dict)
    #: background CPU load per worker in [0, 1]
    background_load: Mapping[str, float] = field(default_factory=dict)
    #: source egress queue length in frames; ``None`` = 2 s of the input
    #: rate (a real-time source drops stale frames); ``UNBOUNDED_QUEUE``
    #: disables dropping (used for the Fig. 1 delay build-up experiment)
    source_queue_frames: Optional[int] = None
    #: per-connection in-flight window in bytes (send+receive socket
    #: buffers); at least one frame always fits
    socket_window_bytes: int = 32768
    #: time for an upstream to detect a broken link and re-route
    detection_delay: float = 0.5
    control_interval: float = _POLICY_DEFAULTS.control_interval
    probe_every: int = _POLICY_DEFAULTS.probe_every
    probe_tuples: int = _POLICY_DEFAULTS.probe_tuples
    probe_spacing: int = _POLICY_DEFAULTS.probe_spacing
    estimator: str = _POLICY_DEFAULTS.estimator
    estimator_window: int = _POLICY_DEFAULTS.estimator_window
    #: lognormal sigma of per-frame service-time noise (Android-level
    #: scheduling/GC variability)
    jitter_sigma: float = 0.30
    #: sustained-load thermal throttling (set False to disable, e.g. for
    #: the short single-device characterization runs)
    thermal_throttling: bool = True
    joins: Sequence[JoinEvent] = ()
    leaves: Sequence[LeaveEvent] = ()
    background_events: Sequence[BackgroundLoadEvent] = ()
    mobility: Optional[MobilityPlan] = None
    reorder_timespan: float = 1.0
    #: in-flight tuples older than this are charged as lost
    ack_timeout: float = _POLICY_DEFAULTS.ack_timeout
    #: consecutive expiry rounds without an ACK before a downstream is
    #: marked dead (the tracker's failure-detection threshold)
    dead_after: int = _POLICY_DEFAULTS.dead_after
    #: fault-injection schedule: DeviceKillEvent / DeviceReviveEvent /
    #: MessageDropEvent / MessageDelayEvent instances
    faults: Sequence = ()
    #: overload-protection knobs (TTL, bounded worker ingress queues,
    #: source admission control) shared verbatim with the threaded
    #: runtime; ``None`` keeps every mechanism off
    overload: Optional[OverloadConfig] = None
    #: fraction of tuples traced through ``repro.trace`` (0.0 = tracing
    #: off); sampling is deterministic in (seed, seq), so a seeded run
    #: reproduces its trace exactly
    trace_sample_rate: float = 0.0
    #: delivery-semantics knobs (at-least-once replay, sink dedup) shared
    #: verbatim with the threaded runtime; ``None`` keeps best-effort
    delivery: Optional[DeliveryConfig] = None
    #: seeded churn schedule (join/leave/kill/rejoin) consumed
    #: identically by this simulator and the runtime chaos harness
    churn: Optional[ChurnSchedule] = None
    #: data-plane batching knobs shared verbatim with the threaded
    #: runtime; ``None`` (or ``max_tuples=1``) keeps per-tuple dispatch
    batching: Optional[BatchConfig] = None
    #: tenant pipelines sharing this swarm
    #: (:class:`repro.core.multitenant.TenantSpec` instances).  Empty =
    #: the historical single-tenant experiment, byte-identical output.
    #: With tenants, each spec gets its own source / egress / controller
    #: / sink over the SAME device pool, and bounded worker ingress
    #: queues run cross-tenant fair-share admission.
    tenants: Sequence[multitenant_mod.TenantSpec] = ()
    #: keyed-routing knobs shared verbatim with the threaded runtime;
    #: ``None`` keeps every frame stateless (historical behaviour).
    #: With ``key_count > 0`` the source stamps each frame with a key
    #: drawn from a seeded Zipf distribution, frames route by key-range
    #: ownership instead of the policy, workers keep per-key windowed
    #: aggregates, and the control loop splits/migrates hot ranges.
    keyed: Optional[KeyedConfig] = None

    def batching_config(self) -> BatchConfig:
        """This experiment's batching knobs (per-tuple by default)."""
        return self.batching if self.batching is not None else BatchConfig()

    def keyed_config(self) -> KeyedConfig:
        """This experiment's keyed-routing knobs (stateless by default)."""
        return self.keyed if self.keyed is not None else KeyedConfig()

    def overload_config(self) -> OverloadConfig:
        """This experiment's overload knobs (disabled-by-default)."""
        return self.overload if self.overload is not None else OverloadConfig()

    def delivery_config(self) -> DeliveryConfig:
        """This experiment's delivery knobs (best-effort by default)."""
        return self.delivery if self.delivery is not None else DeliveryConfig()

    def policy_config(self, seed: Optional[int] = None) -> PolicyConfig:
        """This experiment's policy knobs as one shared control-plane config."""
        capabilities = None
        if self.policy.upper() == "WRR":
            # Offline-profiled capability weights: nominal device rates.
            capabilities = {
                device_id: profile.service_rate(self.workload.app)
                for device_id, profile in self.workers.items()}
        return PolicyConfig(policy=self.policy, seed=seed,
                            control_interval=self.control_interval,
                            probe_every=self.probe_every,
                            probe_tuples=self.probe_tuples,
                            probe_spacing=self.probe_spacing,
                            estimator=self.estimator,
                            estimator_window=self.estimator_window,
                            ack_timeout=self.ack_timeout,
                            dead_after=self.dead_after,
                            capabilities=capabilities,
                            overload=self.overload,
                            delivery=self.delivery,
                            batching=self.batching,
                            keyed=self.keyed)

    def resolved_source_queue(self) -> Optional[int]:
        """Source queue capacity for the engine (None = unbounded)."""
        if self.source_queue_frames is None:
            return max(1, int(round(2.0 * self.workload.input_rate)))
        if self.source_queue_frames == UNBOUNDED_QUEUE:
            return None
        if self.source_queue_frames < 0:
            raise SimulationError("source queue length must be >= 0")
        return self.source_queue_frames

    def window_frames(self) -> int:
        """Per-connection in-flight window in whole frames.

        At least two frames always fit (TCP keeps a window's worth of
        data in flight even for segments larger than the buffer), so
        transfers pipeline rather than turning fully synchronous.
        """
        return max(2, self.socket_window_bytes // self.workload.frame_bytes)

    def validate(self) -> None:
        if self.duration <= 0:
            raise SimulationError("duration must be positive")
        if self.socket_window_bytes < 1:
            raise SimulationError("socket window must be >= 1 byte")
        if self.detection_delay < 0:
            raise SimulationError("detection delay must be non-negative")
        if self.ack_timeout <= 0:
            raise SimulationError("ack timeout must be positive")
        if self.dead_after < 1:
            raise SimulationError("dead_after must be >= 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise SimulationError("trace sample rate must be in [0, 1]")
        for fault in self.faults:
            if not isinstance(fault, (DeviceKillEvent, DeviceReviveEvent,
                                      MessageDropEvent, MessageDelayEvent)):
                raise SimulationError("unknown fault event %r" % (fault,))
        if not self.workers and not self.joins:
            raise SimulationError("a swarm needs at least one worker")
        for event in self.joins:
            if event.device_id in self.workers:
                raise SimulationError(
                    "device %s both initial and joining" % event.device_id)
        if self.churn is not None:
            self.churn.validate(set(self.workers))
        if self.keyed is not None:
            self.keyed.validate()
            if self.keyed.key_count > 0 and self.batching_config().enabled:
                # Keyed tuples route by range ownership per tuple; a
                # batch spanning ranges has no single owner.
                raise SimulationError(
                    "keyed routing runs per-tuple; disable batching")
        seen_tenants = set()
        for spec in self.tenants:
            if not isinstance(spec, multitenant_mod.TenantSpec):
                raise SimulationError("tenants must be TenantSpec instances,"
                                      " got %r" % (spec,))
            if spec.tenant_id in seen_tenants:
                raise SimulationError("duplicate tenant id %r"
                                      % (spec.tenant_id,))
            seen_tenants.add(spec.tenant_id)


@dataclass
class _Frame:
    seq: int
    created_at: float
    #: absolute deadline stamped at the source (``created_at + ttl``)
    deadline: Optional[float] = None
    #: owning tenant pipeline ("" = the single-tenant namespace)
    tenant: str = ""
    #: partitioning key for keyed stateful operators (None = stateless)
    key: Optional[str] = None
    #: ``hash_key(key)``, stamped once at the source so routing and the
    #: drain-watch never re-hash per hop
    key_hash: Optional[int] = None
    #: payload size charged against the replay buffer's byte bound
    #: (``workload.frame_bytes``, stamped at capture) — without it every
    #: retention weighed 0 bytes and ``replay_bytes`` never evicted
    nbytes: int = 0

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


@dataclass
class _TenantState:
    """One tenant pipeline's private half of the shared swarm: its
    source workload, egress queue, control plane and sink machinery.
    The worker pool, network, clock and registry stay shared."""

    tenant_id: str
    workload: Workload
    controller: LrsController
    egress: Store
    egress_name: str
    edge_name: str
    reorder: ReorderBuffer
    dedup: Optional[DedupWindow]
    #: RNG stream name for this tenant's arrival process
    arrivals_stream: str
    #: RNG stream name for this tenant's key draws (keyed runs only)
    keys_stream: str = "keys"


class _WorkerNode:
    """One worker device: windowed connection + processing loop."""

    def __init__(self, swarm: "SwarmSimulation", profile: DeviceProfile,
                 background_load: float) -> None:
        self.swarm = swarm
        self.profile = profile
        self.device_id = profile.device_id
        self.cpu = CpuModel(profile, swarm.config.workload.app,
                            background_load=background_load)
        sim = swarm.sim
        self.ingress = Store(sim, capacity=swarm.overload.queue_capacity,
                             name="ingress:%s" % self.device_id)
        # Socket-window tokens: the dispatcher takes one per in-flight
        # frame; the worker returns it when it reads the frame to process.
        window = swarm.config.window_frames()
        self.window = window
        self.credits = Store(sim, capacity=window,
                             name="credits:%s" % self.device_id)
        for _ in range(window):
            self.credits.try_put(True)
        self.alive = True
        #: per-tenant ingress occupancy (multi-tenant fair-share input);
        #: stays empty at N=1
        self.tenant_depths: Dict[str, int] = {}
        #: graceful-drain flag: still processing its backlog, but the
        #: upstream no longer routes new tuples here
        self.draining = False
        #: results handed to the radio but not yet delivered to the sink
        self.results_in_flight = 0
        self.joined_at = sim.now
        self.left_at: Optional[float] = None
        self.current_seq: Optional[int] = None
        #: the frame being processed right now (drain-watch inspects its
        #: key hash during a range migration)
        self.current_frame: Optional[_Frame] = None
        #: per-tenant keyed operator state — the SAME StateStore the
        #: threaded runtime's workers host, so snapshot/install run the
        #: identical code path in both substrates
        self.key_stores: Dict[str, InMemoryStateStore] = {}
        self._aggregators: Dict[str, WindowAggregator] = {}
        self.thermal: Optional[ThermalThrottle] = (
            ThermalThrottle()
            if swarm.config.thermal_throttling and profile.throttles
            else None)
        self.process = sim.process(self._run(),
                                   name="worker:%s" % self.device_id)

    def _run(self):
        swarm = self.swarm
        sim = swarm.sim
        counters = swarm.metrics.device(self.device_id)
        while self.alive:
            frame = yield self.ingress.get()
            self.forget_depth(frame)
            self.credits.try_put(True)  # socket slot freed by the read
            if frame.expired(sim.now):
                # Past its deadline while queued: shed instead of burning
                # CPU on a result nobody can use any more.  Still ACK the
                # tracker (mirroring the runtime worker): a shed is a
                # policy decision, not a fault, and must not feed loss
                # accounting or dead-marking.
                swarm._shed(frame.seq, DROP_EXPIRED,
                            overload_mod.REASON_EXPIRED,
                            queue="ingress:%s" % self.device_id)
                swarm._controller_for(frame.tenant).on_ack(
                    frame.seq, processing_delay=0.0, now=sim.now,
                    downstream_hint=self.device_id)
                continue
            record = swarm.metrics.frame(frame.seq, frame.created_at)
            record.proc_started_at = sim.now
            if swarm.tracer.enabled:
                # Receiver-side queue wait: delivery to processing start
                # (the analytic decomposition's "queuing" component).
                swarm.tracer.emit(Span(QUEUE_WAIT, frame.seq,
                                       record.tx_finished_at, sim.now,
                                       device_id=self.device_id,
                                       hop="ingress:%s" % self.device_id,
                                       tenant=frame.tenant))
            self.current_seq = frame.seq
            self.current_frame = frame
            jitter = swarm.rngs.lognormal_jitter(
                "service:%s" % self.device_id, swarm.config.jitter_sigma)
            service = self.cpu.service_time(jitter)
            if self.thermal is not None:
                self.thermal.update(sim.now)
                service /= self.thermal.speed_factor()
                self.thermal.record_busy(service)
            counters.busy_time += service
            yield sim.timeout(service)
            record.proc_finished_at = sim.now
            if swarm.tracer.enabled:
                swarm.tracer.emit(Span(PROCESS, frame.seq,
                                       record.proc_started_at, sim.now,
                                       device_id=self.device_id,
                                       hop="worker:%s" % self.device_id,
                                       tenant=frame.tenant))
            counters.frames_completed += 1
            if frame.key is not None:
                self._observe_key(frame)
            self.current_seq = None
            self.current_frame = None
            self._send_result(frame, service)

    def key_store(self, tenant: str) -> InMemoryStateStore:
        """This device's keyed state for one tenant (created on demand)."""
        store = self.key_stores.get(tenant)
        if store is None:
            store = InMemoryStateStore()
            self.key_stores[tenant] = store
            self._aggregators[tenant] = WindowAggregator(store, window=1.0)
        return store

    def _observe_key(self, frame: _Frame) -> None:
        """Fold one processed frame into its key's windowed aggregate."""
        self.key_store(frame.tenant)
        self._aggregators[frame.tenant].observe(frame.key, 1.0,
                                                self.swarm.sim.now)

    def forget_depth(self, frame: _Frame) -> None:
        """Release one ingress slot from the frame's tenant account."""
        depth = self.tenant_depths.get(frame.tenant)
        if depth is None:
            return
        if depth <= 1:
            self.tenant_depths.pop(frame.tenant, None)
        else:
            self.tenant_depths[frame.tenant] = depth - 1

    def _send_result(self, frame: _Frame, processing_delay: float) -> None:
        """Queue the result (which doubles as the ACK) back to the sink."""
        swarm = self.swarm
        link = swarm.network.link(self.device_id)
        if not link.up:
            return
        radio = swarm.network.radio(self.device_id)
        result_bytes = swarm.config.workload.result_bytes + ACK_BYTES
        self.results_in_flight += 1
        delivered = radio.connection(link).send(result_bytes)

        def _on_delivered(_event) -> None:
            self.results_in_flight -= 1
            # A draining worker's results must still land: its link stays
            # up until the drain watcher sees the last one delivered.
            if (self.alive or self.draining) \
                    and swarm.network.link(self.device_id).up:
                swarm._deliver_result(frame, processing_delay)

        delivered.add_callback(_on_delivered)


class SwarmSimulation:
    """Builds and runs one swarm experiment from a :class:`SwarmConfig`."""

    def __init__(self, config: SwarmConfig) -> None:
        config.validate()
        self.config = config
        self.overload = config.overload_config()
        self.delivery = config.delivery_config()
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(self.sim)
        # Private counter registry so concurrent/sequential runs never
        # bleed sent/acked/lost counts into each other.
        self.registry = metrics_mod.MetricsRegistry()
        self.metrics = MetricsCollector(registry=self.registry)
        #: TraceSink: every engine process emits the same span
        #: vocabulary as the threaded runtime when sampling is on
        self.tracer = (Tracer(sample_rate=config.trace_sample_rate,
                              seed=config.seed, registry=self.registry)
                       if config.trace_sample_rate > 0.0 else NULL_TRACER)
        # One _TenantState per tenant pipeline; the single-tenant run is
        # exactly one state under the default ("") tenant, producing
        # byte-identical queue names, RNG streams and metric labels.
        self._states: Dict[str, _TenantState] = {}
        if config.tenants:
            for spec in config.tenants:
                self._states[spec.tenant_id] = self._make_tenant_state(spec)
        else:
            self._states[""] = self._make_tenant_state(None)
        default_state = next(iter(self._states.values()))
        #: compat aliases: the first tenant's control plane and sink
        #: machinery, which at N=1 IS the whole system
        self.controller: LrsController = default_state.controller
        self.reorder = default_state.reorder
        self._dedup = default_state.dedup
        self._egress = default_state.egress
        #: cross-tenant fair-share budgets for bounded worker ingress
        #: queues (None = single tenant, historical admission path)
        self._budgets: Optional[Dict[str, int]] = None
        self._priorities: Dict[str, int] = {}
        capacity = self.overload.queue_capacity
        if config.tenants and capacity is not None:
            self._budgets = multitenant_mod.tenant_budgets(
                list(config.tenants), capacity)
            self._priorities = {spec.tenant_id: spec.priority
                                for spec in config.tenants}
        self.nodes: Dict[str, _WorkerNode] = {}
        self._departed: Dict[str, _WorkerNode] = {}
        #: measured graceful-drain duration per departed device
        self.drain_durations: Dict[str, float] = {}
        # -- master-outage mirror (churn kill_master / restart_master):
        # while the master is down its source, dispatcher, control loop
        # and sink are all frozen; workers keep draining their ingress
        # and their finished results are buffered here, to be flushed
        # (ACKs included) when the successor master comes up — the
        # engine twin of workers processing autonomously and re-sending
        # into the recovered master's dedup window.
        self._master_down = False
        self._outage_results: List[Tuple[_Frame, float]] = []
        self.master_recoveries = 0
        #: devices whose link is administratively severed (churn
        #: ``partition`` events); every message involving them drops
        self._partitioned: set = set()
        self._all_profiles: Dict[str, DeviceProfile] = {}
        #: one sequence space for the whole swarm: FrameRecords are keyed
        #: by seq, so tenants must never collide
        self._next_seq = 0
        #: cumulative Zipf weights over the key universe; empty when the
        #: run is stateless (keyed off or key_count == 0)
        self._key_cum: List[float] = []
        keyed = config.keyed
        if keyed is not None and keyed.key_count > 0:
            total = 0.0
            for weight in zipf_weights(keyed.key_count, keyed.zipf_alpha):
                total += weight
                self._key_cum.append(total)
        self._build()

    def _make_tenant_state(self, spec) -> _TenantState:
        """Build one tenant's source/egress/controller/sink machinery.

        ``spec=None`` is the default single-tenant namespace: every
        name, stream and label matches the historical layout exactly.
        """
        config = self.config
        tenant_id = spec.tenant_id if spec is not None else ""
        workload = config.workload
        if spec is not None and spec.input_rate is not None:
            workload = replace(workload, input_rate=spec.input_rate)
        source_id = config.source.device_id
        if tenant_id:
            egress_name = "egress:%s@%s" % (source_id, tenant_id)
            edge_name = "edge:%s@%s" % (source_id, tenant_id)
            controller_name = "%s@%s" % (source_id, tenant_id)
            arrivals_stream = "arrivals:%s" % tenant_id
            keys_stream = "keys:%s" % tenant_id
        else:
            egress_name = "egress:%s" % source_id
            edge_name = "edge:%s" % source_id
            controller_name = source_id
            arrivals_stream = "arrivals"
            keys_stream = "keys"
        controller = engine_controller(
            self.sim, config.policy_config(seed=self.rngs.root_seed),
            registry=self.registry, name=controller_name,
            trace=self.tracer,
            redelivery=(self._redeliver_frame
                        if self.delivery.at_least_once else None),
            tenant=tenant_id)
        egress = Store(self.sim,
                       capacity=self._egress_capacity(workload),
                       name=egress_name)
        reorder = ReorderBuffer.for_rate(workload.input_rate,
                                         timespan=config.reorder_timespan)
        # Sink-side duplicate suppression: at-least-once replay may hand
        # the sink the same seq twice; only the first counts.
        dedup = (DedupWindow(self.delivery.dedup_window)
                 if self.delivery.at_least_once else None)
        return _TenantState(tenant_id=tenant_id, workload=workload,
                            controller=controller, egress=egress,
                            egress_name=egress_name, edge_name=edge_name,
                            reorder=reorder, dedup=dedup,
                            arrivals_stream=arrivals_stream,
                            keys_stream=keys_stream)

    def _egress_capacity(self, workload: Workload) -> Optional[int]:
        """Source egress capacity for one tenant's queue (None = unbounded)."""
        if self.config.source_queue_frames is None:
            return max(1, int(round(2.0 * workload.input_rate)))
        if self.config.source_queue_frames == UNBOUNDED_QUEUE:
            return None
        if self.config.source_queue_frames < 0:
            raise SimulationError("source queue length must be >= 0")
        return self.config.source_queue_frames

    # -- tenant routing ---------------------------------------------------
    def _controller_for(self, tenant: str) -> LrsController:
        state = self._states.get(tenant)
        return state.controller if state is not None else self.controller

    def _tenant_of(self, seq: int) -> str:
        record = self.metrics.frames.get(seq)
        return record.tenant if record is not None else ""

    # -- controller views (kept for tests/tools poking internals) --------
    @property
    def policy(self):
        return self.controller.policy

    @property
    def tracker(self):
        return self.controller.tracker

    @property
    def rate_meter(self):
        return self.controller.rate_meter

    @property
    def decisions(self) -> List[Tuple[float, PolicyDecision]]:
        return self.controller.decisions

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        config = self.config
        self.network.attach(config.source.device_id, rssi=RSSI_GOOD)
        for device_id, profile in sorted(config.workers.items()):
            rssi = config.rssi.get(device_id, RSSI_GOOD)
            if config.mobility is not None:
                rssi = config.mobility.initial_rssi(device_id, rssi)
            self._add_worker(profile, rssi)
        # Keyed routing: every tenant's control plane starts from the
        # same even partition of the key space over the initial pool
        # (later joiners take ownership only through migration).
        if config.keyed is not None and self.nodes:
            for state in self._states.values():
                state.controller.set_key_table(
                    KeyRangeTable.bootstrap(sorted(self.nodes)))
        # One source + dispatcher pair per tenant pipeline; the default
        # tenant keeps the historical bare process names.
        for tenant_id, state in self._states.items():
            suffix = ":%s" % tenant_id if tenant_id else ""
            self.sim.process(self._source(state), name="source" + suffix)
            self.sim.process(self._dispatch(state),
                             name="dispatcher" + suffix)
        self.sim.process(self._control(), name="control")
        for join in config.joins:
            self.sim.schedule(join.time, self._make_join(join))
        for leave in config.leaves:
            self.sim.schedule(leave.time,
                              lambda device_id=leave.device_id:
                              self._remove_worker(device_id))
        for event in config.background_events:
            self.sim.schedule(event.time,
                              lambda event=event:
                              self._set_background_load(event.device_id,
                                                        event.load))
        if config.mobility is not None:
            for when, device_id, rssi in config.mobility.events():
                self.sim.schedule(
                    when, lambda device_id=device_id, rssi=rssi:
                    self._set_rssi(device_id, rssi))
        for fault in config.faults:
            if isinstance(fault, DeviceKillEvent):
                self.sim.schedule(fault.time,
                                  lambda fault=fault:
                                  self._kill_worker(fault.device_id))
            elif isinstance(fault, DeviceReviveEvent):
                self.sim.schedule(fault.time,
                                  lambda fault=fault:
                                  self._revive_worker(fault.device_id,
                                                      fault.rssi))
            # Message drop/delay windows are consulted at delivery time.
        if config.churn is not None:
            # The same schedule the runtime chaos harness replays: kills
            # are silent crashes, leaves run the graceful-drain protocol,
            # joins/rejoins bring the device back at a good signal.
            for event in config.churn:
                if event.action == CHURN_KILL:
                    self.sim.schedule(event.time,
                                      lambda d=event.device_id:
                                      self._kill_worker(d))
                elif event.action == CHURN_LEAVE:
                    self.sim.schedule(event.time,
                                      lambda d=event.device_id:
                                      self._begin_drain(d))
                elif event.action == CHURN_KILL_MASTER:
                    self.sim.schedule(event.time, self._kill_master)
                elif event.action == CHURN_RESTART_MASTER:
                    self.sim.schedule(event.time, self._restart_master)
                elif event.action == CHURN_PARTITION:
                    self.sim.schedule(event.time,
                                      lambda d=event.device_id:
                                      self._partition_link(d))
                elif event.action == CHURN_HEAL:
                    self.sim.schedule(event.time,
                                      lambda d=event.device_id:
                                      self._heal_link(d))
                else:  # CHURN_JOIN / CHURN_REJOIN
                    self.sim.schedule(event.time,
                                      lambda d=event.device_id:
                                      self._revive_worker(d, RSSI_GOOD))

    def _make_join(self, join: JoinEvent):
        def _do_join() -> None:
            profile = self._profile_for(join.device_id)
            self._add_worker(profile, join.rssi)
        return _do_join

    def _profile_for(self, device_id: str) -> DeviceProfile:
        if device_id in self._all_profiles:
            return self._all_profiles[device_id]
        # Joining devices come from the paper's catalogue.
        from repro.profiles import device_profile
        return device_profile(device_id)

    def _add_worker(self, profile: DeviceProfile, rssi: float) -> None:
        device_id = profile.device_id
        if device_id in self.nodes:
            raise SimulationError("device %s already in the swarm" % device_id)
        self._all_profiles[device_id] = profile
        if device_id in self.network.device_ids():
            self.network.reattach(device_id, rssi=rssi)
        else:
            self.network.attach(device_id, rssi=rssi)
        background = self.config.background_load.get(device_id, 0.0)
        node = _WorkerNode(self, profile, background)
        self.nodes[device_id] = node
        self._departed.pop(device_id, None)
        self.metrics.device(device_id)
        # Pool-level membership: every tenant's control plane sees the
        # same worker set (one swarm, N pipelines).
        for state in self._states.values():
            state.controller.add_downstream(device_id)

    def _remove_worker(self, device_id: str) -> None:
        node = self.nodes.pop(device_id, None)
        if node is None:
            return
        node.alive = False
        node.left_at = self.sim.now
        self._departed[device_id] = node
        node.process.kill()
        self.network.detach(device_id)
        if node.current_seq is not None:
            self._drop_unless_retained(node.current_seq, DROP_DEVICE_LEFT)
        for frame in node.ingress.drain():
            self._drop_unless_retained(frame.seq, DROP_DEVICE_LEFT)
        # Unblock a dispatcher head-of-line-blocked on this connection.
        for _ in range(self.config.window_frames()):
            node.credits.try_put(True)
        # The upstream only notices the broken connection after a delay,
        # during which it keeps routing tuples into the void (Sec. VI-C).
        self.sim.schedule(self.config.detection_delay,
                          lambda: self._on_link_break(device_id))

    def _on_link_break(self, device_id: str) -> None:
        for state in self._states.values():
            state.controller.remove_downstream(device_id)

    # -- fault injection -------------------------------------------------
    def _kill_worker(self, device_id: str) -> None:
        """Silent crash: the upstream gets no notification of any kind.

        Tuples keep flowing to the dead device and into the void until
        loss accounting (expired in-flight entries) marks it dead —
        exercising the failure-detection path end to end.
        """
        node = self.nodes.pop(device_id, None)
        if node is None:
            return
        node.alive = False
        node.left_at = self.sim.now
        self._departed[device_id] = node
        node.process.kill()
        self.network.detach(device_id)
        if node.current_seq is not None:
            self._drop_unless_retained(node.current_seq, DROP_DEVICE_LEFT)
        for frame in node.ingress.drain():
            self._drop_unless_retained(frame.seq, DROP_DEVICE_LEFT)
        # Unblock a dispatcher head-of-line-blocked on this connection.
        for _ in range(self.config.window_frames()):
            node.credits.try_put(True)
        # Deliberately NO _on_link_break here: detection must come from
        # the tracker, not from a control-plane notification.

    def _revive_worker(self, device_id: str, rssi: float) -> None:
        """A killed device rejoining; probing resurrects its tracker state."""
        if device_id in self.nodes:
            return
        profile = self._profile_for(device_id)
        self._all_profiles[device_id] = profile
        if device_id in self.network.device_ids():
            self.network.reattach(device_id, rssi=rssi)
        else:
            self.network.attach(device_id, rssi=rssi)
        background = self.config.background_load.get(device_id, 0.0)
        node = _WorkerNode(self, profile, background)
        self.nodes[device_id] = node
        self._departed.pop(device_id, None)
        self.metrics.device(device_id)
        # No-op if still a member; a dead-marked member stays dead until
        # a probe's ACK resurrects it.
        for state in self._states.values():
            state.controller.add_downstream(device_id)

    # -- graceful drain (LEAVING protocol) -------------------------------
    def _begin_drain(self, device_id: str) -> None:
        """A device announces LEAVING: finish its backlog, lose nothing.

        The upstream stops routing new tuples there immediately
        (``redeliver=False``: queued work is *not* replayed elsewhere —
        the whole point of draining is that the leaver finishes it), the
        connection stays up, and a watcher detaches the device only once
        its queue, its in-flight window and its pending results are all
        empty.
        """
        node = self.nodes.get(device_id)
        if node is None or node.draining:
            return
        node.draining = True
        for state in self._states.values():
            state.controller.remove_downstream(device_id, redeliver=False)
        self.sim.process(self._drain_watch(node), name="drain:%s" % device_id)

    def _drain_watch(self, node: _WorkerNode):
        started = self.sim.now
        # Credits-full proves no frame is still in flight on the wire:
        # the dispatcher holds one credit per undelivered frame, and the
        # worker only returns it after reading the frame off its ingress.
        while (len(node.ingress) > 0 or node.current_seq is not None
               or len(node.credits) < node.window
               or node.results_in_flight > 0):
            yield self.sim.timeout(0.05)
        elapsed = self.sim.now - started
        self.registry.observe_histogram(metrics_mod.DRAIN_SECONDS, elapsed,
                                        device=node.device_id)
        self.drain_durations[node.device_id] = elapsed
        device_id = node.device_id
        # Keyed ranges leave WITH their state before the device detaches:
        # the drain-triggered move runs the same migrate path as a
        # hot-split, so churn- and load-driven migration never diverge.
        for state in self._states.values():
            table = state.controller.key_table
            if table is None:
                continue
            for key_range in table.ranges_owned_by(device_id):
                target = self._keyed_target(exclude=device_id)
                if target is None:
                    break
                yield from self._migrate_range(state, key_range, device_id,
                                               target, MOVE_DRAIN)
        if self.nodes.get(device_id) is not node:
            return  # superseded (e.g. rejoined under the same id)
        del self.nodes[device_id]
        node.alive = False
        node.left_at = self.sim.now
        self._departed[device_id] = node
        node.process.kill()
        self.network.detach(device_id)
        # No drops and no link-break notification: a graceful leave has
        # nothing left to lose by construction.

    # -- master failover (churn control-plane events) --------------------
    def _kill_master(self) -> None:
        """Master device crash: source, dispatch, control and sink freeze.

        Workers are autonomous: they keep draining their ingress queues
        and finishing work.  Their results are buffered (the runtime
        twin: results sent to a dead endpoint are retained upstream and
        redelivered later) and land when the successor comes up.
        """
        self._master_down = True

    def _restart_master(self) -> None:
        """Successor master up: flush buffered results, sweep, redeliver.

        The flushed results carry their ACKs into the controller and
        their seqs into the sink dedup window, exactly like the threaded
        runtime's re-imported retention being absorbed on redelivery;
        the forced control round then sweeps whatever is still pending
        so at-least-once replay resumes immediately.
        """
        if not self._master_down:
            return
        self._master_down = False
        self.master_recoveries += 1
        self.registry.increment(metrics_mod.MASTER_RECOVERIES_TOTAL,
                                device=self.config.source.device_id)
        pending, self._outage_results = self._outage_results, []
        for frame, processing_delay in pending:
            self._finish_result_delivery(frame, processing_delay)
        for state in self._states.values():
            state.controller.update(self.sim.now)

    def _partition_link(self, link_id: str) -> None:
        """Sever the link named ``sender>target`` (churn ``partition``).

        The engine's network is hub-and-spoke through the source radio,
        so severing a link isolates its non-source endpoint: every
        message involving that device drops until the matching ``heal``.
        """
        for device_id in self._link_devices(link_id):
            self._partitioned.add(device_id)

    def _heal_link(self, link_id: str) -> None:
        for device_id in self._link_devices(link_id):
            self._partitioned.discard(device_id)

    def _link_devices(self, link_id: str) -> List[str]:
        sender_id, sep, target_id = link_id.partition(">")
        if not sep or not sender_id or not target_id:
            raise SimulationError(
                "partition/heal events need a 'sender>target' link id,"
                " got %r" % link_id)
        source_id = self.config.source.device_id
        return [device_id for device_id in (sender_id, target_id)
                if device_id != source_id]

    # -- at-least-once redelivery ----------------------------------------
    def _redeliver_frame(self, seq: int, destination: str, frame: _Frame,
                         attempt: int) -> None:
        """Controller redelivery hook: put the replayed frame on the air.

        The controller already re-booked the send (pending entry, replay
        retention with the bumped attempt); this models the physical
        re-transmission.  If the target is unusable the entry simply
        stays retained and the next stale sweep tries again — returning
        here is never a loss.

        A batched retention's context is a tuple of frames (one replay
        entry covers the whole batch): re-transmit every member; the
        sink's dedup window suppresses any that already landed.
        """
        if isinstance(frame, tuple):
            for member in frame:
                self._redeliver_frame(member.seq, destination, member, attempt)
            return
        node = self.nodes.get(destination)
        if node is None or not node.alive or node.draining:
            return
        link = self.network.link(destination)
        if not link.up:
            return
        record = self.metrics.frame(frame.seq, frame.created_at)
        record.device_id = destination
        record.tx_started_at = self.sim.now
        # Redeliveries bypass the socket-window credits: the replay path
        # is a fresh control-plane-initiated send, and ``try_put``
        # saturates at the window size, so the eventual credit return
        # cannot overfill the store.
        source_radio = self.network.radio(self.config.source.device_id)
        delivered = source_radio.connection(link).send(
            self.config.workload.frame_bytes)
        delivered.add_callback(
            lambda _event, frame=frame, destination=destination:
            self._on_frame_delivered(frame, destination))

    def _drop_unless_retained(self, seq: int, reason: str) -> None:
        """Charge a drop only when the replay buffer cannot recover it.

        In at-least-once mode a tuple that is still retained upstream is
        recoverable — redelivery will run it somewhere else — so marking
        it dropped would double-book the failure.
        """
        if self._controller_for(self._tenant_of(seq)).replay_holds(seq):
            return
        self.metrics.drop(seq, reason)

    # -- overload protection ---------------------------------------------
    def _shed(self, seq: int, drop_reason: str, shed_reason: str,
              queue: str, tenant: Optional[str] = None) -> None:
        """Record one overload shed in both accounting systems.

        The frame trace gets a drop record (*drop_reason*, the
        simulator's vocabulary) and the shared counter registry gets a
        ``swing_tuples_shed_total{reason=...}`` increment (*shed_reason*,
        the runtime's vocabulary) — so both substrates report sheds
        through the same counter family.  *tenant* routes the replay
        release to the owning tenant's controller and labels the shed
        counter (``None`` = resolve from the frame record; the default
        tenant stays label-free).

        Overload protection wins over delivery guarantees: a shed tuple
        is released from the replay buffer (counted as an eviction) so
        at-least-once never resurrects work the system chose to drop.
        """
        if tenant is None:
            tenant = self._tenant_of(seq)
        self._controller_for(tenant).release_replay(seq, EVICT_SHED)
        self.metrics.drop(seq, drop_reason)
        labels = {"reason": shed_reason, "queue": queue}
        if tenant:
            labels["tenant"] = tenant
        self.registry.increment(metrics_mod.SHED_TOTAL, **labels)
        if self.tracer.enabled:
            now = self.sim.now
            device = queue.split(":", 1)[-1]
            self.tracer.emit(Span(SHED, seq, now, now, device_id=device,
                                  hop=queue, detail=shed_reason,
                                  tenant=tenant))

    def _message_fault(self, device_id: str) -> Tuple[bool, float]:
        """(drop?, extra delay) for a message involving *device_id* now."""
        if device_id in self._partitioned:
            return True, 0.0
        now = self.sim.now
        extra_delay = 0.0
        for fault in self.config.faults:
            if isinstance(fault, MessageDropEvent) \
                    and fault.active(now, device_id):
                if self.rngs.stream("faults").random() < fault.drop_prob:
                    return True, 0.0
            elif isinstance(fault, MessageDelayEvent) \
                    and fault.active(now, device_id):
                extra_delay += fault.extra_delay
        return False, extra_delay

    def _set_rssi(self, device_id: str, rssi: float) -> None:
        self.network.link(device_id).set_rssi(rssi)

    def _set_background_load(self, device_id: str, load: float) -> None:
        node = self.nodes.get(device_id)
        if node is not None:
            node.cpu.set_background_load(load)

    # -- keyed state & migration -----------------------------------------
    def _draw_key(self, state: _TenantState) -> Optional[str]:
        """One seeded Zipf draw from this tenant's key universe."""
        if not self._key_cum:
            return None
        draw = self.rngs.stream(state.keys_stream).random() \
            * self._key_cum[-1]
        index = min(bisect_left(self._key_cum, draw),
                    len(self._key_cum) - 1)
        return "user-%d" % index

    def _keyed_target(self, exclude: str) -> Optional[str]:
        """Least-loaded live worker to receive a migrating range."""
        candidates = [(len(node.ingress), device_id)
                      for device_id, node in sorted(self.nodes.items())
                      if device_id != exclude and node.alive
                      and not node.draining]
        if not candidates:
            return None
        return min(candidates)[1]

    def _migrate_range(self, state: _TenantState, key_range: KeyRange,
                       source_id: str, target_id: str, reason: str):
        """Engine process: pause → drain → snapshot → install → flip.

        The churn-driven (``drain``) and load-driven (``hot_split``)
        moves both run through here — one migration code path, mirroring
        :func:`repro.runtime.migration.migrate_range` step for step.
        Pausing parks the range's new tuples unassigned in the replay
        buffer; resume's sweep re-places them on the new owner, so under
        at-least-once delivery the handoff loses nothing.
        """
        controller = state.controller
        started = self.sim.now
        table = controller.key_table
        if table is None or table.is_paused(key_range) \
                or table.owner(key_range) != source_id:
            # Another migration already has this range (a drain-watch
            # racing a hot-split); two concurrent handoffs of one range
            # end with the loser's copy stranded on a non-owner.
            return
        controller.pause_range(key_range)
        try:
            yield from self._drain_range(source_id, key_range)
            if table.owner(key_range) != source_id:
                return  # re-owned while draining; nothing left to move
            target = self.nodes.get(target_id)
            if target is None or not target.alive or target.draining:
                # The chosen receiver churned away while the range was
                # draining; flipping ownership to a corpse would strand
                # the state on the old owner (split-brain).  Re-target,
                # or leave the range where it is and let the next
                # control round reconcile.
                fallback = self._keyed_target(exclude=source_id)
                if fallback is None:
                    return
                target_id = fallback
            self._transfer_state(state, key_range, source_id, target_id)
            controller.move_range(key_range, target_id, reason=reason)
        finally:
            controller.resume_range(key_range)
        self.registry.observe_histogram(metrics_mod.STATE_MIGRATION_SECONDS,
                                        self.sim.now - started,
                                        edge=state.edge_name)

    def _drain_range(self, device_id: str, key_range: KeyRange):
        """Wait until the old owner holds no in-flight frame of the range.

        Pausing already stopped new sends; whatever is queued or on the
        wire clears within a few poll ticks.  Two consecutive quiet
        polls guard against a frame landing between checks.
        """
        quiet = 0
        while quiet < 2:
            node = self.nodes.get(device_id)
            if node is None or not node.alive:
                return
            busy = any(frame.key_hash is not None
                       and key_range.contains(frame.key_hash)
                       for frame in node.ingress._items)
            current = node.current_frame
            if current is not None and current.key_hash is not None \
                    and key_range.contains(current.key_hash):
                busy = True
            quiet = 0 if busy else quiet + 1
            yield self.sim.timeout(0.05)

    def _transfer_state(self, state: _TenantState, key_range: KeyRange,
                        source_id: str, target_id: str) -> int:
        """Ship one range's keyed state through the hardened codec.

        Encode→decode round-trips the real wire frame even though both
        ends live in one process: the simulator exercises exactly the
        bytes the threaded runtime ships between workers.
        """
        source = self.nodes.get(source_id) or self._departed.get(source_id)
        target = self.nodes.get(target_id)
        if source is None or target is None:
            return 0
        store = source.key_stores.get(state.tenant_id)
        if store is None:
            return 0
        frame = encode_state_snapshot(snapshot_range(
            store, state.tenant_id, "agg", key_range))
        snapshot = decode_state_snapshot(frame)
        target_store = target.key_store(state.tenant_id)
        try:
            target_store.install(snapshot.entries)
        except RuntimeStateError:
            # A revive/re-drain cycle can leave a stale copy behind; the
            # migrating snapshot is the authoritative one.
            for key, value in snapshot.entries:
                target_store.store(key, dict(value))
        # Hand-off, not copy: the paused+drained range can take no more
        # writes at the source, so the snapshot is exact — discard it or
        # the old owner keeps a diverging replica (split-brain state).
        for key, _value in snapshot.entries:
            store.delete(key)
        return len(snapshot.entries)

    def _keyed_round(self, state: _TenantState) -> None:
        """One keyed control round: crash reconciliation, then hot-split.

        A range owned by a device no longer in the swarm is re-owned by
        a survivor WITHOUT a snapshot — a crash loses per-key state by
        definition (the guarantee matrix's ``crash`` row); the parked
        and expiring tuples then redeliver to the new owner.  A hot
        range is split in place and its upper half migrated to the
        least-loaded worker; if the heat was in the lower half the
        detector re-fires next round and halves it again — geometric
        convergence toward isolating the hot keys.
        """
        controller = state.controller
        table = controller.key_table
        if table is None:
            return
        for key_range, owner in table.ranges():
            if owner in self.nodes or table.is_paused(key_range):
                continue
            target = self._keyed_target(exclude=owner)
            if target is not None:
                controller.move_range(key_range, target, reason=MOVE_CRASH)
        found = controller.hot_range(self.sim.now)
        if found is None:
            return
        hot, _rate = found
        owner = table.owner(hot)
        if owner is None or owner not in self.nodes:
            return
        target = self._keyed_target(exclude=owner)
        if target is None:
            return
        _lower, upper = controller.split_range(hot)
        self.sim.process(
            self._migrate_range(state, upper, owner, target, MOVE_HOT_SPLIT),
            name="migrate:%s" % (state.tenant_id or "-"))

    # -- processes -------------------------------------------------------
    def _source(self, state: _TenantState):
        gaps = state.workload.interarrival_times(
            self.rngs.stream(state.arrivals_stream))
        overload = self.overload
        tenant = state.tenant_id
        controller = state.controller
        egress = state.egress
        egress_name = state.egress_name
        while True:
            if self._master_down:
                # The source lives on the master: a crashed master's
                # pipeline captures nothing until the successor is up.
                yield self.sim.timeout(0.05)
                continue
            seq = self._next_seq
            self._next_seq += 1
            now = self.sim.now
            self.metrics.frame(seq, now, tenant=tenant)
            if overload.enabled:
                # Source admission control: refuse doomed work before
                # spending capture/encode/transmit effort on it.
                reason = overload_mod.source_admission(
                    len(egress), controller.unsatisfiable(),
                    overload)
                if reason is not None:
                    self._shed(seq, DROP_BACKPRESSURE, reason,
                               queue=egress_name, tenant=tenant)
                    yield self.sim.timeout(next(gaps))
                    continue
            # Lambda is observed at frame creation: a real-time source
            # measures its own capture rate, not the dispatch rate.
            controller.observe_arrival(now)
            key = self._draw_key(state)
            frame = _Frame(seq=seq, created_at=now,
                           deadline=overload.deadline_for(now),
                           tenant=tenant, key=key,
                           key_hash=hash_key(key)
                           if key is not None else None,
                           nbytes=self.config.workload.frame_bytes)
            if overload.enabled and egress.capacity is not None:
                decision = overload_mod.admission(
                    len(egress), egress.capacity,
                    overload.drop_policy)
                if decision == overload_mod.EVICT_OLDEST:
                    victim = egress.try_get()
                    if victim is not None:
                        self._shed(victim.seq, DROP_SOURCE_QUEUE,
                                   overload_mod.REASON_QUEUE_FULL,
                                   queue=egress_name, tenant=tenant)
                elif decision != overload_mod.ADMIT:
                    # A real-time sensor cannot block on its own queue:
                    # REJECT and WAIT both shed the newest frame here.
                    self._shed(seq, DROP_SOURCE_QUEUE,
                               overload_mod.REASON_QUEUE_FULL,
                               queue=egress_name, tenant=tenant)
                    yield self.sim.timeout(next(gaps))
                    continue
                egress.try_put(frame)
            elif not egress.try_put(frame):
                self.metrics.drop(seq, DROP_SOURCE_QUEUE)
            yield self.sim.timeout(next(gaps))

    def _dispatch(self, state: _TenantState):
        config = self.config
        source_radio = self.network.radio(config.source.device_id)
        tenant = state.tenant_id
        controller = state.controller
        egress = state.egress
        edge_name = state.edge_name
        batching = config.batching_config()
        while True:
            if self._master_down:
                yield self.sim.timeout(0.05)
                continue
            if batching.enabled:
                frames = yield from collect_batch(self.sim, egress,
                                                  batching)
            else:
                frame = yield egress.get()
                frames = [frame]
            live = []
            for frame in frames:
                if frame.expired(self.sim.now):
                    # Shed at egress, before any transmission cost is
                    # paid (mirrors the runtime dispatcher's
                    # expired-shed).
                    self._shed(frame.seq, DROP_EXPIRED,
                               overload_mod.REASON_EXPIRED, queue=edge_name,
                               tenant=tenant)
                    continue
                record = self.metrics.frame(frame.seq, frame.created_at)
                record.dispatched_at = self.sim.now
                live.append(frame)
            if not live:
                continue
            # The controller routes and records the send (the paper's
            # timestamp is attached when the tuple leaves the upstream
            # unit) BEFORE the liveness check in _transmit: the upstream
            # cannot know the device is gone, and the resulting expiry is
            # exactly how a silent departure shows up in loss accounting.
            if not batching.enabled:
                destination = controller.dispatch(
                    live[0].seq, context=live[0], deadline=live[0].deadline,
                    key_hash=live[0].key_hash)
            else:
                # One decision per closed batch; the replay context is
                # the member tuple(s) so redelivery can re-send each
                # frame.  A flush of one degenerates to plain dispatch
                # inside the controller (decision parity with unbatched).
                deadlines = [f.deadline for f in live
                             if f.deadline is not None]
                destination = controller.dispatch_batch(
                    [f.seq for f in live],
                    context=live[0] if len(live) == 1 else tuple(live),
                    deadline=min(deadlines) if deadlines else None)
            if destination is None:
                for frame in live:
                    self._drop_unless_retained(frame.seq, DROP_LINK_DOWN)
                continue
            for frame in live:
                yield from self._transmit(frame, destination, source_radio,
                                          edge_name)

    def _transmit(self, frame: _Frame, destination: str, source_radio,
                  edge_name: str):
        """Push one routed frame onto *destination*'s connection.

        The windowed-socket transmit path shared by per-tuple and
        batched dispatch: batching amortizes the control plane (one
        decision, one pending entry), while the air link still carries
        the same frames back to back.
        """
        config = self.config
        record = self.metrics.frame(frame.seq, frame.created_at)
        record.device_id = destination
        node = self.nodes.get(destination)
        if node is None or not node.alive:
            # Routed to a device that already left: the tuple is lost
            # (unless the replay buffer still retains it).
            self._drop_unless_retained(frame.seq, DROP_LINK_DOWN)
            return
        # Blocking socket write: wait for a window slot on this
        # connection, head-of-line blocking every frame behind us.
        yield node.credits.get()
        if not node.alive:
            self._drop_unless_retained(frame.seq, DROP_DEVICE_LEFT)
            return
        record.tx_started_at = self.sim.now
        if self.tracer.enabled:
            # Sender-side wait, frame creation to first byte on the
            # wire (the "edge:" hop prefix files it under the
            # transmission component, exactly the analytic
            # decomposition's source-queue charge).
            self.tracer.emit(Span(
                QUEUE_WAIT, frame.seq, frame.created_at, self.sim.now,
                device_id=config.source.device_id, hop=edge_name,
                tenant=frame.tenant))
        link = self.network.link(destination)
        delivered = source_radio.connection(link).send(
            config.workload.frame_bytes)
        delivered.add_callback(
            lambda _event, frame=frame, destination=destination:
            self._on_frame_delivered(frame, destination))

    def _return_credit(self, destination: str) -> None:
        """Hand back the socket-window slot of a frame that died in flight.

        The worker normally frees the slot when it reads the frame off its
        ingress; a frame dropped between send and read would otherwise
        shrink the connection's window permanently — a long enough fault
        window used to leak every credit and wedge the dispatcher for the
        rest of the run.  ``try_put`` saturates at the window size, so
        connections already refilled by a kill are unaffected.
        """
        node = self.nodes.get(destination) or self._departed.get(destination)
        if node is not None:
            node.credits.try_put(True)

    def _on_frame_delivered(self, frame: _Frame, destination: str) -> None:
        dropped, extra_delay = self._message_fault(destination)
        if dropped:
            # Faulted away in flight; the tracker's pending entry will
            # expire and charge the loss to this destination.
            self._drop_unless_retained(frame.seq, DROP_LINK_DOWN)
            self._return_credit(destination)
            return
        if extra_delay > 0.0:
            self.sim.schedule(extra_delay,
                              lambda: self._finish_frame_delivery(
                                  frame, destination))
            return
        self._finish_frame_delivery(frame, destination)

    def _finish_frame_delivery(self, frame: _Frame, destination: str) -> None:
        record = self.metrics.frame(frame.seq, frame.created_at)
        node = self.nodes.get(destination)
        link = self.network.link(destination)
        if node is None or not node.alive or not link.up:
            # Delivered into the void: the device left mid-flight.
            self._drop_unless_retained(frame.seq, DROP_DEVICE_LEFT)
            self._return_credit(destination)
            return
        record.tx_finished_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(Span(TRANSMIT, frame.seq,
                                  record.tx_started_at, self.sim.now,
                                  device_id=destination,
                                  hop="link:%s" % destination))
        counters = self.metrics.device(destination)
        counters.frames_received += 1
        counters.bytes_received += self.config.workload.frame_bytes
        self._ingress_put(node, frame)

    def _ingress_put(self, node: _WorkerNode, frame: _Frame) -> None:
        """Admit one delivered frame into a worker's (bounded) ingress.

        The shared :func:`~repro.core.overload.admission` function
        decides; a shed frame must hand its socket-window credit back or
        the connection's in-flight window would shrink permanently.
        """
        ingress = node.ingress
        queue_name = "ingress:%s" % node.device_id
        if self._budgets is not None and ingress.capacity is not None:
            self._ingress_put_fair(node, frame, ingress, queue_name)
            return
        decision = overload_mod.admission(len(ingress), ingress.capacity,
                                          self.overload.drop_policy)
        if decision == overload_mod.EVICT_OLDEST:
            victim = ingress.try_get()
            if victim is not None:
                self._shed(victim.seq, DROP_QUEUE_FULL,
                           overload_mod.REASON_QUEUE_FULL, queue=queue_name)
                node.credits.try_put(True)  # the victim's window slot
            ingress.try_put(frame)
        elif decision == overload_mod.REJECT:
            self._shed(frame.seq, DROP_QUEUE_FULL,
                       overload_mod.REASON_QUEUE_FULL, queue=queue_name)
            node.credits.try_put(True)  # the newcomer's window slot
        elif decision == overload_mod.WAIT:
            # Backpressure: park the frame on the store's putter queue.
            # The producer side is already bounded by socket credits, so
            # the number of parked putters can never exceed the window.
            ingress.put(frame)
        else:
            ingress.try_put(frame)

    def _ingress_put_fair(self, node: _WorkerNode, frame: _Frame,
                          ingress: Store, queue_name: str) -> None:
        """Cross-tenant fair-share admission at a bounded worker ingress.

        The shared :func:`~repro.core.multitenant.fair_admission`
        decides; an over-budget tenant sheds its own newest tuple, an
        under-budget arrival evicts the most-over-budget tenant's oldest
        one.  Per-tenant occupancy lives in ``node.tenant_depths``.
        """
        decision = multitenant_mod.fair_admission(
            frame.tenant, node.tenant_depths, self._budgets,
            ingress.capacity, self._priorities)
        if decision.action == overload_mod.EVICT_OLDEST:
            victim = ingress.take_first(
                lambda queued: queued.tenant == decision.victim)
            if victim is not None:
                node.forget_depth(victim)
                self._shed(victim.seq, DROP_QUEUE_FULL,
                           overload_mod.REASON_QUEUE_FULL, queue=queue_name,
                           tenant=victim.tenant)
                node.credits.try_put(True)  # the victim's window slot
        elif decision.action == overload_mod.REJECT:
            self._shed(frame.seq, DROP_QUEUE_FULL,
                       overload_mod.REASON_QUEUE_FULL, queue=queue_name,
                       tenant=frame.tenant)
            node.credits.try_put(True)  # the newcomer's window slot
            return
        if ingress.try_put(frame):
            node.tenant_depths[frame.tenant] = (
                node.tenant_depths.get(frame.tenant, 0) + 1)
        else:
            # Eviction found no victim in the queue (it was all in
            # flight): shed the newcomer rather than block the radio.
            self._shed(frame.seq, DROP_QUEUE_FULL,
                       overload_mod.REASON_QUEUE_FULL, queue=queue_name,
                       tenant=frame.tenant)
            node.credits.try_put(True)

    def _control(self):
        # Eager trigger: the engine has a cheap periodic process, so the
        # policy round runs on schedule even through idle stretches (the
        # threaded runtime instead piggybacks ``maybe_update`` on
        # dispatch).  The round itself — expiry sweep, stats snapshot,
        # policy update, decision log — is the controller's.
        while True:
            yield self.sim.timeout(self.config.control_interval)
            if self._master_down:
                continue  # no control plane while the master is down
            for state in self._states.values():
                state.controller.update(self.sim.now)
                self._keyed_round(state)
            self._export_queue_depths()

    def _export_queue_depths(self) -> None:
        """Refresh the ``swing_queue_depth`` gauges (one per queue)."""
        for state in self._states.values():
            self.registry.set_gauge(metrics_mod.QUEUE_DEPTH,
                                    len(state.egress),
                                    queue=state.egress_name)
        for device_id, node in self.nodes.items():
            self.registry.set_gauge(metrics_mod.QUEUE_DEPTH,
                                    len(node.ingress),
                                    queue="ingress:%s" % device_id)

    # -- sink --------------------------------------------------------------
    def _deliver_result(self, frame: _Frame, processing_delay: float) -> None:
        if self._master_down:
            # The sink lives on the master: results finished during the
            # outage are buffered (the work is NOT lost) and flushed into
            # the successor's dedup window at restart.
            self._outage_results.append((frame, processing_delay))
            return
        record = self.metrics.frame(frame.seq, frame.created_at)
        if record.device_id:
            dropped, extra_delay = self._message_fault(record.device_id)
            if dropped:
                # The result (and its piggybacked ACK) never arrives: the
                # upstream will count the tuple as lost when it expires
                # (and, in at-least-once mode, redeliver the tuple).
                self._drop_unless_retained(frame.seq, DROP_LINK_DOWN)
                return
            if extra_delay > 0.0:
                self.sim.schedule(
                    extra_delay,
                    lambda: self._finish_result_delivery(frame,
                                                         processing_delay))
                return
        self._finish_result_delivery(frame, processing_delay)

    def _finish_result_delivery(self, frame: _Frame,
                                processing_delay: float) -> None:
        now = self.sim.now
        record = self.metrics.frame(frame.seq, frame.created_at)
        state = self._states.get(frame.tenant)
        if state is None:
            state = next(iter(self._states.values()))
        # The hint lets backlog-driven policies (JSQ) decrement their
        # queue estimate even when the pending entry already expired.
        state.controller.on_ack(frame.seq, processing_delay=processing_delay,
                                now=now,
                                downstream_hint=record.device_id or None)
        sink_name = "sink:%s" % self.config.source.device_id
        if state.dedup is not None and state.dedup.seen(frame.seq):
            # At-least-once replay delivered this seq more than once; the
            # ACK above still counts (the worker did the work) but the
            # sink must not double-deliver it.
            labels = {"queue": sink_name}
            if frame.tenant:
                labels["tenant"] = frame.tenant
            self.registry.increment(metrics_mod.DEDUPED_TOTAL, **labels)
            return
        if frame.expired(now):
            # Computed, transmitted back — and still too late.  The sink
            # refuses to deliver a stale result (the ACK above already
            # credited the worker: it did the work).
            self._shed(frame.seq, DROP_STALE, overload_mod.REASON_EXPIRED,
                       queue=sink_name, tenant=frame.tenant)
            return
        record.sink_arrived_at = now
        for playback in state.reorder.offer(frame.seq, now):
            played = self.metrics.frames.get(playback.seq)
            if played is not None:
                played.played_at = playback.played_at

    # -- running -----------------------------------------------------------
    def run(self) -> "SwarmResult":
        self.sim.run(self.config.duration)
        for state in self._states.values():
            for playback in state.reorder.flush(self.config.duration):
                record = self.metrics.frames.get(playback.seq)
                if record is not None:
                    record.played_at = playback.played_at
        self._finalize_counters()
        return SwarmResult.from_simulation(self)

    def pending_source_frames(self) -> Dict[str, List[int]]:
        """Seqs still queued at each tenant's source egress, per tenant.

        Everything past the egress queue is retained by the replay
        buffer until its ACK, so this is the one in-flight population a
        conservation audit cannot see through ``replay_depth_end`` —
        the verify adapter charges these to the in-flight term of
        ``delivered + dropped + evicted + retained + queued == emitted``.
        """
        return {tenant: sorted(frame.seq
                               for frame in state.egress.items())
                for tenant, state in self._states.items()
                if len(state.egress.items())}

    def _finalize_counters(self) -> None:
        end = self.config.duration
        for device_id in self._all_profiles:
            counters = self.metrics.device(device_id)
            node = self.nodes.get(device_id) or self._departed.get(device_id)
            if node is None:
                continue
            left = node.left_at if node.left_at is not None else end
            counters.participating_time = max(0.0, left - node.joined_at)

    def worker_profiles(self) -> Dict[str, DeviceProfile]:
        return dict(self._all_profiles)


@dataclass
class SwarmResult:
    """Everything the paper's figures need from one experiment run."""

    config: SwarmConfig
    metrics: MetricsCollector
    energy: EnergyReport
    throughput: float
    latency: Optional[LatencyStats]
    decisions: List[Tuple[float, PolicyDecision]]
    reorder: ReorderBuffer
    frames_lost: int
    #: the run's private counter registry (sent/acked/lost/marked-dead…)
    registry: Optional[metrics_mod.MetricsRegistry] = None
    #: per-downstream lost-tuple counts from the upstream's ACK tracker
    lost_by_downstream: Dict[str, int] = field(default_factory=dict)
    #: downstreams the tracker had marked dead when the run ended
    dead_downstreams: List[str] = field(default_factory=list)
    #: overload sheds by reason (expired / queue_full / backpressure)
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: high-water queue depth per named queue over the whole run
    max_queue_depths: Dict[str, int] = field(default_factory=dict)
    #: sampled spans recorded during the run (empty when tracing is off)
    trace: List[Span] = field(default_factory=list)
    #: at-least-once replay: total redeliveries attempted by the upstream
    redelivered: int = 0
    #: sink-side duplicate deliveries suppressed by the dedup window
    deduped: int = 0
    #: replay-buffer evictions by reason (capacity/bytes/attempts/…)
    replay_evicted_by_reason: Dict[str, int] = field(default_factory=dict)
    #: tuples still retained (un-ACKed) when the run ended
    replay_depth_end: int = 0
    #: measured graceful-drain duration per device that left via LEAVING
    drain_seconds: Dict[str, float] = field(default_factory=dict)
    #: overload sheds per tenant label (empty at N=1: the default tenant
    #: emits no ``tenant=`` label)
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: master crash→recovery cycles completed during the run
    master_recoveries: int = 0
    #: key-range ownership moves by reason (hot_split / drain / crash)
    key_moves_by_reason: Dict[str, int] = field(default_factory=dict)
    #: hot ranges the detector flagged over the run
    hot_ranges_detected: int = 0
    #: range splits performed across every tenant's table
    key_splits: int = 0
    #: end-of-run keyed-state audit for the verification subsystem:
    #: final routing tables plus every live store's keys, so the
    #: invariant checker can prove no key is duplicated or orphaned
    #: across migrations (None when the run is not keyed)
    keyed_audit: Optional[Dict[str, object]] = None

    @classmethod
    def from_simulation(cls, swarm: SwarmSimulation) -> "SwarmResult":
        config = swarm.config
        duration = config.duration
        metrics = swarm.metrics
        profiles = swarm.worker_profiles()
        overheads = {device_id: profile.framework_overhead
                     for device_id, profile in profiles.items()}
        cpu = metrics.per_device_cpu_utilization(duration, overheads=overheads)
        transferred = {}
        for device_id in profiles:
            counters = metrics.device(device_id)
            transferred[device_id] = (
                counters.bytes_received
                + counters.frames_completed
                * (config.workload.result_bytes + ACK_BYTES))
        estimator = PowerEstimator(profiles)
        energy = estimator.estimate(cpu, transferred, duration)
        max_depths = {state.egress_name: state.egress.max_len
                      for state in swarm._states.values()}
        for device_id in profiles:
            node = (swarm.nodes.get(device_id)
                    or swarm._departed.get(device_id))
            if node is not None:
                max_depths["ingress:%s" % device_id] = node.ingress.max_len
        # Pool-wide rollups across every tenant's control plane (at N=1
        # these are exactly the single controller's numbers).
        lost_by_downstream: Dict[str, int] = {}
        dead: set = set()
        replay_depth = 0
        for state in swarm._states.values():
            for device_id, lost in \
                    state.controller.tracker.lost_by_downstream().items():
                lost_by_downstream[device_id] = (
                    lost_by_downstream.get(device_id, 0) + lost)
            for device_id, stat in state.controller.tracker.stats().items():
                if not stat.alive:
                    dead.add(device_id)
            replay_depth += state.controller.replay_depth()
        keyed_audit: Optional[Dict[str, object]] = None
        if config.keyed is not None:
            tables = {tenant_key: [list(entry) for entry in
                                   state.controller.key_table.snapshot()]
                      for tenant_key, state in swarm._states.items()
                      if state.controller.key_table is not None}
            stores: Dict[str, Dict[str, List[str]]] = {}
            for device_id, node in swarm.nodes.items():
                per_tenant = {tenant: sorted(store.keys())
                              for tenant, store in node.key_stores.items()
                              if store.keys()}
                if per_tenant:
                    stores[device_id] = per_tenant
            keyed_audit = {"tables": tables, "stores": stores}
        return cls(
            config=config,
            metrics=metrics,
            energy=energy,
            throughput=metrics.throughput(duration),
            latency=metrics.latency_stats(),
            decisions=list(swarm.decisions),
            reorder=swarm.reorder,
            frames_lost=metrics.loss_count(),
            registry=swarm.registry,
            lost_by_downstream=lost_by_downstream,
            dead_downstreams=sorted(dead),
            shed_by_reason=swarm.registry.values_by_label(
                metrics_mod.SHED_TOTAL, "reason"),
            max_queue_depths=max_depths,
            trace=swarm.tracer.spans(),
            redelivered=sum(swarm.registry.values_by_label(
                metrics_mod.REDELIVERED_TOTAL, "downstream").values()),
            deduped=sum(swarm.registry.values_by_label(
                metrics_mod.DEDUPED_TOTAL, "queue").values()),
            replay_evicted_by_reason=swarm.registry.values_by_label(
                metrics_mod.REPLAY_EVICTED_TOTAL, "reason"),
            replay_depth_end=replay_depth,
            drain_seconds=dict(swarm.drain_durations),
            shed_by_tenant=swarm.registry.values_by_label(
                metrics_mod.SHED_TOTAL, "tenant"),
            master_recoveries=swarm.master_recoveries,
            key_moves_by_reason=swarm.registry.values_by_label(
                metrics_mod.KEY_RANGE_MOVES_TOTAL, "reason"),
            hot_ranges_detected=sum(swarm.registry.values_by_label(
                metrics_mod.HOT_KEYS_DETECTED_TOTAL, "edge").values()),
            key_splits=sum(
                state.controller.key_table.splits
                for state in swarm._states.values()
                if state.controller.key_table is not None),
            keyed_audit=keyed_audit,
        )

    # -- convenience views used by the benchmark harness -------------------
    @property
    def duration(self) -> float:
        return self.config.duration

    def cpu_utilization(self) -> Dict[str, float]:
        return self.metrics.per_device_cpu_utilization(self.duration)

    def input_rates(self) -> Dict[str, float]:
        return self.metrics.per_device_input_rate(self.duration)

    def fps_per_watt(self) -> float:
        return self.energy.fps_per_watt(self.throughput)

    def throughput_series(self, bin_width: float = 1.0) -> List[float]:
        return self.metrics.throughput_series(self.duration, bin_width)

    def meets_input_rate(self, tolerance: float = 0.10) -> bool:
        return self.throughput >= self.config.workload.input_rate * (1.0 - tolerance)

    def steady_state_latency(self, warmup: float = 5.0) -> Optional[LatencyStats]:
        """Latency stats excluding frames created during the warm-up."""
        return self.metrics.latency_stats(after=warmup)

    def end_to_end_losses(self, horizon: Optional[float] = None) -> List[int]:
        """Seqs created before *horizon* that never reached the sink.

        A frame counts as an end-to-end loss only when it neither arrived
        at the sink nor was deliberately dropped/shed (policy decisions
        record a drop reason).  In at-least-once mode this is the
        guarantee being tested: the list must be empty for frames old
        enough that every redelivery had time to land — pass a *horizon*
        a few seconds before the end of the run to exclude tuples still
        legitimately in flight at cutoff.
        """
        cutoff = self.duration if horizon is None else horizon
        return sorted(seq for seq, record in self.metrics.frames.items()
                      if record.created_at < cutoff
                      and record.sink_arrived_at is None
                      and record.dropped is None)

    def bounded_throughput(self, bound: float, warmup: float = 5.0) -> float:
        """Completions per second within a latency *bound* after warm-up.

        The skew experiment's figure of merit: a statically-overloaded
        hot worker still completes frames eventually, but past the bound
        they no longer count — SLO throughput, not raw throughput.
        """
        horizon = self.duration - warmup
        if horizon <= 0:
            return 0.0
        completed = sum(1 for record in self.metrics.completed_frames()
                        if record.sink_arrived_at >= warmup
                        and record.total_delay is not None
                        and record.total_delay <= bound)
        return completed / horizon

    def steady_state_throughput(self, warmup: float = 5.0) -> float:
        """Completions per second after the warm-up period."""
        horizon = self.duration - warmup
        if horizon <= 0:
            return 0.0
        completed = sum(1 for record in self.metrics.completed_frames()
                        if record.sink_arrived_at >= warmup)
        return completed / horizon

    # -- per-tenant views (multi-tenant isolation checks) -------------------
    def tenant_latency(self, tenant: str,
                       after: float = 0.0) -> Optional[LatencyStats]:
        """One tenant's end-to-end latency summary ("" = default tenant)."""
        return LatencyStats.from_samples(
            self.tenant_latency_samples(tenant, after=after))

    def tenant_latency_samples(self, tenant: str,
                               after: float = 0.0) -> List[float]:
        """One tenant's raw end-to-end delays (for percentile checks)."""
        return [record.total_delay
                for record in self.metrics.completed_frames()
                if record.tenant == tenant and record.created_at >= after]

    def tenant_losses(self, tenant: str,
                      horizon: Optional[float] = None) -> List[int]:
        """One tenant's end-to-end losses (see :meth:`end_to_end_losses`)."""
        cutoff = self.duration if horizon is None else horizon
        return sorted(seq for seq, record in self.metrics.frames.items()
                      if record.tenant == tenant
                      and record.created_at < cutoff
                      and record.sink_arrived_at is None
                      and record.dropped is None)

    def tenant_throughput(self, tenant: str) -> float:
        """One tenant's completions per second over the whole run."""
        if self.duration <= 0:
            return 0.0
        completed = sum(1 for record in self.metrics.completed_frames()
                        if record.tenant == tenant)
        return completed / self.duration


def run_swarm(config: SwarmConfig) -> SwarmResult:
    """Build and run one experiment; the main simulation entry point."""
    return SwarmSimulation(config).run()
