"""Discrete-event swarm simulator: devices, wireless network, energy, harness."""

from repro.simulation.device import (BACKGROUND_CONTENTION, CpuModel,
                                     DeviceProfile, PowerProfile)
from repro.simulation.energy import (DevicePower, EnergyReport,
                                     PowerEstimator)
from repro.simulation.engine import Event, Process, Resource, Simulator, Store
from repro.simulation.metrics import (DROP_DEVICE_LEFT, DROP_LINK_DOWN,
                                      DROP_SOURCE_QUEUE, DeviceCounters,
                                      FrameRecord, LatencyStats,
                                      MetricsCollector)
from repro.simulation.mobility import MobilityPlan, MobilityTrace
from repro.simulation.network import (RSSI_FAIR, RSSI_GOOD, RSSI_POOR, Network,
                                      Radio, WirelessLink, goodput_for_rssi,
                                      rssi_for_region, stall_for_rssi)
from repro.simulation.pipeline import (PipelineConfig, PipelineResult,
                                       PipelineSimulation, StageSpec,
                                       face_pipeline_config, run_pipeline)
from repro.simulation.replication import (MetricSummary, ReplicatedResult,
                                          compare_policies, replicate)
from repro.simulation.rng import RngRegistry, substream_seed
from repro.simulation.swarm import (BackgroundLoadEvent, JoinEvent,
                                    LeaveEvent, SwarmConfig, SwarmResult,
                                    SwarmSimulation, UNBOUNDED_QUEUE,
                                    run_swarm)
from repro.simulation.workload import (ACK_BYTES, FACE_APP, FACE_FRAME_BYTES,
                                       RESULT_BYTES, TRANSLATE_APP,
                                       TRANSLATE_FRAME_BYTES, Workload,
                                       face_workload, translation_workload)

__all__ = [
    "ACK_BYTES", "BACKGROUND_CONTENTION", "BackgroundLoadEvent", "CpuModel",
    "DROP_DEVICE_LEFT",
    "DROP_LINK_DOWN", "DROP_SOURCE_QUEUE", "DeviceCounters", "DevicePower",
    "DeviceProfile", "EnergyReport", "Event", "FACE_APP", "FACE_FRAME_BYTES",
    "FrameRecord", "JoinEvent", "LatencyStats", "LeaveEvent",
    "MetricSummary", "MetricsCollector", "MobilityPlan", "MobilityTrace",
    "Network", "PipelineConfig", "PipelineResult", "PipelineSimulation",
    "ReplicatedResult", "StageSpec", "compare_policies",
    "face_pipeline_config", "replicate", "run_pipeline",
    "PowerEstimator", "PowerProfile", "Process", "RESULT_BYTES", "RSSI_FAIR",
    "RSSI_GOOD", "RSSI_POOR", "Radio", "Resource", "RngRegistry", "Simulator",
    "Store", "SwarmConfig", "SwarmResult", "SwarmSimulation",
    "TRANSLATE_APP", "TRANSLATE_FRAME_BYTES", "UNBOUNDED_QUEUE",
    "WirelessLink", "Workload", "face_workload", "goodput_for_rssi",
    "rssi_for_region", "run_swarm", "stall_for_rssi", "substream_seed",
    "translation_workload",
]
