"""Multi-stage pipeline simulation (the deployment of Fig. 3).

The main swarm harness (:mod:`repro.simulation.swarm`) models the
paper's evaluation deployments, where each worker runs the whole
per-frame computation.  This module models the *general* Swing
deployment: an app graph whose compute stages are distributed
independently — the source routes to the replicas of stage 1, each
stage-1 instance routes its intermediate tuples to the replicas of
stage 2, and so on, with the routing policy and latency estimation
running *at every upstream instance*, exactly as Sec. V-A specifies
("LRS is executed at each upstream function unit").

Devices may host several stage instances; instances on one device share
its processor.  Transfers ride the same packet-level radio model as the
main harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.controller import PolicyConfig
from repro.core.exceptions import SimulationError
from repro.core.reorder import ReorderBuffer
from repro.simulation.control import engine_controller
from repro.simulation.device import CpuModel, DeviceProfile
from repro.simulation.engine import Resource, Simulator, Store
from repro.simulation.network import Network, RSSI_GOOD
from repro.simulation.rng import RngRegistry
from repro.simulation.workload import ACK_BYTES, Workload


@dataclass(frozen=True)
class StageSpec:
    """One compute stage of the pipeline.

    ``compute_fraction`` is the share of a device's whole-app per-frame
    delay this stage accounts for (the detector and recognizer of the
    face app roughly split the Table-I delays); ``output_bytes`` is the
    size of the tuple the stage emits downstream.
    """

    name: str
    compute_fraction: float
    output_bytes: int
    hosts: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_fraction <= 1.0:
            raise SimulationError("compute fraction must be in (0, 1]")
        if self.output_bytes <= 0:
            raise SimulationError("stage output size must be positive")
        if not self.hosts:
            raise SimulationError("stage %r needs at least one host"
                                  % self.name)


@dataclass
class PipelineConfig:
    """A multi-stage deployment experiment."""

    workload: Workload
    stages: Sequence[StageSpec]
    devices: Mapping[str, DeviceProfile]
    source_id: str
    policy: str = "LRS"
    duration: float = 60.0
    seed: int = 0
    rssi: Mapping[str, float] = field(default_factory=dict)
    socket_window_bytes: int = 32768
    control_interval: float = 1.0
    jitter_sigma: float = 0.30
    reorder_timespan: float = 1.0

    def validate(self) -> None:
        if not self.stages:
            raise SimulationError("a pipeline needs at least one stage")
        if self.duration <= 0:
            raise SimulationError("duration must be positive")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise SimulationError("duplicate stage names: %r" % names)
        # Co-locating compute with the source device is allowed.
        for stage in self.stages:
            for host in stage.hosts:
                if host != self.source_id and host not in self.devices:
                    raise SimulationError("stage %r host %r has no profile"
                                          % (stage.name, host))

    def window_frames(self, payload_bytes: int) -> int:
        return max(2, self.socket_window_bytes // payload_bytes)

    def stage_input_bytes(self, stage_index: int) -> int:
        """Size of a tuple entering the given stage."""
        if stage_index == 0:
            return self.workload.frame_bytes
        return self.stages[stage_index - 1].output_bytes


@dataclass
class _PipeTuple:
    seq: int
    created_at: float


class _StageInstance:
    """One stage replica on one device."""

    def __init__(self, pipeline: "PipelineSimulation", stage_index: int,
                 device_id: str) -> None:
        self.pipeline = pipeline
        self.stage_index = stage_index
        self.stage = pipeline.config.stages[stage_index]
        self.device_id = device_id
        self.instance_id = "%s@%s" % (self.stage.name, device_id)
        sim = pipeline.sim
        self.ingress = Store(sim, capacity=None,
                             name="in:%s" % self.instance_id)
        window = pipeline.config.window_frames(
            pipeline.stage_input_bytes(stage_index))
        self.credits = Store(sim, capacity=window,
                             name="cr:%s" % self.instance_id)
        for _ in range(window):
            self.credits.try_put(True)
        self.frames_in = 0
        self.busy_time = 0.0
        # The downstream router (None for the last stage: results go to
        # the sink directly).
        self.router: Optional[_Router] = None
        if stage_index + 1 < len(pipeline.config.stages):
            self.router = _Router(pipeline, upstream_id=self.instance_id,
                                  device_id=device_id,
                                  target_stage=stage_index + 1)
        sim.process(self._run(), name="stage:%s" % self.instance_id)

    def _run(self):
        pipeline = self.pipeline
        sim = pipeline.sim
        cpu = CpuModel(pipeline.profile(self.device_id),
                       pipeline.config.workload.app)
        while True:
            item = yield self.ingress.get()
            self.credits.try_put(True)
            frame, ack_to = item
            self.frames_in += 1
            jitter = pipeline.rngs.lognormal_jitter(
                "svc:%s" % self.instance_id, pipeline.config.jitter_sigma)
            service = (cpu.service_time(jitter)
                       * self.stage.compute_fraction)
            # Stage instances on one device share its processor.
            processor = pipeline.processor(self.device_id)
            yield processor.acquire()
            self.busy_time += service
            yield sim.timeout(service)
            processor.release()
            if ack_to is not None:
                pipeline._send_ack(self.device_id, ack_to, frame, service)
            if self.router is not None:
                yield from self.router.forward(frame)
            else:
                pipeline._send_result(self.device_id, frame, service)


class _Router:
    """Per-upstream-instance adapter over the shared LRS control plane.

    Sec. V-A runs LRS at *every* upstream function unit: each stage
    replica hosts one :class:`~repro.core.controller.LrsController` for
    the next stage's replicas and only keeps the windowed-dispatch glue
    here.
    """

    def __init__(self, pipeline: "PipelineSimulation", upstream_id: str,
                 device_id: str, target_stage: int) -> None:
        self.pipeline = pipeline
        self.upstream_id = upstream_id
        self.device_id = device_id
        self.target_stage = target_stage
        self.controller = engine_controller(
            pipeline.sim,
            PolicyConfig(policy=pipeline.config.policy,
                         seed=pipeline.rngs.root_seed + target_stage,
                         control_interval=pipeline.config.control_interval),
            name=upstream_id)
        for instance_id in pipeline.stage_instance_ids(target_stage):
            self.controller.add_downstream(instance_id)
        pipeline.routers.append(self)
        pipeline.sim.process(self._control(),
                             name="ctl:%s" % upstream_id)

    def _control(self):
        sim = self.pipeline.sim
        interval = self.pipeline.config.control_interval
        while True:
            yield sim.timeout(interval)
            self.controller.update(sim.now)

    def forward(self, frame: _PipeTuple):
        """Process generator: route one tuple to the target stage."""
        pipeline = self.pipeline
        sim = pipeline.sim
        self.controller.observe_arrival(sim.now)
        instance_id = self.controller.select()
        if instance_id is None:
            return
        target = pipeline.instances.get(instance_id)
        if target is None:
            return
        # Unique per-router pending key: seqs repeat across stages.
        self.controller.record_send(frame.seq, instance_id, sim.now)
        yield target.credits.get()
        payload = pipeline.stage_input_bytes(self.target_stage)
        delivered = pipeline.send_bytes(self.device_id, target.device_id,
                                        payload)
        delivered.add_callback(
            lambda _e, frame=frame, target=target:
            target.ingress.try_put((frame, (self.device_id, self,
                                            frame.seq))))

    def on_ack(self, seq: int, processing_delay: float) -> None:
        self.controller.on_ack(seq, processing_delay=processing_delay,
                               now=self.pipeline.sim.now)


class PipelineSimulation:
    """Runs one multi-stage deployment experiment."""

    def __init__(self, config: PipelineConfig) -> None:
        config.validate()
        self.config = config
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(self.sim)
        self.routers: List[_Router] = []
        self._processors: Dict[str, Resource] = {}
        self.instances: Dict[str, _StageInstance] = {}
        self.reorder = ReorderBuffer.for_rate(config.workload.input_rate,
                                              timespan=config.reorder_timespan)
        self.completed: List[Tuple[int, float, float]] = []  # seq, created, done
        self._generated = 0
        self._build()

    # -- topology helpers ----------------------------------------------------
    def profile(self, device_id: str) -> DeviceProfile:
        return self.config.devices[device_id]

    def processor(self, device_id: str) -> Resource:
        if device_id not in self._processors:
            self._processors[device_id] = Resource(
                self.sim, capacity=1, name="cpu:%s" % device_id)
        return self._processors[device_id]

    def stage_instance_ids(self, stage_index: int) -> List[str]:
        stage = self.config.stages[stage_index]
        return ["%s@%s" % (stage.name, host) for host in stage.hosts]

    def stage_input_bytes(self, stage_index: int) -> int:
        """Size of a tuple entering the given stage."""
        return self.config.stage_input_bytes(stage_index)

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        config = self.config
        attached = set()
        self.network.attach(config.source_id,
                            rssi=config.rssi.get(config.source_id,
                                                 RSSI_GOOD))
        attached.add(config.source_id)
        for stage in config.stages:
            for host in stage.hosts:
                if host not in attached:
                    self.network.attach(host,
                                        rssi=config.rssi.get(host, RSSI_GOOD))
                    attached.add(host)
        for index, stage in enumerate(config.stages):
            for host in stage.hosts:
                instance = _StageInstance(self, index, host)
                self.instances[instance.instance_id] = instance
        self.source_router = _Router(self, upstream_id="source",
                                     device_id=config.source_id,
                                     target_stage=0)
        self.sim.process(self._source(), name="source")

    # -- processes -------------------------------------------------------
    def _source(self):
        gaps = self.config.workload.interarrival_times(
            self.rngs.stream("arrivals"))
        seq = 0
        while True:
            frame = _PipeTuple(seq=seq, created_at=self.sim.now)
            self._generated += 1
            yield from self.source_router.forward(frame)
            seq += 1
            yield self.sim.timeout(next(gaps))

    def send_bytes(self, from_id: str, to_id: str, size_bytes: int):
        """One transfer over the sender's radio; returns delivery event."""
        if from_id == to_id:
            event = self.sim.event("local")
            event.succeed()
            return event
        radio = self.network.radio(from_id)
        link = self.network.link(to_id)
        return radio.connection(link).send(size_bytes)

    def _send_ack(self, from_id: str, ack_to, frame: _PipeTuple,
                  processing_delay: float) -> None:
        device_id, router, seq = ack_to
        delivered = self.send_bytes(from_id, device_id, ACK_BYTES)
        delivered.add_callback(
            lambda _e: router.on_ack(seq, processing_delay))

    def _send_result(self, from_id: str, frame: _PipeTuple,
                     processing_delay: float) -> None:
        result_bytes = self.config.workload.result_bytes
        delivered = self.send_bytes(from_id, self.config.source_id,
                                    result_bytes)
        delivered.add_callback(lambda _e, frame=frame:
                               self._at_sink(frame))

    def _at_sink(self, frame: _PipeTuple) -> None:
        now = self.sim.now
        self.completed.append((frame.seq, frame.created_at, now))
        self.reorder.offer(frame.seq, now)

    # -- running -----------------------------------------------------------
    def run(self) -> "PipelineResult":
        self.sim.run(self.config.duration)
        self.reorder.flush(self.config.duration)
        return PipelineResult.from_simulation(self)


@dataclass
class PipelineResult:
    """Summary of one multi-stage run."""

    config: PipelineConfig
    generated: int
    completed: int
    throughput: float
    mean_latency: Optional[float]
    per_instance_frames: Dict[str, int]
    per_device_busy: Dict[str, float]
    ordered: bool

    @classmethod
    def from_simulation(cls, pipeline: PipelineSimulation) -> "PipelineResult":
        duration = pipeline.config.duration
        delays = [done - created
                  for _seq, created, done in pipeline.completed]
        per_instance = {instance_id: instance.frames_in
                        for instance_id, instance
                        in pipeline.instances.items()}
        per_device: Dict[str, float] = {}
        for instance in pipeline.instances.values():
            per_device[instance.device_id] = (
                per_device.get(instance.device_id, 0.0)
                + instance.busy_time)
        return cls(
            config=pipeline.config,
            generated=pipeline._generated,
            completed=len(pipeline.completed),
            throughput=len(pipeline.completed) / duration,
            mean_latency=(sum(delays) / len(delays)) if delays else None,
            per_instance_frames=per_instance,
            per_device_busy=per_device,
            ordered=pipeline.reorder.is_monotonic(),
        )


def run_pipeline(config: PipelineConfig) -> PipelineResult:
    """Build and run one multi-stage pipeline experiment."""
    return PipelineSimulation(config).run()


def face_pipeline_config(detector_hosts: Sequence[str],
                         recognizer_hosts: Sequence[str],
                         policy: str = "LRS", duration: float = 30.0,
                         input_rate: float = 24.0, seed: int = 0,
                         rssi: Optional[Mapping[str, float]] = None
                         ) -> PipelineConfig:
    """The face app split as in Fig. 3: detector and recognizer stages.

    Detection dominates the per-frame cost (sliding-window search), so it
    gets ~60% of the Table-I delay; intermediate tuples carry the frame
    plus detected boxes.
    """
    from repro import profiles
    from repro.simulation.workload import face_workload

    hosts = sorted(set(detector_hosts) | set(recognizer_hosts))
    return PipelineConfig(
        workload=face_workload(input_rate=input_rate),
        stages=(
            StageSpec(name="detector", compute_fraction=0.60,
                      output_bytes=6_200, hosts=tuple(detector_hosts)),
            StageSpec(name="recognizer", compute_fraction=0.40,
                      output_bytes=200, hosts=tuple(recognizer_hosts)),
        ),
        devices=profiles.worker_profiles(hosts),
        source_id=profiles.SOURCE_ID,
        policy=policy,
        duration=duration,
        seed=seed,
        rssi=dict(rssi or {}),
    )
