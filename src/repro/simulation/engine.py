"""Discrete-event simulation engine.

A small process-based simulator in the style of SimPy: *processes* are
Python generators that yield :class:`Event` objects and are resumed when
those events fire.  The engine provides timeouts, FIFO stores with
capacity (queues with blocking put/get) and counted resources — enough to
model radios, sockets with backpressure, and device processors.

Implemented from scratch so the whole substrate is self-contained.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from collections import deque

from repro.core.exceptions import SimulationError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "callbacks", "triggered", "value", "_label")

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None
        self._label = label

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now, resuming everything waiting on it."""
        if self.triggered:
            raise SimulationError("event %r triggered twice" % self._label)
        self.triggered = True
        self.value = value
        self.sim._queue_callbacks(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._queue_immediate(callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.triggered else "pending"
        return "<Event %s %s>" % (self._label or hex(id(self)), state)


class Process:
    """A running generator; itself an event that fires on completion."""

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, None], name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.completion = Event(sim, label="%s.done" % self.name)
        self.alive = True
        sim._queue_immediate(self._step, None)

    def _step(self, event: Optional[Event]) -> None:
        if not self.alive:
            return
        value = event.value if event is not None else None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.completion.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r; processes must yield Event objects"
                % (self.name, target))
        target.add_callback(self._step)

    def kill(self) -> None:
        """Stop resuming this process.  Its generator is abandoned."""
        self.alive = False
        self._generator.close()


class Simulator:
    """Event loop: schedules timed events and runs processes."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._immediate: Deque[Tuple[Callable, Any]] = deque()

    @property
    def now(self) -> float:
        return self._now

    # -- primitives ------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn()* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), fn))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Event that fires *delay* seconds from now."""
        event = Event(self, label="timeout(%g)" % delay)
        self.schedule(delay, lambda: event.succeed(value))
        return event

    def event(self, label: str = "") -> Event:
        return Event(self, label=label)

    def process(self, generator: Generator[Event, Any, None],
                name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """Event firing once every event in *events* has fired."""
        gate = Event(self, label="all_of(%d)" % len(events))
        remaining = {"count": len(events)}
        if not events:
            gate.succeed([])
            return gate
        results: List[Any] = [None] * len(events)

        def _make(index: int):
            def _on_fire(event: Event) -> None:
                results[index] = event.value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    gate.succeed(results)
            return _on_fire

        for index, event in enumerate(events):
            event.add_callback(_make(index))
        return gate

    # -- run loop --------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance simulated time to *until*, firing everything due."""
        if until < self._now:
            raise SimulationError("cannot run backwards to t=%r" % until)
        self._drain_immediate()
        while self._heap and self._heap[0][0] <= until:
            when, _seq, fn = heapq.heappop(self._heap)
            self._now = when
            fn()
            self._drain_immediate()
        self._now = until

    def run_all(self, limit: float = 1e9) -> None:
        """Run until no events remain (bounded by *limit* for safety)."""
        self._drain_immediate()
        while self._heap:
            when, _seq, fn = heapq.heappop(self._heap)
            if when > limit:
                self._now = limit
                return
            self._now = when
            fn()
            self._drain_immediate()

    # -- internals -------------------------------------------------------
    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            self._immediate.append((callback, event))

    def _queue_immediate(self, callback: Callable, event: Optional[Event]) -> None:
        self._immediate.append((callback, event))

    def _drain_immediate(self) -> None:
        while self._immediate:
            callback, event = self._immediate.popleft()
            callback(event)


class Store:
    """FIFO queue with optional capacity; put/get block via events."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        #: high-water mark of the queue depth over the store's lifetime
        #: (bounded-memory invariant checks read this after a run)
        self.max_len = 0
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[Any, ...]:
        """Current contents, oldest first — stored items plus parked
        putters (end-of-run conservation audits walk these)."""
        return tuple(self._items) + tuple(item for _, item in self._putters)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Blocking put: the returned event fires once *item* is stored."""
        event = Event(self.sim, label="%s.put" % self.name)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            self.max_len = max(self.max_len, len(self._items))
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        self.max_len = max(self.max_len, len(self._items))
        return True

    def get(self) -> Event:
        """Blocking get: the returned event fires with the next item."""
        event = Event(self.sim, label="%s.get" % self.name)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking get: the next item, or ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def take_first(self, predicate):
        """Remove and return the oldest queued item matching *predicate*.

        ``None`` when nothing matches.  Used by cross-tenant fair-share
        eviction, which must shed the victim tenant's oldest entry
        rather than whatever happens to be at the head.
        """
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                self._admit_putter()
                return item
        return None

    def drain(self) -> List[Any]:
        """Remove and return all queued items (e.g. a device vanishing)."""
        items = list(self._items)
        self._items.clear()
        while self._putters:
            event, item = self._putters.popleft()
            items.append(item)
            event.succeed()
        return items

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._items.append(item)
            self.max_len = max(self.max_len, len(self._items))
            event.succeed()


class Resource:
    """Counted resource with FIFO acquisition (a semaphore)."""

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        event = Event(self.sim, label="%s.acquire" % self.name)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release of idle resource %r" % self.name)
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
