"""Measurement collection for swarm experiments.

Records the life of every frame (dispatch, transmission, queuing,
processing, sink arrival, playback) plus per-device counters, and computes
the aggregates the paper reports: throughput, latency statistics with
decomposition (Fig. 2), per-device CPU utilisation and input rates
(Fig. 5), per-second throughput time series (Figs. 9/10) and arrival
orderings (Fig. 8).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import metrics as metrics_mod

DROP_SOURCE_QUEUE = "source_queue_full"
DROP_CONN_OVERFLOW = "connection_overflow"
DROP_DEVICE_LEFT = "device_left"
DROP_LINK_DOWN = "link_down"
DROP_STALE = "stale_at_sink"
#: overload protection: past-deadline tuples shed mid-pipeline
DROP_EXPIRED = "expired"
#: overload protection: tuples refused by source admission control
DROP_BACKPRESSURE = "backpressure"
#: overload protection: tuples shed by a bounded queue's drop policy
DROP_QUEUE_FULL = "queue_full"


@dataclass
class FrameRecord:
    """Timestamped life of one frame through the swarm."""

    seq: int
    created_at: float
    device_id: str = ""
    #: owning tenant pipeline ("" = the single-tenant namespace)
    tenant: str = ""
    dispatched_at: Optional[float] = None
    tx_started_at: Optional[float] = None
    tx_finished_at: Optional[float] = None
    proc_started_at: Optional[float] = None
    proc_finished_at: Optional[float] = None
    sink_arrived_at: Optional[float] = None
    played_at: Optional[float] = None
    dropped: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.sink_arrived_at is not None and self.dropped is None

    @property
    def source_queue_delay(self) -> Optional[float]:
        if self.tx_started_at is None:
            return None
        return max(0.0, self.tx_started_at - self.created_at)

    @property
    def transmission_delay(self) -> Optional[float]:
        if self.tx_finished_at is None or self.tx_started_at is None:
            return None
        return max(0.0, self.tx_finished_at - self.tx_started_at)

    @property
    def queuing_delay(self) -> Optional[float]:
        if self.proc_started_at is None or self.tx_finished_at is None:
            return None
        return max(0.0, self.proc_started_at - self.tx_finished_at)

    @property
    def processing_delay(self) -> Optional[float]:
        if self.proc_finished_at is None or self.proc_started_at is None:
            return None
        return max(0.0, self.proc_finished_at - self.proc_started_at)

    @property
    def total_delay(self) -> Optional[float]:
        if self.sink_arrived_at is None:
            return None
        return max(0.0, self.sink_arrived_at - self.created_at)


@dataclass
class LatencyStats:
    """The per-frame latency summary shown in Fig. 4."""

    count: int
    mean: float
    minimum: float
    maximum: float
    variance: float

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> Optional["LatencyStats"]:
        if not samples:
            return None
        count = len(samples)
        mean = sum(samples) / count
        variance = sum((value - mean) ** 2 for value in samples) / count
        return cls(count=count, mean=mean, minimum=min(samples),
                   maximum=max(samples), variance=variance)


@dataclass
class DeviceCounters:
    """Per-device activity tallies."""

    device_id: str
    frames_received: int = 0
    frames_completed: int = 0
    bytes_received: int = 0
    busy_time: float = 0.0
    participating_time: float = 0.0


class MetricsCollector:
    """Accumulates frame records and per-device counters during a run."""

    def __init__(self,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        self.frames: Dict[int, FrameRecord] = {}
        self.devices: Dict[str, DeviceCounters] = {}
        self.generated = 0
        self.dropped: Dict[str, int] = defaultdict(int)
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self.registry = (registry if registry is not None
                         else metrics_mod.MetricsRegistry())

    # -- recording -------------------------------------------------------
    def frame(self, seq: int, created_at: float,
              tenant: str = "") -> FrameRecord:
        record = self.frames.get(seq)
        if record is None:
            record = FrameRecord(seq=seq, created_at=created_at,
                                 tenant=tenant)
            self.frames[seq] = record
            self.generated += 1
        return record

    def device(self, device_id: str) -> DeviceCounters:
        counters = self.devices.get(device_id)
        if counters is None:
            counters = DeviceCounters(device_id=device_id)
            self.devices[device_id] = counters
        return counters

    def drop(self, seq: int, reason: str) -> None:
        record = self.frames.get(seq)
        if record is not None and record.dropped is None:
            record.dropped = reason
        self.dropped[reason] += 1
        self.registry.increment(metrics_mod.DROPPED_TOTAL, reason=reason)

    # -- aggregates ------------------------------------------------------
    def completed_frames(self) -> List[FrameRecord]:
        return sorted((record for record in self.frames.values() if record.completed),
                      key=lambda record: record.seq)

    def throughput(self, duration: float) -> float:
        """Completed frames per second over the run (Fig. 4, left)."""
        if duration <= 0:
            return 0.0
        return len(self.completed_frames()) / duration

    def latency_stats(self, after: float = 0.0) -> Optional[LatencyStats]:
        """Per-frame latency summary (Fig. 4).

        ``after`` discards frames created during the first seconds of the
        run, for steady-state reporting without the start-up transient.
        """
        samples = [record.total_delay for record in self.completed_frames()
                   if record.created_at >= after]
        return LatencyStats.from_samples([value for value in samples
                                          if value is not None])

    def delay_decomposition(self) -> Dict[str, float]:
        """Mean transmission / queuing / processing split (Fig. 2).

        Transmission here includes time spent waiting for the sender's
        radio, matching what the paper's sender-side timestamping sees.
        """
        completed = self.completed_frames()
        if not completed:
            return {"transmission": 0.0, "queuing": 0.0, "processing": 0.0}

        def _mean(values: List[Optional[float]]) -> float:
            known = [value for value in values if value is not None]
            return sum(known) / len(known) if known else 0.0

        transmission = _mean([
            (record.transmission_delay or 0.0) + (record.source_queue_delay or 0.0)
            for record in completed])
        return {
            "transmission": transmission,
            "queuing": _mean([record.queuing_delay for record in completed]),
            "processing": _mean([record.processing_delay for record in completed]),
        }

    def per_device_input_rate(self, duration: float) -> Dict[str, float]:
        """Frames per second each device received (Fig. 5, right)."""
        if duration <= 0:
            return {device_id: 0.0 for device_id in self.devices}
        return {device_id: counters.frames_received / duration
                for device_id, counters in self.devices.items()}

    def per_device_cpu_utilization(self, duration: float,
                                   overheads: Optional[Dict[str, float]] = None
                                   ) -> Dict[str, float]:
        """Busy fraction per device, plus framework overhead (Fig. 5, left)."""
        utilization = {}
        for device_id, counters in self.devices.items():
            if duration <= 0:
                utilization[device_id] = 0.0
                continue
            busy = counters.busy_time / duration
            overhead = 0.0
            if overheads and device_id in overheads:
                overhead = overheads[device_id] * (counters.participating_time
                                                   or duration) / duration
            utilization[device_id] = min(1.0, busy + overhead)
        return utilization

    def per_device_bytes(self) -> Dict[str, int]:
        return {device_id: counters.bytes_received
                for device_id, counters in self.devices.items()}

    def throughput_series(self, duration: float, bin_width: float = 1.0
                          ) -> List[float]:
        """Completions per second in consecutive bins (Figs. 9 and 10)."""
        bins = max(1, int(math.ceil(duration / bin_width)))
        series = [0.0] * bins
        for record in self.completed_frames():
            when = record.sink_arrived_at
            index = min(bins - 1, int(when / bin_width))
            series[index] += 1
        return [count / bin_width for count in series]

    def per_device_throughput_series(self, duration: float,
                                     bin_width: float = 1.0
                                     ) -> Dict[str, List[float]]:
        """Per-device completions per second per bin (Fig. 10, bottom)."""
        bins = max(1, int(math.ceil(duration / bin_width)))
        series: Dict[str, List[float]] = {device_id: [0.0] * bins
                                          for device_id in self.devices}
        for record in self.completed_frames():
            if not record.device_id or record.device_id not in series:
                continue
            index = min(bins - 1, int(record.sink_arrived_at / bin_width))
            series[record.device_id][index] += 1
        return {device_id: [count / bin_width for count in values]
                for device_id, values in series.items()}

    def arrival_order(self) -> List[FrameRecord]:
        """Completed frames by sink-arrival time — Fig. 8's gray dots."""
        return sorted(self.completed_frames(),
                      key=lambda record: record.sink_arrived_at)

    def loss_count(self) -> int:
        return sum(self.dropped.values())

    # -- export ------------------------------------------------------------
    _CSV_FIELDS = ("seq", "device_id", "created_at", "dispatched_at",
                   "tx_started_at", "tx_finished_at", "proc_started_at",
                   "proc_finished_at", "sink_arrived_at", "played_at",
                   "dropped")

    def to_csv(self) -> str:
        """Per-frame trace as CSV text (external analysis / plotting)."""
        lines = [",".join(self._CSV_FIELDS)]
        for seq in sorted(self.frames):
            record = self.frames[seq]
            cells = []
            for name in self._CSV_FIELDS:
                value = getattr(record, name)
                if value is None:
                    cells.append("")
                elif isinstance(value, float):
                    cells.append("%.6f" % value)
                else:
                    cells.append(str(value))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def write_csv(self, path) -> None:
        """Write :meth:`to_csv` output to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())
