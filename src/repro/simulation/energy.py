"""Energy estimation (paper Sec. VI-B-2, Figs. 6 and 7).

The paper does not measure power directly; it builds per-device profiles
offline (idle power, peak CPU power from a 30-minute 100%-load battery
drain, peak Wi-Fi power from a 30-minute iperf run) and estimates runtime
power from measured CPU utilisation and data rate.  We reimplement exactly
that estimator on top of the simulator's measured utilisations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.exceptions import SimulationError
from repro.simulation.device import DeviceProfile

#: reference bandwidth at which a radio draws its peak Wi-Fi power
PEAK_WIFI_BANDWIDTH_BPS = 18.0e6


@dataclass
class DevicePower:
    """Estimated average power draw of one device during a run."""

    device_id: str
    cpu_w: float
    wifi_w: float

    @property
    def total_w(self) -> float:
        return self.cpu_w + self.wifi_w


@dataclass
class EnergyReport:
    """Per-device and aggregate power for one experiment (Fig. 6)."""

    per_device: Dict[str, DevicePower]
    duration: float

    @property
    def aggregate_w(self) -> float:
        """Total swarm power — the number atop each Fig. 6 group."""
        return sum(power.total_w for power in self.per_device.values())

    def aggregate_energy_j(self) -> float:
        return self.aggregate_w * self.duration

    def fps_per_watt(self, throughput: float) -> float:
        """The Fig. 7 efficiency metric: useful work per Watt."""
        if self.aggregate_w <= 0:
            return 0.0
        return throughput / self.aggregate_w


class PowerEstimator:
    """Utilisation-driven power model over a set of device profiles."""

    def __init__(self, profiles: Mapping[str, DeviceProfile]) -> None:
        self._profiles = dict(profiles)

    def estimate(self, cpu_utilization: Mapping[str, float],
                 bytes_transferred: Mapping[str, int],
                 duration: float) -> EnergyReport:
        """Estimate each device's average dynamic power over *duration*.

        ``cpu_utilization`` is each device's busy fraction (including
        framework overhead); ``bytes_transferred`` the data it moved over
        Wi-Fi (received frames + returned results).
        """
        if duration <= 0:
            raise SimulationError("duration must be positive")
        per_device = {}
        for device_id, profile in self._profiles.items():
            utilization = cpu_utilization.get(device_id, 0.0)
            transferred = bytes_transferred.get(device_id, 0)
            airtime = min(1.0, (transferred * 8.0 / duration)
                          / PEAK_WIFI_BANDWIDTH_BPS)
            per_device[device_id] = DevicePower(
                device_id=device_id,
                cpu_w=profile.power.cpu_power(utilization),
                wifi_w=profile.power.wifi_power(airtime),
            )
        return EnergyReport(per_device=per_device, duration=duration)

    def battery_life_hours(self, device_id: str, average_w: float) -> float:
        """Hours of battery at *average_w* draw above idle.

        Used to reproduce the paper's Sec. I observation that continuous
        face recognition drains a full charge in about two hours.
        """
        profile = self._profiles[device_id]
        draw = profile.power.idle_w + average_w
        if draw <= 0:
            raise SimulationError("non-positive power draw")
        return profile.power.battery_wh / draw
