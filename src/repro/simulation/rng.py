"""Seeded random-number streams for reproducible simulations.

Every stochastic component (service-time jitter, routing draws, network
jitter) draws from its own named substream derived from the experiment
seed, so adding a new random component never perturbs the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def substream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the substream *name*."""
    digest = hashlib.sha256(("%d/%s" % (root_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Lazily creates one :class:`random.Random` per named substream."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            self._streams[name] = random.Random(substream_seed(self.root_seed, name))
        return self._streams[name]

    def lognormal_jitter(self, name: str, sigma: float = 0.08) -> float:
        """Multiplicative jitter with mean ~1 (service-time noise)."""
        rng = self.stream(name)
        return rng.lognormvariate(-0.5 * sigma * sigma, sigma)
