"""Sensing workloads: frame streams fed to the swarm.

The paper evaluates two applications:

* **face recognition** — 400x226-pixel video frames, 6.0 kB each, at the
  smooth-playback target of 24 FPS;
* **voice translation** — 72.0 kB audio frames; heavier per-frame compute
  (speech recognition + machine translation), so the sustainable target
  rate is lower.

A workload couples the frame parameters with an arrival process
(deterministic for camera/microphone capture; Poisson available for
stress tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import random

from repro.core.exceptions import SimulationError

FACE_APP = "face_recognition"
TRANSLATE_APP = "voice_translation"

FACE_FRAME_BYTES = 6_000       # 400x226 compressed frame (paper Sec. VI-A)
TRANSLATE_FRAME_BYTES = 72_000  # audio segment (paper Sec. VI-A)
RESULT_BYTES = 200             # recognized name / translated text + header
ACK_BYTES = 64                 # timestamp echo (paper: "negligible")


@dataclass(frozen=True)
class Workload:
    """Parameters of one sensed data stream."""

    app: str
    frame_bytes: int
    input_rate: float                # frames per second at the source
    result_bytes: int = RESULT_BYTES
    arrival: str = "deterministic"   # or "poisson"

    def __post_init__(self) -> None:
        if self.frame_bytes <= 0:
            raise SimulationError("frame size must be positive")
        if self.input_rate <= 0:
            raise SimulationError("input rate must be positive")
        if self.arrival not in ("deterministic", "poisson"):
            raise SimulationError("unknown arrival process %r" % self.arrival)

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.input_rate

    def interarrival_times(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """Infinite stream of gaps between successive frames."""
        if self.arrival == "deterministic":
            while True:
                yield self.frame_interval
        else:
            if rng is None:
                rng = random.Random(0)
            while True:
                yield rng.expovariate(self.input_rate)


def face_workload(input_rate: float = 24.0,
                  arrival: str = "deterministic") -> Workload:
    """The paper's face-recognition stream: 6 kB frames at 24 FPS."""
    return Workload(app=FACE_APP, frame_bytes=FACE_FRAME_BYTES,
                    input_rate=input_rate, arrival=arrival)


def translation_workload(input_rate: float = 5.0,
                         arrival: str = "deterministic") -> Workload:
    """The paper's voice-translation stream: 72 kB frames.

    The paper does not state the audio frame rate; we use 5 FPS, a rate
    the swarm's aggregate recognition+translation capacity can meet only
    by combining several fast devices (see DESIGN.md), preserving the
    evaluation's shape.
    """
    return Workload(app=TRANSLATE_APP, frame_bytes=TRANSLATE_FRAME_BYTES,
                    input_rate=input_rate, arrival=arrival)
