"""Canned experiment scenarios matching the paper's evaluation setups.

Each function returns a ready-to-run :class:`~repro.simulation.swarm.SwarmConfig`
for one of the paper's experiments; the benchmark harness and examples
build on these so the exact testbed layouts live in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro import profiles
from repro.core.delivery import (AT_LEAST_ONCE, BEST_EFFORT,
                                 CHURN_KILL_MASTER, CHURN_RESTART_MASTER,
                                 ChurnEvent, ChurnSchedule, DeliveryConfig)
from repro.core.exceptions import SimulationError
from repro.core.keyed import KeyedConfig
from repro.core.multitenant import TenantSpec
from repro.core.overload import DROP_OLDEST, OverloadConfig
from repro.simulation.mobility import MobilityPlan, MobilityTrace
from repro.simulation.network import (RSSI_FAIR, RSSI_GOOD, RSSI_POOR,
                                      rssi_for_region)
from repro.simulation.swarm import (BackgroundLoadEvent, DeviceKillEvent,
                                    DeviceReviveEvent, JoinEvent, LeaveEvent,
                                    MessageDelayEvent, MessageDropEvent,
                                    SwarmConfig, UNBOUNDED_QUEUE)
from repro.simulation.workload import (FACE_APP, TRANSLATE_APP, Workload,
                                       face_workload, translation_workload)


def workload_for_app(app: str, input_rate: Optional[float] = None) -> Workload:
    """The paper's workload for *app*, optionally at a custom rate."""
    if app == FACE_APP:
        return face_workload() if input_rate is None else face_workload(input_rate)
    if app == TRANSLATE_APP:
        return (translation_workload() if input_rate is None
                else translation_workload(input_rate))
    raise SimulationError("unknown app %r" % app)


def single_device(worker_id: str, app: str = FACE_APP,
                  input_rate: float = 24.0, duration: float = 5.0,
                  rssi: float = RSSI_GOOD, background_load: float = 0.0,
                  seed: int = 0, bounded_queue: bool = False) -> SwarmConfig:
    """A sends frames to one worker — the Sec. III characterization setup.

    With ``bounded_queue=False`` the source queue is unbounded so the
    Fig. 1 delay build-up is visible.
    """
    window_bytes = 65536 if bounded_queue else 1 << 30
    return SwarmConfig(
        workload=workload_for_app(app, input_rate),
        workers=profiles.worker_profiles([worker_id]),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy="RR",
        duration=duration,
        seed=seed,
        rssi={worker_id: rssi},
        background_load={worker_id: background_load},
        source_queue_frames=None if bounded_queue else UNBOUNDED_QUEUE,
        socket_window_bytes=window_bytes,
        # Table I / Figs. 1-2 report the paper's measured per-frame
        # delays, which the device profiles already encode; thermal
        # drift would double-count it.
        thermal_throttling=False,
    )


def testbed(app: str = FACE_APP, policy: str = "LRS",
            duration: float = 60.0, seed: int = 0,
            worker_ids: Optional[Sequence[str]] = None,
            poor_signal_ids: Optional[Sequence[str]] = None) -> SwarmConfig:
    """The Sec. VI-B routing-comparison testbed.

    Nine devices; A is source+master, B..I run workers, and B, C, D sit at
    locations of poor Wi-Fi signal.
    """
    ids = list(worker_ids) if worker_ids is not None else list(profiles.WORKER_IDS)
    poor = list(poor_signal_ids) if poor_signal_ids is not None \
        else [device_id for device_id in profiles.POOR_SIGNAL_IDS if device_id in ids]
    rssi = {device_id: (RSSI_POOR if device_id in poor else RSSI_GOOD)
            for device_id in ids}
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(ids),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy=policy,
        duration=duration,
        seed=seed,
        rssi=rssi,
    )


def cloudlet_mode(app: str = FACE_APP, policy: str = "LRS",
                  duration: float = 60.0, seed: int = 0,
                  worker_ids: Optional[Sequence[str]] = None,
                  cloudlet_id: str = "CL") -> SwarmConfig:
    """The Sec. VI-B testbed plus a wall-powered cloudlet VM.

    Models the paper's "cloudlet mode": when fixed infrastructure is
    available, Swing treats the cloudlet as one more (very fast) worker —
    the routing policies need no changes.
    """
    config = testbed(app=app, policy=policy, duration=duration, seed=seed,
                     worker_ids=worker_ids)
    workers = dict(config.workers)
    workers[cloudlet_id] = profiles.cloudlet_profile(cloudlet_id)
    rssi = dict(config.rssi)
    rssi[cloudlet_id] = RSSI_GOOD
    config.workers = workers
    config.rssi = rssi
    return config


def joining(app: str = FACE_APP, duration: float = 30.0, seed: int = 0,
            initial_ids: Sequence[str] = ("B", "D"),
            joiner_id: str = "G", join_time: float = 10.0) -> SwarmConfig:
    """Fig. 9 (left): B and D compute; G joins mid-run."""
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(list(initial_ids)),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy="LRS",
        duration=duration,
        seed=seed,
        joins=(JoinEvent(time=join_time, device_id=joiner_id),),
    )


def leaving(app: str = FACE_APP, duration: float = 35.0, seed: int = 0,
            initial_ids: Sequence[str] = ("B", "G", "H"),
            leaver_id: str = "G", leave_time: float = 15.0) -> SwarmConfig:
    """Fig. 9 (right): B, G, H compute; G is killed mid-run."""
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(list(initial_ids)),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy="LRS",
        duration=duration,
        seed=seed,
        leaves=(LeaveEvent(time=leave_time, device_id=leaver_id),),
    )


def fault_injection(app: str = FACE_APP, policy: str = "LRS",
                    duration: float = 30.0, seed: int = 0,
                    worker_ids: Sequence[str] = ("B", "D", "G", "H"),
                    kill_ids: Sequence[str] = ("B", "G"),
                    kill_time: float = 10.0,
                    revive_time: Optional[float] = None,
                    ack_timeout: float = 2.0, dead_after: int = 3,
                    drop_window: Optional[float] = None,
                    delay_window: Optional[float] = None,
                    extra_delay: float = 0.25) -> SwarmConfig:
    """Failure-detection stress: kill devices *silently* mid-stream.

    Unlike :func:`leaving` the upstream is never told the connection
    broke — the killed devices must be discovered purely through lost
    tuples expiring in the ACK tracker, marked dead within the
    configured ``ack_timeout`` window, and their traffic share
    re-routed to the survivors.  Optional extras: revive the devices
    later (``revive_time``), or overlay message drop / delay windows.
    """
    kill_ids = list(kill_ids)
    unknown = [device_id for device_id in kill_ids
               if device_id not in worker_ids]
    if unknown:
        raise SimulationError("cannot kill devices not in the swarm: %s"
                              % ", ".join(unknown))
    if len(kill_ids) >= len(list(worker_ids)):
        raise SimulationError("at least one worker must survive the faults")
    faults: list = [DeviceKillEvent(time=kill_time, device_id=device_id)
                    for device_id in kill_ids]
    if revive_time is not None:
        faults.extend(DeviceReviveEvent(time=revive_time,
                                        device_id=device_id)
                      for device_id in kill_ids)
    if drop_window is not None:
        faults.append(MessageDropEvent(time=kill_time, duration=drop_window,
                                       drop_prob=0.5))
    if delay_window is not None:
        faults.append(MessageDelayEvent(time=kill_time, duration=delay_window,
                                        extra_delay=extra_delay))
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(list(worker_ids)),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy=policy,
        duration=duration,
        seed=seed,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        faults=tuple(faults),
    )


def overload(app: str = FACE_APP, policy: str = "LRS",
             duration: float = 30.0, seed: int = 0,
             worker_ids: Sequence[str] = ("B", "G", "H"),
             overload_until: float = 14.0,
             background: float = 0.8,
             ttl: float = 2.0,
             queue_capacity: int = 8,
             drop_policy: str = DROP_OLDEST,
             kill_id: Optional[str] = "G",
             kill_time: float = 6.0,
             revive_time: float = 12.0,
             ack_timeout: float = 2.0, dead_after: int = 2) -> SwarmConfig:
    """Chaos/soak scenario: sustained Lambda > sum(mu) plus faults.

    Every worker starts with a heavy *background* CPU load, pushing the
    swarm's aggregate service rate well below the input rate — the
    overload regime where unbounded queues would grow without limit.
    Overload protection (TTL *ttl*, bounded ingress queues of
    *queue_capacity* frames, source admission control) must degrade
    gracefully: bounded queue depths, no stale deliveries, monotone shed
    counters.  At *overload_until* the background apps stop, the
    capacity recovers above the input rate, and end-to-end latency must
    recover too.  A mid-overload silent kill/revive of *kill_id*
    stresses the failure-detection path at the same time.

    Thermal throttling is off: with it, the post-recovery service rate
    would stay below the input rate and the recovery assertion would be
    meaningless.
    """
    worker_ids = list(worker_ids)
    if not 0.0 < overload_until < duration:
        raise SimulationError("overload_until must fall inside the run")
    faults: list = []
    if kill_id is not None:
        if kill_id not in worker_ids:
            raise SimulationError("cannot kill %r: not in the swarm" % kill_id)
        if not kill_time < revive_time:
            raise SimulationError("revive must come after the kill")
        faults.append(DeviceKillEvent(time=kill_time, device_id=kill_id))
        faults.append(DeviceReviveEvent(time=revive_time, device_id=kill_id))
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(worker_ids),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy=policy,
        duration=duration,
        seed=seed,
        background_load={device_id: background for device_id in worker_ids},
        background_events=tuple(
            BackgroundLoadEvent(time=overload_until, device_id=device_id,
                                load=0.0)
            for device_id in worker_ids),
        thermal_throttling=False,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        faults=tuple(faults),
        overload=OverloadConfig(ttl=ttl, queue_capacity=queue_capacity,
                                drop_policy=drop_policy),
    )


def churn(app: str = FACE_APP, policy: str = "LRS",
          duration: float = 40.0, seed: int = 7,
          worker_ids: Sequence[str] = ("B", "D", "G", "H"),
          churner_ids: Sequence[str] = ("D", "G"),
          at_least_once: bool = True,
          replay_capacity: int = 512,
          dedup_window: int = 2048,
          max_delivery_attempts: int = 4,
          start_after: float = 8.0, settle: float = 10.0,
          ack_timeout: float = 2.0, dead_after: int = 2,
          detection_delay: float = 0.25) -> SwarmConfig:
    """Churn soak: a seeded kill/leave/rejoin schedule over half the swarm.

    The *churner_ids* cycle through departures (silent kills or graceful
    LEAVING drains, chosen by the schedule's RNG) and rejoins while the
    rest of the swarm keeps computing.  With ``at_least_once=True`` the
    upstream retains every un-ACKed tuple and replays it to a survivor,
    the sink deduplicates, and the run must finish with zero end-to-end
    losses; with ``at_least_once=False`` the same schedule reproduces
    today's best-effort loss accounting — the comparison the guarantee
    matrix in DESIGN.md documents.

    The schedule stops churning *settle* seconds before the end so every
    outstanding redelivery has time to land before the run is judged.
    """
    worker_ids = list(worker_ids)
    churner_ids = list(churner_ids)
    unknown = [device_id for device_id in churner_ids
               if device_id not in worker_ids]
    if unknown:
        raise SimulationError("cannot churn devices not in the swarm: %s"
                              % ", ".join(unknown))
    if len(churner_ids) >= len(worker_ids):
        raise SimulationError("at least one worker must survive the churn")
    schedule = ChurnSchedule.generate(seed=seed, device_ids=churner_ids,
                                      duration=duration,
                                      start_after=start_after, settle=settle)
    delivery = DeliveryConfig(
        mode=AT_LEAST_ONCE if at_least_once else BEST_EFFORT,
        replay_capacity=replay_capacity,
        dedup_window=dedup_window,
        max_delivery_attempts=max_delivery_attempts)
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(worker_ids),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy=policy,
        duration=duration,
        seed=seed,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        detection_delay=detection_delay,
        delivery=delivery,
        churn=schedule,
    )


def failover(app: str = FACE_APP, policy: str = "LRS",
             duration: float = 40.0, seed: int = 11,
             worker_ids: Sequence[str] = ("B", "D", "G", "H"),
             kill_time: float = 12.0, outage: float = 4.0,
             at_least_once: bool = True,
             replay_capacity: int = 1024,
             dedup_window: int = 4096,
             max_delivery_attempts: int = 6,
             settle: float = 10.0,
             ack_timeout: float = 2.0, dead_after: int = 2,
             detection_delay: float = 0.25) -> SwarmConfig:
    """Master failover soak: kill the master mid-run, restart it later.

    At *kill_time* the master dies (source, dispatcher, control loop
    and sink all freeze — no STOP is broadcast); workers keep draining
    their backlogs autonomously.  After *outage* seconds the successor
    master comes up, buffered results flush into its dedup window, and
    at-least-once replay sweeps whatever is still pending.  With
    ``at_least_once=True`` the run must finish with zero end-to-end
    losses and every duplicate absorbed — the recovery guarantee the
    failover CLI and the integration tests assert on both substrates.

    The outage ends at least *settle* seconds before the run does, so
    every redelivery has time to land before the run is judged.
    """
    worker_ids = list(worker_ids)
    if not 0.0 < kill_time < duration:
        raise SimulationError("kill_time must fall inside the run")
    if outage <= 0:
        raise SimulationError("outage must be positive")
    restart_time = kill_time + outage
    if restart_time > duration - settle:
        raise SimulationError("the outage must end %.1fs before the run"
                              " does, so recovery can be judged" % settle)
    master_id = profiles.SOURCE_ID
    schedule = ChurnSchedule(events=(
        ChurnEvent(time=kill_time, action=CHURN_KILL_MASTER,
                   device_id=master_id),
        ChurnEvent(time=restart_time, action=CHURN_RESTART_MASTER,
                   device_id=master_id),
    ), seed=seed)
    delivery = DeliveryConfig(
        mode=AT_LEAST_ONCE if at_least_once else BEST_EFFORT,
        replay_capacity=replay_capacity,
        dedup_window=dedup_window,
        max_delivery_attempts=max_delivery_attempts)
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(worker_ids),
        source=profiles.device_profile(master_id),
        policy=policy,
        duration=duration,
        seed=seed,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        detection_delay=detection_delay,
        delivery=delivery,
        churn=schedule,
    )


def tenants(app: str = FACE_APP, policy: str = "LRS",
            duration: float = 30.0, seed: int = 0,
            worker_ids: Sequence[str] = ("B", "D", "G", "H"),
            tenant_count: int = 3,
            per_tenant_rate: Optional[float] = None,
            hot_tenant: Optional[str] = None,
            hot_rate_factor: float = 4.0,
            weights: Optional[Sequence[float]] = None,
            priorities: Optional[Sequence[int]] = None,
            at_least_once: bool = True,
            replay_capacity: int = 512,
            dedup_window: int = 4096,
            max_delivery_attempts: int = 4,
            ttl: float = 2.0,
            queue_capacity: int = 12,
            ack_timeout: float = 2.0) -> SwarmConfig:
    """Multi-tenant isolation soak: N pipelines share one worker pool.

    Tenants ``t0..tN-1`` each run the same app over the same devices,
    every frame tagged with its owner, and bounded worker ingress queues
    arbitrated by cross-tenant fair-share admission.  *per_tenant_rate*
    defaults to an even split of the app's nominal input rate, sized so
    the pool keeps up at baseline.  Naming a *hot_tenant* ramps that one
    tenant to ``hot_rate_factor``× its fair rate — the misbehaving
    neighbour whose overload must shed its *own* tuples while the victim
    tenants' latency and loss stay unharmed (the acceptance check the
    integration soak asserts on both substrates).
    """
    if tenant_count < 1:
        raise SimulationError("need at least one tenant")
    if weights is not None and len(list(weights)) != tenant_count:
        raise SimulationError("weights must have one entry per tenant")
    if priorities is not None and len(list(priorities)) != tenant_count:
        raise SimulationError("priorities must have one entry per tenant")
    workload = workload_for_app(app)
    rate = (per_tenant_rate if per_tenant_rate is not None
            else workload.input_rate / tenant_count)
    specs = []
    for index in range(tenant_count):
        tenant_id = "t%d" % index
        tenant_rate = rate
        if hot_tenant is not None and tenant_id == hot_tenant:
            tenant_rate = rate * hot_rate_factor
        specs.append(TenantSpec(
            tenant_id=tenant_id,
            weight=list(weights)[index] if weights is not None else 1.0,
            priority=(list(priorities)[index]
                      if priorities is not None else 0),
            input_rate=tenant_rate))
    if hot_tenant is not None \
            and hot_tenant not in {spec.tenant_id for spec in specs}:
        raise SimulationError("hot tenant %r is not one of t0..t%d"
                              % (hot_tenant, tenant_count - 1))
    delivery = (DeliveryConfig(mode=AT_LEAST_ONCE,
                               replay_capacity=replay_capacity,
                               dedup_window=dedup_window,
                               max_delivery_attempts=max_delivery_attempts)
                if at_least_once else None)
    return SwarmConfig(
        workload=workload,
        workers=profiles.worker_profiles(list(worker_ids)),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy=policy,
        duration=duration,
        seed=seed,
        ack_timeout=ack_timeout,
        overload=OverloadConfig(ttl=ttl, queue_capacity=queue_capacity,
                                drop_policy=DROP_OLDEST),
        delivery=delivery,
        tenants=tuple(specs),
    )


def skew(app: str = FACE_APP, duration: float = 40.0, seed: int = 3,
         worker_ids: Sequence[str] = ("B", "D", "G", "H"),
         key_count: int = 64, zipf_alpha: float = 1.2,
         input_rate: Optional[float] = None,
         split_enabled: bool = True,
         hot_ratio: float = 1.5,
         min_split_interval: float = 2.0,
         max_splits: int = 8,
         at_least_once: bool = True,
         replay_capacity: int = 4096,
         dedup_window: int = 8192,
         max_delivery_attempts: int = 8,
         ack_timeout: float = 6.0, dead_after: int = 4) -> SwarmConfig:
    """Keyed-skew soak: per-user state under a Zipf-heavy key universe.

    Every frame carries a ``user-N`` key drawn from a seeded
    Zipf(*zipf_alpha*) distribution over *key_count* users; frames route
    by key-range ownership (an even partition of the hash space over the
    initial pool) and each worker folds its keys into per-user windowed
    aggregates.  The Zipf head concentrates a large share of the stream
    on whichever worker owns the hot keys' range — the overload that
    static hash routing cannot escape.  With ``split_enabled=True`` the
    control loop detects the hot range, splits it, and live-migrates
    half (state and all) to the least-loaded worker each round; with
    ``split_enabled=False`` the same run shows the static baseline the
    acceptance test compares against.

    At-least-once delivery with a generous *ack_timeout* keeps the
    focus on routing: migration parking, not redelivery storms, is the
    mechanism under test, and a mid-run split must lose nothing.
    """
    worker_ids = list(worker_ids)
    if len(worker_ids) < 2:
        raise SimulationError("hot-range splitting needs somewhere to"
                              " move the heat: use >= 2 workers")
    if key_count < 1:
        raise SimulationError("need at least one key")
    delivery = (DeliveryConfig(mode=AT_LEAST_ONCE,
                               replay_capacity=replay_capacity,
                               dedup_window=dedup_window,
                               max_delivery_attempts=max_delivery_attempts)
                if at_least_once else None)
    return SwarmConfig(
        workload=workload_for_app(app, input_rate),
        workers=profiles.worker_profiles(worker_ids),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy="LRS",
        duration=duration,
        seed=seed,
        ack_timeout=ack_timeout,
        dead_after=dead_after,
        delivery=delivery,
        keyed=KeyedConfig(key_count=key_count, zipf_alpha=zipf_alpha,
                          split_enabled=split_enabled, hot_ratio=hot_ratio,
                          min_split_interval=min_split_interval,
                          max_splits=max_splits),
    )


def moving(app: str = FACE_APP, duration: float = 180.0, seed: int = 0,
           worker_ids: Sequence[str] = ("B", "G", "H"),
           mover_id: str = "G", dwell: float = 60.0,
           regions: Sequence[str] = ("good", "fair", "poor")) -> SwarmConfig:
    """Fig. 10: B, G, H compute under LRS; G walks away from the AP,
    visiting the good / fair / poor signal regions for a minute each."""
    plan = MobilityPlan()
    for device_id in worker_ids:
        if device_id == mover_id:
            plan.add(MobilityTrace.walk(device_id, list(regions), dwell))
        else:
            plan.add(MobilityTrace.stationary(device_id, RSSI_GOOD))
    return SwarmConfig(
        workload=workload_for_app(app),
        workers=profiles.worker_profiles(list(worker_ids)),
        source=profiles.device_profile(profiles.SOURCE_ID),
        policy="LRS",
        duration=duration,
        seed=seed,
        mobility=plan,
    )
