"""Device capability model.

Each simulated device mirrors one of the paper's testbed phones: a base
per-frame processing delay per application (Table I for face recognition),
modulated by background CPU load (Fig. 2, middle) and small lognormal
jitter.  The power figures feed the energy model of Sec. VI-B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.exceptions import SimulationError

#: fraction of device speed each unit of background load steals; calibrated
#: so 100% background load inflates processing delay ~6x as in Fig. 2.
BACKGROUND_CONTENTION = 0.85

#: residual speed floor so a fully loaded device still makes progress
MIN_SPEED_FACTOR = 0.10


@dataclass
class PowerProfile:
    """Offline-profiled power numbers (paper Sec. VI-B-2).

    ``idle_w`` is the baseline draw, ``peak_cpu_w`` the extra draw at 100%
    CPU, ``peak_wifi_w`` the extra draw at full radio utilisation, and
    ``battery_wh`` the pack capacity used for battery-life estimates.
    """

    idle_w: float
    peak_cpu_w: float
    peak_wifi_w: float
    battery_wh: float = 6.5

    def __post_init__(self) -> None:
        for name in ("idle_w", "peak_cpu_w", "peak_wifi_w", "battery_wh"):
            if getattr(self, name) < 0:
                raise SimulationError("%s must be non-negative" % name)

    def cpu_power(self, utilization: float) -> float:
        """Dynamic CPU power at the given utilisation in [0, 1]."""
        return self.peak_cpu_w * _clamp01(utilization)

    def wifi_power(self, airtime_fraction: float) -> float:
        """Dynamic Wi-Fi power at the given airtime fraction in [0, 1]."""
        return self.peak_wifi_w * _clamp01(airtime_fraction)


@dataclass
class DeviceProfile:
    """Static description of one swarm device."""

    device_id: str
    model: str
    #: mean per-frame processing delay per app name, seconds (Table I)
    processing_delay: Dict[str, float]
    power: PowerProfile
    cores: int = 2
    #: constant CPU share consumed by the Swing framework itself while the
    #: device participates (the paper measures ~14% average overhead)
    framework_overhead: float = 0.08
    #: whether the device thermal-throttles under sustained load
    #: (phones do; wall-powered cloudlet VMs do not)
    throttles: bool = True

    def __post_init__(self) -> None:
        if not self.device_id:
            raise SimulationError("device needs an id")
        for app, delay in self.processing_delay.items():
            if delay <= 0:
                raise SimulationError(
                    "device %s: non-positive delay for app %r" % (self.device_id, app))
        if not 0.0 <= self.framework_overhead < 1.0:
            raise SimulationError("framework overhead must be in [0, 1)")

    def base_delay(self, app: str) -> float:
        try:
            return self.processing_delay[app]
        except KeyError:
            raise SimulationError(
                "device %s has no profile for app %r" % (self.device_id, app)) from None

    def service_rate(self, app: str) -> float:
        """Nominal throughput in frames per second (Table I, third row)."""
        return 1.0 / self.base_delay(app)

    def with_delay(self, app: str, delay: float) -> "DeviceProfile":
        delays = dict(self.processing_delay)
        delays[app] = delay
        return replace(self, processing_delay=delays)


class CpuModel:
    """Turns base delays into actual service times under background load.

    ``background_load`` in [0, 1] models other apps competing for the
    processor (Fig. 2, middle panel): the effective speed factor is
    ``max(MIN_SPEED_FACTOR, 1 - BACKGROUND_CONTENTION * load)``.
    """

    def __init__(self, profile: DeviceProfile, app: str,
                 background_load: float = 0.0) -> None:
        if not 0.0 <= background_load <= 1.0:
            raise SimulationError("background load must be in [0, 1]")
        self.profile = profile
        self.app = app
        self.background_load = background_load

    @property
    def speed_factor(self) -> float:
        return max(MIN_SPEED_FACTOR,
                   1.0 - BACKGROUND_CONTENTION * self.background_load)

    def mean_service_time(self) -> float:
        return self.profile.base_delay(self.app) / self.speed_factor

    def effective_rate(self) -> float:
        return 1.0 / self.mean_service_time()

    def service_time(self, jitter: float = 1.0) -> float:
        """One frame's processing time; *jitter* is multiplicative noise."""
        if jitter <= 0:
            raise SimulationError("jitter must be positive")
        return self.mean_service_time() * jitter

    def set_background_load(self, load: float) -> None:
        if not 0.0 <= load <= 1.0:
            raise SimulationError("background load must be in [0, 1]")
        self.background_load = load


class ThermalThrottle:
    """Sustained-load thermal throttling of a mobile SoC.

    Phones cannot run their CPUs flat-out indefinitely: after sustained
    high utilisation the governor drops the clock.  We track a
    utilisation EWMA with time constant ``tau``; once it exceeds
    ``threshold``, the device slows down linearly, up to
    ``max_slowdown`` at 100% sustained utilisation.  Policies that
    concentrate the whole stream on one or two fast phones (PRS) pay
    this cost; policies that spread load (LRS) largely avoid it.
    """

    def __init__(self, threshold: float = 0.60, max_slowdown: float = 0.50,
                 tau: float = 10.0) -> None:
        if not 0.0 <= threshold < 1.0:
            raise SimulationError("thermal threshold must be in [0, 1)")
        if not 0.0 <= max_slowdown < 1.0:
            raise SimulationError("thermal slowdown must be in [0, 1)")
        if tau <= 0:
            raise SimulationError("thermal time constant must be positive")
        self.threshold = threshold
        self.max_slowdown = max_slowdown
        self.tau = tau
        self._util_ewma = 0.0
        self._last_update = 0.0
        self._busy_since = 0.0

    def record_busy(self, busy_seconds: float) -> None:
        """Account *busy_seconds* of compute since the last update."""
        if busy_seconds < 0:
            raise SimulationError("busy time must be non-negative")
        self._busy_since += busy_seconds

    def update(self, now: float) -> None:
        """Fold the elapsed interval into the utilisation EWMA."""
        dt = now - self._last_update
        if dt <= 0:
            return
        utilization = _clamp01(self._busy_since / dt)
        alpha = 1.0 - math.exp(-dt / self.tau)
        self._util_ewma += alpha * (utilization - self._util_ewma)
        self._busy_since = 0.0
        self._last_update = now

    @property
    def utilization_ewma(self) -> float:
        return self._util_ewma

    def speed_factor(self) -> float:
        """Current thermal speed multiplier in (0, 1]."""
        excess = self._util_ewma - self.threshold
        if excess <= 0:
            return 1.0
        span = 1.0 - self.threshold
        return 1.0 - self.max_slowdown * min(1.0, excess / span)


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))
