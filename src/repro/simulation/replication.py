"""Replicated experiments: run a scenario across seeds, report statistics.

One simulation run is one testbed session; credible comparisons need
replications.  :func:`replicate` runs a config factory across seeds and
summarises any scalar metric with mean, standard deviation and a normal
95% confidence interval — the machinery the benchmark harness and
examples use for variance-aware claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.core.exceptions import SimulationError
from repro.simulation.swarm import SwarmConfig, SwarmResult, run_swarm

#: two-sided 95% normal quantile
_Z95 = 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one scalar metric over replications."""

    name: str
    samples: tuple

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = (sum((value - mean) ** 2 for value in self.samples)
                    / (len(self.samples) - 1))
        return math.sqrt(variance)

    @property
    def ci95_halfwidth(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return _Z95 * self.stddev / math.sqrt(len(self.samples))

    def interval(self) -> tuple:
        half = self.ci95_halfwidth
        return (self.mean - half, self.mean + half)

    def welch_t(self, other: "MetricSummary") -> float:
        """Welch's t statistic against another summary.

        |t| > ~2 indicates the means differ at roughly 95% confidence;
        returns ``inf`` when both spreads are zero but the means differ.
        """
        se_sq = (self.stddev ** 2 / max(1, self.count)
                 + other.stddev ** 2 / max(1, other.count))
        diff = self.mean - other.mean
        if se_sq == 0.0:
            return float("inf") if diff else 0.0
        return diff / math.sqrt(se_sq)

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return "%s = %.3f ± %.3f (n=%d)" % (self.name, self.mean,
                                            self.ci95_halfwidth, self.count)


@dataclass
class ReplicatedResult:
    """All runs of one scenario plus metric summaries."""

    results: List[SwarmResult]

    def summarize(self, name: str,
                  metric: Callable[[SwarmResult], float]) -> MetricSummary:
        return MetricSummary(name=name,
                             samples=tuple(metric(result)
                                           for result in self.results))

    def throughput(self) -> MetricSummary:
        return self.summarize("throughput_fps", lambda r: r.throughput)

    def latency_mean(self) -> MetricSummary:
        return self.summarize("latency_s",
                              lambda r: r.latency.mean if r.latency else 0.0)

    def aggregate_power(self) -> MetricSummary:
        return self.summarize("power_w", lambda r: r.energy.aggregate_w)

    def fps_per_watt(self) -> MetricSummary:
        return self.summarize("fps_per_watt", lambda r: r.fps_per_watt())


def replicate(config: SwarmConfig, seeds: Sequence[int]) -> ReplicatedResult:
    """Run *config* once per seed (everything else held fixed)."""
    if not seeds:
        raise SimulationError("need at least one seed")
    results = [run_swarm(replace(config, seed=seed)) for seed in seeds]
    return ReplicatedResult(results=results)


def compare_policies(make_config: Callable[[str], SwarmConfig],
                     policies: Sequence[str],
                     seeds: Sequence[int]) -> Dict[str, ReplicatedResult]:
    """Replicate one scenario under several policies."""
    return {policy: replicate(make_config(policy), seeds)
            for policy in policies}
