"""Wireless network model.

Models an 802.11n WLAN like the paper's testbed (Linksys E1200, 2.4 GHz):

* **RSSI -> goodput**: a piecewise-linear curve through anchors shaped by
  802.11n MCS behaviour.  Strong signal (> -50 dBm) sustains ~18 Mbit/s of
  TCP goodput; around -75 dBm rate adaptation has dropped to the lowest
  MCS and retransmissions dominate, leaving a couple hundred kbit/s.
* **Per-transfer stall**: on weak links, TCP retransmission timeouts and
  Wi-Fi rate-adaptation probing add a size-independent stall per frame.
* **Airtime-fair radio**: a device has one radio and its packets
  serialize, but concurrent TCP connections share it roughly fairly in
  *airtime*: congestion control collapses a weak flow's window, so a slow
  connection drains very slowly itself while only consuming its share of
  air.  Latency stays attributable per connection — which is what
  latency-based routing needs — and the way weak links hurt overall
  throughput is through the *sender*: SEEP dispatches from one thread
  with blocking socket writes, so a clogged weak connection head-of-line
  blocks every tuple behind it ("the TCP and Wi-Fi rate adaptation
  protocols require the sender to lower network transmission rates ...
  which directly reduces throughput", paper Sec. VI-B-1).

RSSI regions used throughout the paper: good (> -30 dBm), fair
(-70 to -60 dBm), poor (-80 to -70 dBm).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SimulationError
from repro.simulation.engine import Event, Simulator

#: MTU-sized chunk a frame is segmented into
PACKET_BYTES = 1500

#: (rssi_dbm, goodput_bit/s, per-frame stall seconds)
RATE_TABLE: Sequence[Tuple[float, float, float]] = (
    (-30.0, 18.0e6, 0.000),
    (-50.0, 15.0e6, 0.000),
    (-60.0, 8.0e6, 0.010),
    (-65.0, 4.0e6, 0.040),
    (-70.0, 1.2e6, 0.100),
    (-75.0, 0.5e6, 0.200),
    (-80.0, 0.25e6, 0.350),
    (-90.0, 0.1e6, 0.700),
)

#: canonical RSSI values for the paper's three signal regions
RSSI_GOOD = -30.0
RSSI_FAIR = -65.0
RSSI_POOR = -75.0

SIGNAL_REGIONS = {"good": RSSI_GOOD, "fair": RSSI_FAIR, "poor": RSSI_POOR,
                  "bad": RSSI_POOR}


def rssi_for_region(region: str) -> float:
    """Map a named signal region (good/fair/poor) to a canonical RSSI."""
    try:
        return SIGNAL_REGIONS[region.lower()]
    except KeyError:
        raise SimulationError("unknown signal region %r (expected one of %r)"
                              % (region, sorted(SIGNAL_REGIONS))) from None


def _interpolate(rssi: float, column: int) -> float:
    table = RATE_TABLE
    if rssi >= table[0][0]:
        return table[0][column]
    if rssi <= table[-1][0]:
        return table[-1][column]
    for (hi_rssi, *hi_vals), (lo_rssi, *lo_vals) in zip(table, table[1:]):
        if lo_rssi <= rssi <= hi_rssi:
            span = hi_rssi - lo_rssi
            frac = (rssi - lo_rssi) / span if span else 0.0
            lo = (lo_rssi, *lo_vals)[column]
            hi = (hi_rssi, *hi_vals)[column]
            return lo + frac * (hi - lo)
    raise SimulationError("unreachable RSSI interpolation for %r" % rssi)


def goodput_for_rssi(rssi: float) -> float:
    """Effective TCP goodput in bit/s at the given RSSI."""
    return _interpolate(rssi, 1)


def stall_for_rssi(rssi: float) -> float:
    """Size-independent per-frame stall in seconds at the given RSSI."""
    return _interpolate(rssi, 2)


@dataclass
class WirelessLink:
    """State of one device's WLAN association (mutable: mobility)."""

    device_id: str
    rssi: float = RSSI_GOOD
    up: bool = True

    def set_rssi(self, rssi: float) -> None:
        self.rssi = rssi

    @property
    def goodput(self) -> float:
        return goodput_for_rssi(self.rssi)

    @property
    def stall(self) -> float:
        return stall_for_rssi(self.rssi)

    def packet_time(self, size_bytes: int = PACKET_BYTES) -> float:
        """Airtime to push one packet of *size_bytes* over this link."""
        return size_bytes * 8.0 / self.goodput

    def nominal_transfer_time(self, size_bytes: int) -> float:
        """Contention-free time to move *size_bytes* (planning helper)."""
        if size_bytes < 0:
            raise SimulationError("negative transfer size")
        return size_bytes * 8.0 / self.goodput + self.stall


class _QueuedFrame:
    """One frame sitting in a connection's send buffer."""

    __slots__ = ("size_bytes", "packets_left", "stall_pending", "delivered")

    def __init__(self, size_bytes: int, delivered: Event) -> None:
        self.size_bytes = size_bytes
        self.packets_left = max(1, math.ceil(size_bytes / PACKET_BYTES))
        self.stall_pending = True
        self.delivered = delivered


class Connection:
    """A TCP connection from a radio's owner to one destination."""

    def __init__(self, radio: "Radio", link: WirelessLink) -> None:
        self.radio = radio
        self.link = link
        self.frames: Deque[_QueuedFrame] = deque()
        self.bytes_sent = 0
        self.frames_sent = 0
        #: high-water mark of buffered frames (bounded-memory checks)
        self.max_backlog = 0
        self.airtime_vt = 0.0  # fair-queueing virtual time

    @property
    def destination_id(self) -> str:
        return self.link.device_id

    def send(self, size_bytes: int) -> Event:
        """Buffer a frame for transmission; the event fires on delivery.

        Like a socket write, this returns immediately — the radio's packet
        scheduler drains the buffer in the background.
        """
        if size_bytes <= 0:
            raise SimulationError("frame size must be positive")
        delivered = self.radio.sim.event("delivery:%s" % self.destination_id)
        frame = _QueuedFrame(size_bytes, delivered)
        was_empty = not self.frames
        self.frames.append(frame)
        self.max_backlog = max(self.max_backlog, len(self.frames))
        if was_empty:
            self.radio._activate(self)
        return delivered

    @property
    def backlog(self) -> int:
        return len(self.frames)


class Radio:
    """One device's radio: airtime-fair packet scheduler over connections.

    Each scheduling step sends one packet of the head frame of the active
    connection with the smallest cumulative airtime (start-time fair
    queueing): concurrent flows share the radio fairly in *airtime*, so a
    weak-signal connection moves few bytes in its share instead of
    dragging every other flow down with it — the net effect of TCP
    congestion control plus 802.11n aggregation.  A frame's first packet
    additionally pays the link's stall.  Cumulative airtime and bytes
    feed the Wi-Fi power model.
    """

    def __init__(self, sim: Simulator, owner_id: str) -> None:
        self.sim = sim
        self.owner_id = owner_id
        self._connections: Dict[str, Connection] = {}
        self._active: List[Connection] = []
        self._wakeup: Optional[Event] = None
        self._vtime = 0.0
        self.busy_time = 0.0
        self.bytes_sent = 0
        sim.process(self._scheduler(), name="radio:%s" % owner_id)

    def connection(self, link: WirelessLink) -> Connection:
        """The (singleton) connection toward *link*'s device."""
        conn = self._connections.get(link.device_id)
        if conn is None:
            conn = Connection(self, link)
            self._connections[link.device_id] = conn
        elif conn.link is not link:
            conn.link = link
        return conn

    def _activate(self, conn: Connection) -> None:
        # A newly busy flow joins at the current virtual time so it cannot
        # claim airtime retroactively accumulated while it was idle.
        conn.airtime_vt = max(conn.airtime_vt, self._vtime)
        self._active.append(conn)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _scheduler(self):
        while True:
            if not self._active:
                self._wakeup = self.sim.event("radio-idle:%s" % self.owner_id)
                yield self._wakeup
                self._wakeup = None
                continue
            conn = min(self._active, key=lambda c: c.airtime_vt)
            if not conn.frames:
                self._active.remove(conn)
                continue
            frame = conn.frames[0]
            packet = min(PACKET_BYTES, frame.size_bytes)
            duration = conn.link.packet_time(packet)
            if frame.stall_pending:
                duration += conn.link.stall
                frame.stall_pending = False
            self._vtime = conn.airtime_vt
            conn.airtime_vt += duration
            self.busy_time += duration
            self.bytes_sent += packet
            conn.bytes_sent += packet
            yield self.sim.timeout(duration)
            frame.packets_left -= 1
            if frame.packets_left <= 0:
                conn.frames.popleft()
                conn.frames_sent += 1
                if not frame.delivered.triggered:
                    frame.delivered.succeed()
            if not conn.frames:
                self._active.remove(conn)

    def airtime_fraction(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Network:
    """Directory of links plus per-device radios for one WLAN."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._links: Dict[str, WirelessLink] = {}
        self._radios: Dict[str, Radio] = {}

    def attach(self, device_id: str, rssi: float = RSSI_GOOD) -> WirelessLink:
        if device_id in self._links:
            raise SimulationError("device %s already attached" % device_id)
        link = WirelessLink(device_id=device_id, rssi=rssi)
        self._links[device_id] = link
        self._radios[device_id] = Radio(self.sim, device_id)
        return link

    def detach(self, device_id: str) -> None:
        self.link(device_id).up = False

    def reattach(self, device_id: str, rssi: Optional[float] = None) -> None:
        link = self.link(device_id)
        link.up = True
        if rssi is not None:
            link.rssi = rssi

    def link(self, device_id: str) -> WirelessLink:
        try:
            return self._links[device_id]
        except KeyError:
            raise SimulationError("device %s not attached" % device_id) from None

    def radio(self, device_id: str) -> Radio:
        try:
            return self._radios[device_id]
        except KeyError:
            raise SimulationError("device %s not attached" % device_id) from None

    def device_ids(self) -> List[str]:
        return sorted(self._links)
