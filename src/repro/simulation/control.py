"""Engine-side adapter for the shared LRS control plane.

The simulator drives the same :class:`~repro.core.controller.LrsController`
as the live runtime; only the three ports differ.  On the discrete-event
engine the Clock is ``sim.now`` and the Egress always succeeds
instantly: a send in the simulator is a fire-and-forget handoff to the
network model, and failure only ever manifests later as loss (an
expired in-flight entry), exactly like a silent device departure in the
paper's testbed.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import metrics as metrics_mod
from repro.core.controller import LrsController, PolicyConfig
from repro.simulation.engine import Simulator


class EngineEgress:
    """Egress port on the engine: every send succeeds at ``sim.now``.

    Delivery, loss, and delay are modeled downstream of the controller
    by the network/device processes, so the controller never observes a
    synchronous send failure here — dead-marking happens through the
    tracker's loss accounting instead.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def send(self, downstream_id: str, seq: int,
             context: Optional[object] = None) -> float:
        return self._sim.now


def engine_controller(
        sim: Simulator, config: PolicyConfig,
        registry: Optional[metrics_mod.MetricsRegistry] = None,
        name: str = "",
        trace: Optional[object] = None,
        redelivery: Optional[Callable[[int, str, object, int], None]] = None,
) -> LrsController:
    """Build an :class:`LrsController` wired to the engine's ports.

    *redelivery*, when given, is the simulation's hook for physically
    re-transmitting a replayed frame (the controller only re-books the
    send; the engine must model the bytes on the air).
    """
    return LrsController(config, clock=lambda: sim.now,
                         egress=EngineEgress(sim), registry=registry,
                         name=name, trace=trace, redelivery=redelivery)
