"""Engine-side adapter for the shared LRS control plane.

The simulator drives the same :class:`~repro.core.controller.LrsController`
as the live runtime; only the three ports differ.  On the discrete-event
engine the Clock is ``sim.now`` and the Egress always succeeds
instantly: a send in the simulator is a fire-and-forget handoff to the
network model, and failure only ever manifests later as loss (an
expired in-flight entry), exactly like a silent device departure in the
paper's testbed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import metrics as metrics_mod
from repro.core.batching import BatchConfig
from repro.core.controller import LrsController, PolicyConfig
from repro.simulation.engine import Simulator, Store
from repro.trace import TraceSink


class EngineEgress:
    """Egress port on the engine: every send succeeds at ``sim.now``.

    Delivery, loss, and delay are modeled downstream of the controller
    by the network/device processes, so the controller never observes a
    synchronous send failure here — dead-marking happens through the
    tracker's loss accounting instead.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def send(self, downstream_id: str, seq: int,
             context: Optional[object] = None) -> float:
        return self._sim.now


def engine_controller(
        sim: Simulator, config: PolicyConfig,
        registry: Optional[metrics_mod.MetricsRegistry] = None,
        name: str = "",
        trace: Optional[TraceSink] = None,
        redelivery: Optional[Callable[[int, str, object, int], None]] = None,
        tenant: str = "",
) -> LrsController:
    """Build an :class:`LrsController` wired to the engine's ports.

    *redelivery*, when given, is the simulation's hook for physically
    re-transmitting a replayed frame (the controller only re-books the
    send; the engine must model the bytes on the air).  *tenant* labels
    the controller's metrics and spans when a shared swarm runs several
    tenant pipelines.
    """
    return LrsController(config, clock=lambda: sim.now,
                         egress=EngineEgress(sim), registry=registry,
                         name=name, trace=trace, redelivery=redelivery,
                         tenant=tenant)


def collect_batch(sim: Simulator, store: Store,
                  config: BatchConfig) -> List[object]:
    """Collect one flush worth of items from *store* (engine generator).

    The engine-side mirror of the runtime dispatcher's flush policy:
    block for the first item, drain greedily up to ``max_tuples``, and
    when the batch is still short wait once for ``max_delay`` before a
    final greedy drain — so a batch closes as soon as it fills, and no
    item ever waits longer than the flush delay.

    Consume it with ``items = yield from collect_batch(...)``.
    """
    first = yield store.get()
    items = [first]
    limit = config.max_tuples
    while len(items) < limit:
        extra = store.try_get()
        if extra is None:
            break
        items.append(extra)
    if len(items) < limit and config.max_delay > 0.0:
        yield sim.timeout(config.max_delay)
        while len(items) < limit:
            extra = store.try_get()
            if extra is None:
                break
            items.append(extra)
    return items
