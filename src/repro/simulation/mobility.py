"""User mobility as RSSI-over-time traces (paper Sec. VI-C, Fig. 10).

The paper captures mobility through its effect on signal strength: a user
walking away from the AP moves the device through RSSI regions.  A
:class:`MobilityTrace` is a step function time -> RSSI; traces can be
composed per device into a :class:`MobilityPlan` that the swarm simulation
replays.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SimulationError
from repro.simulation.network import rssi_for_region


@dataclass
class MobilityTrace:
    """Piecewise-constant RSSI schedule for one device.

    ``steps`` is a sorted sequence of ``(start_time, rssi)`` pairs; the
    first entry must start at time 0.
    """

    device_id: str
    steps: Sequence[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.steps:
            raise SimulationError("mobility trace needs at least one step")
        times = [when for when, _ in self.steps]
        if times[0] != 0.0:
            raise SimulationError("mobility trace must start at t=0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise SimulationError("mobility trace times must strictly increase")

    @classmethod
    def stationary(cls, device_id: str, rssi: float) -> "MobilityTrace":
        return cls(device_id=device_id, steps=((0.0, rssi),))

    @classmethod
    def walk(cls, device_id: str, regions: Sequence[str],
             dwell: float) -> "MobilityTrace":
        """Visit named signal regions in order, *dwell* seconds in each.

        ``walk("G", ["good", "fair", "poor"], 60)`` reproduces the Fig. 10
        schedule: one minute per region, walking away from the AP.
        """
        if dwell <= 0:
            raise SimulationError("dwell time must be positive")
        steps = [(index * dwell, rssi_for_region(region))
                 for index, region in enumerate(regions)]
        return cls(device_id=device_id, steps=tuple(steps))

    def rssi_at(self, when: float) -> float:
        """RSSI in effect at time *when*."""
        if when < 0:
            raise SimulationError("time must be non-negative")
        times = [start for start, _ in self.steps]
        index = bisect.bisect_right(times, when) - 1
        return self.steps[index][1]

    def change_points(self) -> List[Tuple[float, float]]:
        """All ``(time, rssi)`` transitions after t=0."""
        return [(when, rssi) for when, rssi in self.steps if when > 0.0]


@dataclass
class MobilityPlan:
    """Per-device mobility traces for one experiment."""

    traces: Dict[str, MobilityTrace] = field(default_factory=dict)

    def add(self, trace: MobilityTrace) -> "MobilityPlan":
        if trace.device_id in self.traces:
            raise SimulationError("duplicate trace for %s" % trace.device_id)
        self.traces[trace.device_id] = trace
        return self

    def initial_rssi(self, device_id: str, default: float) -> float:
        trace = self.traces.get(device_id)
        if trace is None:
            return default
        return trace.rssi_at(0.0)

    def events(self) -> List[Tuple[float, str, float]]:
        """All RSSI transitions as ``(time, device_id, rssi)``, sorted."""
        events = []
        for device_id, trace in self.traces.items():
            for when, rssi in trace.change_points():
                events.append((when, device_id, rssi))
        return sorted(events)
