"""Core dataflow model and resource-management algorithms (the paper's contribution)."""

from repro.core.controller import AckResult, LrsController, PolicyConfig
from repro.core.delivery import (AT_LEAST_ONCE, BEST_EFFORT, ChurnEvent,
                                 ChurnSchedule, DedupWindow, DeliveryConfig,
                                 ReplayBuffer, ReplayEntry)
from repro.core.exceptions import (DeploymentError, DiscoveryError, GraphError,
                                   GraphValidationError, PolicyError,
                                   RoutingError, RuntimeStateError, SchemaError,
                                   SerializationError, SimulationError,
                                   SwingError)
from repro.core.function_unit import (CollectingSink, FunctionUnit,
                                      IterableSource, LambdaUnit,
                                      ReorderingSink, SinkUnit, SourceUnit,
                                      UnitContext)
from repro.core.graph import AppGraph, FunctionUnitSpec, GraphBuilder
from repro.core.latency import (AckTracker, DownstreamStats, EwmaEstimator,
                                MovingAverageEstimator, RateMeter,
                                make_estimator)
from repro.core.policies import (POLICY_NAMES, PolicyDecision, RoutingPolicy,
                                 make_policy)
from repro.core.reorder import PlaybackRecord, ReorderBuffer
from repro.core.requirements import SMOOTH_VIDEO_FPS, PerformanceRequirement
from repro.core.routing import RoundRobinCycler, RoutingTable, normalize_weights
from repro.core.selection import WorkerSelector, select_all, select_min_prefix
from repro.core.tuples import DataTuple, HopTiming, TupleSchema, make_stream

__all__ = [
    "AT_LEAST_ONCE", "AckResult", "AppGraph", "AckTracker", "BEST_EFFORT",
    "ChurnEvent", "ChurnSchedule", "CollectingSink", "DataTuple",
    "DedupWindow", "DeliveryConfig",
    "DeploymentError", "DiscoveryError", "DownstreamStats", "EwmaEstimator",
    "FunctionUnit", "FunctionUnitSpec", "GraphBuilder", "GraphError",
    "GraphValidationError", "HopTiming", "IterableSource", "LambdaUnit",
    "LrsController",
    "MovingAverageEstimator", "POLICY_NAMES", "PerformanceRequirement",
    "PlaybackRecord", "PolicyConfig", "PolicyDecision", "PolicyError",
    "RateMeter",
    "ReorderBuffer", "ReorderingSink", "ReplayBuffer", "ReplayEntry",
    "RoundRobinCycler", "RoutingError",
    "RoutingPolicy",
    "RoutingTable", "RuntimeStateError", "SMOOTH_VIDEO_FPS", "SchemaError",
    "SerializationError", "SimulationError", "SinkUnit", "SourceUnit",
    "SwingError", "TupleSchema", "UnitContext", "WorkerSelector",
    "make_estimator", "make_policy", "make_stream", "normalize_weights",
    "select_all", "select_min_prefix",
]
