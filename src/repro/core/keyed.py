"""Key-range partitioning for keyed stateful operators.

SWARM-style adaptive key-range load balancing (PAPERS.md): tuples carry an
optional string key, keys hash into a fixed 16-bit key space, and contiguous
key ranges map to downstream owners.  The range table lives beside LRS in
the shared :class:`~repro.core.controller.LrsController` so both substrates
(threaded runtime and discrete-event simulator) route keyed tuples
identically.  Hot-range detection reuses the sliding-window rate meters LRS
already keeps per edge; a range whose observed rate exceeds its fair share
of the edge rate is split, and the half that moves is migrated to a new
owner through the graceful-drain path (pause -> drain -> snapshot ->
install -> flip routing).
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import PolicyError, RuntimeStateError
from repro.core.latency import RateMeter

#: Size of the hashed key space.  16 bits keeps range boundaries compact in
#: checkpoints while leaving plenty of resolution for splitting.
KEY_SPACE = 1 << 16

#: Reasons recorded on ``swing_key_range_moves_total``.
MOVE_HOT_SPLIT = "hot_split"
MOVE_DRAIN = "drain"
MOVE_CRASH = "crash"


def hash_key(key: str) -> int:
    """Map *key* into ``[0, KEY_SPACE)`` with a process-stable hash.

    CRC32, not :func:`hash` — Python's string hash is randomised per
    process, and routing must agree across workers, masters, and
    recovered masters.
    """
    return zlib.crc32(key.encode("utf-8")) % KEY_SPACE


@dataclass(frozen=True)
class KeyRange:
    """A half-open interval ``[lo, hi)`` of the hashed key space."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= KEY_SPACE):
            raise PolicyError("invalid key range [%r, %r)" % (self.lo, self.hi))

    def contains(self, key_hash: int) -> bool:
        return self.lo <= key_hash < self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def split(self) -> Tuple["KeyRange", "KeyRange"]:
        """Halve the range.  Raises when it is a single slot already."""
        if self.width < 2:
            raise PolicyError("cannot split unit key range %r" % (self,))
        mid = self.lo + self.width // 2
        return KeyRange(self.lo, mid), KeyRange(mid, self.hi)


@dataclass(frozen=True)
class KeyedConfig:
    """Knobs for keyed routing and hot-range splitting.

    ``key_count``/``zipf_alpha`` describe the synthetic keyed workload
    (simulator sources and the skew scenario); the remaining fields tune
    the splitter.  ``hot_ratio`` is the multiple of a range's fair share
    of the edge rate above which it is considered hot.
    """

    key_count: int = 0
    zipf_alpha: float = 0.0
    split_enabled: bool = True
    hot_ratio: float = 2.0
    min_split_interval: float = 1.0
    max_splits: int = 8
    min_range_width: int = 2
    rate_window: float = 1.0

    def validate(self) -> None:
        if self.key_count < 0:
            raise PolicyError("key_count must be >= 0")
        if self.zipf_alpha < 0:
            raise PolicyError("zipf_alpha must be >= 0")
        if self.hot_ratio <= 1.0:
            raise PolicyError("hot_ratio must be > 1")
        if self.min_split_interval < 0:
            raise PolicyError("min_split_interval must be >= 0")
        if self.max_splits < 0:
            raise PolicyError("max_splits must be >= 0")
        if self.min_range_width < 2:
            raise PolicyError("min_range_width must be >= 2")
        if self.rate_window <= 0:
            raise PolicyError("rate_window must be positive")


class KeyRangeTable:
    """Sorted, non-overlapping key ranges mapped to downstream owners.

    The table is consulted on every keyed dispatch, so owner lookup is a
    single bisect over the range starts.  A *paused* range has no
    routable owner: keyed dispatch parks those tuples in the replay
    buffer (retained unassigned) until the range is resumed — that pause
    is what makes a mid-migration handoff lossless under at-least-once
    delivery.
    """

    def __init__(self) -> None:
        self._los: List[int] = []
        self._ranges: List[KeyRange] = []
        self._owners: List[str] = []
        self._paused: Dict[KeyRange, bool] = {}
        self.splits = 0

    # -- construction ----------------------------------------------------
    @classmethod
    def bootstrap(cls, owners: Sequence[str]) -> "KeyRangeTable":
        """Partition the key space evenly across *owners* (sorted order)."""
        if not owners:
            raise PolicyError("key range table needs at least one owner")
        table = cls()
        ordered = sorted(owners)
        step = KEY_SPACE // len(ordered)
        lo = 0
        for index, owner in enumerate(ordered):
            hi = KEY_SPACE if index == len(ordered) - 1 else lo + step
            table.assign(KeyRange(lo, hi), owner)
            lo = hi
        return table

    def assign(self, key_range: KeyRange, owner: str) -> None:
        """Add or re-own a range.  New ranges must not overlap existing."""
        index = bisect.bisect_left(self._los, key_range.lo)
        if index < len(self._ranges) and self._ranges[index] == key_range:
            self._owners[index] = owner
            return
        if index < len(self._ranges) and key_range.hi > self._ranges[index].lo:
            raise RuntimeStateError("overlapping key range %r" % (key_range,))
        if index > 0 and self._ranges[index - 1].hi > key_range.lo:
            raise RuntimeStateError("overlapping key range %r" % (key_range,))
        self._los.insert(index, key_range.lo)
        self._ranges.insert(index, key_range)
        self._owners.insert(index, owner)

    # -- lookup ----------------------------------------------------------
    def range_of(self, key_hash: int) -> Optional[KeyRange]:
        index = bisect.bisect_right(self._los, key_hash) - 1
        if index < 0:
            return None
        candidate = self._ranges[index]
        return candidate if candidate.contains(key_hash) else None

    def owner_of(self, key_hash: int) -> Optional[str]:
        """Owner for *key_hash*, or ``None`` when unowned or paused."""
        index = bisect.bisect_right(self._los, key_hash) - 1
        if index < 0 or not self._ranges[index].contains(key_hash):
            return None
        if self._paused.get(self._ranges[index]):
            return None
        return self._owners[index]

    def owner(self, key_range: KeyRange) -> Optional[str]:
        index = bisect.bisect_left(self._los, key_range.lo)
        if index < len(self._ranges) and self._ranges[index] == key_range:
            return self._owners[index]
        return None

    def ranges(self) -> Tuple[Tuple[KeyRange, str], ...]:
        return tuple(zip(self._ranges, self._owners))

    def ranges_owned_by(self, owner: str) -> Tuple[KeyRange, ...]:
        return tuple(r for r, o in zip(self._ranges, self._owners)
                     if o == owner)

    def is_paused(self, key_range: KeyRange) -> bool:
        return bool(self._paused.get(key_range))

    # -- mutation --------------------------------------------------------
    def split(self, key_range: KeyRange) -> Tuple[KeyRange, KeyRange]:
        """Split an owned range in place; both halves keep the old owner."""
        index = bisect.bisect_left(self._los, key_range.lo)
        if index >= len(self._ranges) or self._ranges[index] != key_range:
            raise RuntimeStateError("unknown key range %r" % (key_range,))
        owner = self._owners[index]
        left, right = key_range.split()
        paused = self._paused.pop(key_range, False)
        self._los[index:index + 1] = [left.lo, right.lo]
        self._ranges[index:index + 1] = [left, right]
        self._owners[index:index + 1] = [owner, owner]
        if paused:
            self._paused[left] = True
            self._paused[right] = True
        self.splits += 1
        return left, right

    def pause(self, key_range: KeyRange) -> None:
        if self.owner(key_range) is None:
            raise RuntimeStateError("cannot pause unknown range %r"
                                    % (key_range,))
        self._paused[key_range] = True

    def resume(self, key_range: KeyRange) -> None:
        self._paused.pop(key_range, None)

    # -- checkpoint ------------------------------------------------------
    def snapshot(self) -> Tuple[Tuple[int, int, str], ...]:
        """Plain-data view for the control-plane checkpoint.

        Pauses are transient migration state and deliberately not
        captured: a recovered master resumes with every range routable.
        """
        return tuple((r.lo, r.hi, owner)
                     for r, owner in zip(self._ranges, self._owners))

    @classmethod
    def restore(cls, entries: Iterable[Tuple[int, int, str]]) \
            -> "KeyRangeTable":
        table = cls()
        for lo, hi, owner in entries:
            table.assign(KeyRange(int(lo), int(hi)), str(owner))
        return table


@dataclass
class _RangeMeter:
    meter: RateMeter
    last_split: float = field(default=0.0)


class HotRangeDetector:
    """Flags key ranges whose rate exceeds their fair share of the edge.

    Fed from the keyed dispatch path with the same timestamps the LRS
    rate meter sees, so detection and routing agree on what "load" means.
    A range is hot when its rate is at least ``hot_ratio`` times the
    edge rate divided by the number of live owners, it is wide enough to
    split, and the per-detector cooldown has elapsed.
    """

    def __init__(self, config: KeyedConfig) -> None:
        config.validate()
        self._config = config
        self._meters: Dict[KeyRange, RateMeter] = {}
        self._edge = RateMeter(window=config.rate_window)
        self._last_split: Optional[float] = None
        self.splits = 0

    def observe(self, key_range: Optional[KeyRange], now: float) -> None:
        self._edge.observe(now)
        if key_range is None:
            return
        meter = self._meters.get(key_range)
        if meter is None:
            meter = self._meters[key_range] = RateMeter(
                window=self._config.rate_window)
        meter.observe(now)

    def forget(self, key_range: KeyRange) -> None:
        self._meters.pop(key_range, None)

    def hottest(self, now: float, table: KeyRangeTable,
                owners: int) -> Optional[Tuple[KeyRange, float]]:
        """The hot range most above its fair share, or ``None``.

        *owners* is the number of live downstream owners: the fair share
        of a perfectly balanced table is ``edge_rate / owners``.
        """
        if not self._config.split_enabled or owners < 1:
            return None
        if self.splits >= self._config.max_splits:
            return None
        if (self._last_split is not None
                and now - self._last_split < self._config.min_split_interval):
            return None
        edge_rate = self._edge.rate(now)
        if edge_rate <= 0:
            return None
        threshold = self._config.hot_ratio * edge_rate / owners
        best: Optional[Tuple[KeyRange, float]] = None
        for key_range, meter in self._meters.items():
            if key_range.width < self._config.min_range_width:
                continue
            if table.owner(key_range) is None or table.is_paused(key_range):
                continue
            rate = meter.rate(now)
            if rate < threshold:
                continue
            if best is None or rate > best[1]:
                best = (key_range, rate)
        return best

    def mark_split(self, now: float) -> None:
        self._last_split = now
        self.splits += 1


def zipf_weights(count: int, alpha: float) -> Tuple[float, ...]:
    """Normalised Zipf(alpha) probabilities over ranks ``1..count``."""
    if count < 1:
        raise PolicyError("zipf weight count must be >= 1")
    if alpha < 0:
        raise PolicyError("zipf alpha must be >= 0")
    raw = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
    total = sum(raw)
    return tuple(weight / total for weight in raw)
