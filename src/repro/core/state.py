"""Partitioned operator state for keyed function units.

State is held per-(tenant, unit) behind the :class:`StateStore` port and
addressed by tuple key; the hashed key space partitions each store into
key ranges (``repro.core.keyed``), which is the unit of migration.  On a
hot-range split or a graceful drain, the moving range's entries are
extracted, carried as a versioned snapshot frame through the hardened
codec, and installed on the new owner — the same strict decode rules as
the control-plane checkpoint (unknown fields and foreign versions fail
loudly) protect the handoff.

Two stateful primitives cover the paper's sensing workloads: tumbling
windowed aggregation and per-key sessions.  Both keep their working state
*inside* the store they are built on, so migrating the store migrates
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.exceptions import (PolicyError, RuntimeStateError,
                                   SerializationError)
from repro.core.keyed import KeyRange, hash_key

#: wire version of the state-snapshot frame; bump on layout change
STATE_SNAPSHOT_VERSION = 1

_SNAPSHOT_FIELDS = frozenset({"version", "tenant", "unit", "lo", "hi",
                              "entries"})


class StateStore:
    """Port for per-key operator state owned by one (tenant, unit).

    ``load``/``store``/``delete``/``keys`` are the backend surface;
    range extraction and installation are implemented on the port so
    every backend migrates identically.
    """

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def store(self, key: str, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.keys())

    # -- migration surface ----------------------------------------------
    def extract_range(self, key_range: KeyRange) \
            -> Tuple[Tuple[str, Dict[str, Any]], ...]:
        """Remove and return every entry whose key hashes into the range."""
        moved = []
        for key in self.keys():
            if key_range.contains(hash_key(key)):
                state = self.load(key)
                if state is not None:
                    moved.append((key, state))
                self.delete(key)
        return tuple(moved)

    def install(self, entries: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        """Adopt entries extracted from a previous owner."""
        for key, state in entries:
            existing = self.load(key)
            if existing is not None:
                raise RuntimeStateError(
                    "state install collides on key %r" % key)
            self.store(key, state)


class InMemoryStateStore(StateStore):
    """Dict-backed store — the default for both substrates."""

    def __init__(self) -> None:
        self._states: Dict[str, Dict[str, Any]] = {}

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        return self._states.get(key)

    def store(self, key: str, state: Dict[str, Any]) -> None:
        self._states[key] = state

    def delete(self, key: str) -> None:
        self._states.pop(key, None)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._states)

    def __len__(self) -> int:
        return len(self._states)


@dataclass(frozen=True)
class WindowAggregate:
    """One closed tumbling window for one key."""

    key: str
    window_start: float
    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class WindowAggregator:
    """Per-key tumbling-window aggregation over a :class:`StateStore`.

    ``observe`` folds one sample into the key's current window and
    returns the previous window once the clock crosses a boundary —
    classic per-user rate/mean aggregation for sensing streams.
    """

    def __init__(self, store: StateStore, window: float) -> None:
        if window <= 0:
            raise RuntimeStateError("aggregation window must be positive")
        self._store = store
        self._window = window

    @property
    def store(self) -> StateStore:
        return self._store

    def observe(self, key: str, value: float,
                now: float) -> Optional[WindowAggregate]:
        slot = int(now // self._window)
        state = self._store.load(key)
        closed: Optional[WindowAggregate] = None
        if state is not None and state["slot"] != slot:
            closed = self._aggregate(key, state)
            state = None
        if state is None:
            state = {"slot": slot, "count": 0, "total": 0.0,
                     "min": value, "max": value}
        state["count"] += 1
        state["total"] += value
        state["min"] = min(state["min"], value)
        state["max"] = max(state["max"], value)
        self._store.store(key, state)
        return closed

    def flush(self, key: str) -> Optional[WindowAggregate]:
        """Close and return the key's open window, if any."""
        state = self._store.load(key)
        if state is None:
            return None
        self._store.delete(key)
        return self._aggregate(key, state)

    def _aggregate(self, key: str, state: Dict[str, Any]) -> WindowAggregate:
        return WindowAggregate(key=key,
                               window_start=state["slot"] * self._window,
                               count=state["count"], total=state["total"],
                               minimum=state["min"], maximum=state["max"])


@dataclass(frozen=True)
class SessionSummary:
    """One closed per-key session."""

    key: str
    started: float
    ended: float
    events: int

    @property
    def duration(self) -> float:
        return self.ended - self.started


class SessionTracker:
    """Per-key session windows with an inactivity gap, over a store.

    An event extends the key's open session; a gap longer than
    ``timeout`` closes it and the closed session is returned with the
    next event (or via :meth:`flush`).
    """

    def __init__(self, store: StateStore, timeout: float) -> None:
        if timeout <= 0:
            raise RuntimeStateError("session timeout must be positive")
        self._store = store
        self._timeout = timeout

    @property
    def store(self) -> StateStore:
        return self._store

    def observe(self, key: str, now: float) -> Optional[SessionSummary]:
        state = self._store.load(key)
        closed: Optional[SessionSummary] = None
        if state is not None and now - state["last"] > self._timeout:
            closed = SessionSummary(key=key, started=state["started"],
                                    ended=state["last"],
                                    events=state["events"])
            state = None
        if state is None:
            state = {"started": now, "last": now, "events": 0}
        state["last"] = now
        state["events"] += 1
        self._store.store(key, state)
        return closed

    def flush(self, key: str) -> Optional[SessionSummary]:
        state = self._store.load(key)
        if state is None:
            return None
        self._store.delete(key)
        return SessionSummary(key=key, started=state["started"],
                              ended=state["last"], events=state["events"])


@dataclass(frozen=True)
class StateSnapshot:
    """The unit of state migration: one key range of one (tenant, unit)."""

    tenant: str
    unit: str
    key_range: KeyRange
    entries: Tuple[Tuple[str, Dict[str, Any]], ...]


def snapshot_range(store: StateStore, tenant: str, unit: str,
                   key_range: KeyRange) -> StateSnapshot:
    """Extract the range from *store* into a migratable snapshot."""
    return StateSnapshot(tenant=tenant, unit=unit, key_range=key_range,
                         entries=store.extract_range(key_range))


def install_snapshot(store: StateStore, snapshot: StateSnapshot) -> None:
    store.install(snapshot.entries)


def encode_state_snapshot(snapshot: StateSnapshot) -> bytes:
    from repro.runtime.serialization import encode_value
    return encode_value({
        "version": STATE_SNAPSHOT_VERSION,
        "tenant": snapshot.tenant,
        "unit": snapshot.unit,
        "lo": snapshot.key_range.lo,
        "hi": snapshot.key_range.hi,
        "entries": [[key, dict(state)] for key, state in snapshot.entries],
    })


def decode_state_snapshot(data: bytes) -> StateSnapshot:
    """Strict decode — the migration analogue of the checkpoint decoder.

    Installing a silently-truncated snapshot would corrupt per-key state
    on the new owner, so unknown fields and foreign versions are errors.
    """
    from repro.runtime.serialization import decode_value
    decoded = decode_value(data)
    if not isinstance(decoded, dict):
        raise SerializationError("state snapshot is not a mapping")
    unknown = set(decoded) - _SNAPSHOT_FIELDS
    if unknown:
        raise SerializationError(
            "state snapshot carries unknown fields %s (version skew?)"
            % sorted(unknown))
    version = decoded.get("version")
    if version != STATE_SNAPSHOT_VERSION:
        raise SerializationError(
            "state snapshot version %r not supported (want %d)"
            % (version, STATE_SNAPSHOT_VERSION))
    try:
        tenant = decoded.get("tenant", "")
        unit = decoded.get("unit", "")
        key_range = KeyRange(decoded["lo"], decoded["hi"])
        entries = tuple((str(key), dict(state))
                        for key, state in decoded.get("entries", []))
    except (TypeError, ValueError, KeyError, IndexError,
            PolicyError) as error:
        raise SerializationError("malformed state snapshot: %s" % error) \
            from error
    if not isinstance(tenant, str) or not isinstance(unit, str) or not unit:
        raise SerializationError("state snapshot tenant/unit must be strings "
                                 "(unit non-empty)")
    for key, _ in entries:
        if not key_range.contains(hash_key(key)):
            raise SerializationError(
                "state snapshot entry %r outside range %r"
                % (key, key_range))
    return StateSnapshot(tenant=tenant, unit=unit, key_range=key_range,
                         entries=entries)
