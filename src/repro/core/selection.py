"""Worker Selection (paper Sec. V-A).

Given service-rate estimates ``mu_i = 1/L_i`` and the measured input rate
``Lambda``, select the *minimum* number of downstream function units, taken
fastest-first, whose summed service rate meets the input rate.  If even all
units together cannot meet the rate, select all of them.

Sorting fastest-first avoids stragglers; selecting the minimum subset
minimises the compute resources (and therefore energy) in use.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def select_min_prefix(rates: Mapping[str, float], target_rate: float) -> List[str]:
    """Return the minimal fastest-first prefix whose rates sum to the target.

    ``rates`` maps downstream id -> service rate (tuples/second).  Ties are
    broken by id so the selection is deterministic.  A non-positive target
    selects the single fastest unit (some work must flow somewhere).
    """
    if not rates:
        return []
    ordered = sorted(rates, key=lambda key: (-rates[key], key))
    if target_rate <= 0.0:
        return ordered[:1]
    selected: List[str] = []
    total = 0.0
    for downstream_id in ordered:
        selected.append(downstream_id)
        total += rates[downstream_id]
        if total >= target_rate:
            return selected
    return ordered  # sum rate constraint unsatisfiable: select everything


def select_all(rates: Mapping[str, float], target_rate: float) -> List[str]:
    """Degenerate selector used by the no-selection policies (RR/PR/LR)."""
    return sorted(rates)


class WorkerSelector:
    """Stateful selector handling units with no rate estimate yet.

    Units without any latency sample (just joined, or long unselected) are
    *optimistically included*: the paper handles this by periodically
    probing in round-robin mode, and a new device must receive some tuples
    before it can ever be measured.
    """

    def __init__(self, use_selection: bool = True) -> None:
        self._use_selection = use_selection

    def select(self, rates: Dict[str, Optional[float]], target_rate: float) -> List[str]:
        known = {key: value for key, value in rates.items() if value is not None}
        unknown = sorted(key for key, value in rates.items() if value is None)
        if not self._use_selection:
            return sorted(rates)
        chosen = select_min_prefix(known, target_rate)
        known_total = sum(known[key] for key in chosen)
        if known_total < target_rate:
            # Cannot meet the rate with measured units alone: include the
            # unmeasured ones too rather than leaving capacity idle.
            return sorted(set(chosen) | set(unknown))
        return sorted(set(chosen) | set(unknown)) if not known else chosen
