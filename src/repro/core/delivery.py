"""Delivery semantics under churn: replay, dedup and churn schedules.

Swing's swarm is made of *mobile* devices, so membership churn is the
normal case rather than the failure case.  Best-effort delivery (the
historical behaviour) simply charges a tuple that was sitting in a
departed worker's mailbox to ``swing_tuples_lost_total``.  This module
supplies the pieces that upgrade an edge to configurable
**at-least-once** delivery:

``DeliveryConfig``
    Frozen knob bundle selecting the mode and sizing the buffers.

``ReplayBuffer``
    Upstream retention of sent-but-un-ACKed tuples, bounded by count
    *and* bytes.  When a downstream dies (or gracefully leaves) the
    controller pops the entries assigned to it and redelivers each to a
    surviving member.  Eviction is never silent: every discarded entry
    increments ``swing_replay_evicted_total{reason=...}``.

``DedupWindow``
    Bounded seen-window used by sinks (and relay workers) so
    at-least-once redelivery cannot double-count throughput/accuracy.

``ChurnSchedule`` / ``ChurnEvent``
    A seeded, replayable list of join/leave/kill/rejoin events consumed
    identically by the discrete-event simulator and the runtime chaos
    harness — the same schedule drives both substrates so their
    behaviour can be compared on equal terms.

Everything here is substrate-neutral: no SimPy, no threads beyond a
plain lock, and time always arrives as an argument.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import (Deque, Hashable, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError

#: delivery modes
BEST_EFFORT = "best_effort"
AT_LEAST_ONCE = "at_least_once"
_MODES = frozenset({BEST_EFFORT, AT_LEAST_ONCE})

#: churn schedule actions
CHURN_JOIN = "join"
CHURN_LEAVE = "leave"    # graceful: LEAVING handshake, drain, depart
CHURN_KILL = "kill"      # abrupt: silent crash, detected by timeouts
CHURN_REJOIN = "rejoin"  # previously departed device comes back
# control-plane / link events (device_id names the master or an "a>b" link);
# these do not move worker membership, so validate() skips their bookkeeping
CHURN_KILL_MASTER = "kill_master"        # abrupt master crash
CHURN_RESTART_MASTER = "restart_master"  # recovered master, next epoch
CHURN_PARTITION = "partition"            # sever a directed link
CHURN_HEAL = "heal"                      # heal a partitioned link
_ACTIONS = frozenset({CHURN_JOIN, CHURN_LEAVE, CHURN_KILL, CHURN_REJOIN,
                      CHURN_KILL_MASTER, CHURN_RESTART_MASTER,
                      CHURN_PARTITION, CHURN_HEAL})
_CONTROL_ACTIONS = frozenset({CHURN_KILL_MASTER, CHURN_RESTART_MASTER,
                              CHURN_PARTITION, CHURN_HEAL})

#: replay eviction reasons (``swing_replay_evicted_total{reason=...}``)
EVICT_CAPACITY = "capacity"
EVICT_BYTES = "bytes"
EVICT_ATTEMPTS = "attempts"
EVICT_EXPIRED = "expired"
EVICT_SHED = "shed"


@dataclass(frozen=True)
class DeliveryConfig:
    """Knobs for the delivery-semantics subsystem of one edge.

    ``mode``
        ``"best_effort"`` (historical behaviour: no retention, no
        dedup) or ``"at_least_once"`` (replay + redelivery + dedup).
    ``replay_capacity``
        Maximum number of un-ACKed tuples retained for replay.
    ``replay_bytes``
        Optional byte bound on retained payloads (``None`` = count
        bound only).  Whichever bound trips first evicts the oldest
        entry — overload protection always wins over retention.
    ``max_delivery_attempts``
        Total delivery attempts per tuple including the first send;
        a tuple that exhausts its attempts is evicted (counted), not
        retried forever.
    ``redelivery_timeout``
        Age after which a retained-but-unacked entry is swept into
        redelivery even without an explicit death signal.  ``None``
        falls back to the controller's ``ack_timeout``.
    ``dedup_window``
        Size of the sink-side seen-window; duplicates older than the
        window may be double-delivered (at-least-once, not exactly-once).
    """

    mode: str = BEST_EFFORT
    replay_capacity: int = 256
    replay_bytes: Optional[int] = None
    max_delivery_attempts: int = 4
    redelivery_timeout: Optional[float] = None
    dedup_window: int = 1024

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise RuntimeStateError("unknown delivery mode %r (want one of %s)"
                                  % (self.mode, sorted(_MODES)))
        if self.replay_capacity < 1:
            raise RuntimeStateError("replay_capacity must be >= 1")
        if self.replay_bytes is not None and self.replay_bytes < 1:
            raise RuntimeStateError("replay_bytes must be >= 1 when set")
        if self.max_delivery_attempts < 1:
            raise RuntimeStateError("max_delivery_attempts must be >= 1")
        if (self.redelivery_timeout is not None
                and self.redelivery_timeout <= 0):
            raise RuntimeStateError("redelivery_timeout must be positive")
        if self.dedup_window < 1:
            raise RuntimeStateError("dedup_window must be >= 1")

    @property
    def at_least_once(self) -> bool:
        return self.mode == AT_LEAST_ONCE


@dataclass
class ReplayEntry:
    """One retained tuple awaiting its ACK."""

    seq: int
    downstream: Optional[str]  # None = not currently assigned anywhere
    context: object            # opaque payload (bytes / sim frame)
    nbytes: int
    attempt: int               # delivery attempts spent so far (>= 1)
    sent_at: float
    deadline: Optional[float]


class ReplayBuffer:
    """Bounded retention of un-ACKed tuples for at-least-once replay.

    Entries are keyed by ``seq`` and kept in insertion order.  Both
    bounds (count and bytes) are enforced on every ``retain``; when a
    bound trips, expired entries go first, then the oldest — and every
    eviction increments ``swing_replay_evicted_total{reason=...}`` so
    retention loss is observable, never silent.
    """

    def __init__(self, config: DeliveryConfig,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 name: str = "") -> None:
        self.config = config
        self.name = name
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self._registry = registry if registry is not None \
            else metrics_mod.MetricsRegistry()
        self._entries: "OrderedDict[int, ReplayEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # -- retention ---------------------------------------------------------
    def retain(self, seq: int, downstream: Optional[str], context: object,
               now: float, deadline: Optional[float] = None,
               attempt: int = 1, nbytes: Optional[int] = None) -> None:
        """Remember *seq* until it is ACKed, evicting to stay in bounds."""
        if nbytes is None:
            if isinstance(context, (bytes, bytearray, memoryview)):
                nbytes = len(context)
            elif isinstance(context, (tuple, list)):
                # A batched retention's context is its member frames;
                # the batch weighs what its members weigh.
                nbytes = sum(int(getattr(item, "nbytes", 0) or 0)
                             for item in context)
            else:
                nbytes = int(getattr(context, "nbytes", 0) or 0)
        with self._lock:
            stale = self._entries.pop(seq, None)
            if stale is not None:
                self._bytes -= stale.nbytes
            entry = ReplayEntry(seq=seq, downstream=downstream,
                                context=context, nbytes=int(nbytes),
                                attempt=attempt, sent_at=now,
                                deadline=deadline)
            self._entries[seq] = entry
            self._bytes += entry.nbytes
            self._enforce_bounds(now, keep=seq)

    def _enforce_bounds(self, now: float, keep: int) -> None:
        """Evict (expired first, then oldest) until both bounds hold."""
        while len(self._entries) > self.config.replay_capacity:
            self._evict_one(now, keep, EVICT_CAPACITY)
        if self.config.replay_bytes is None:
            return
        while self._bytes > self.config.replay_bytes \
                and len(self._entries) > 1:
            self._evict_one(now, keep, EVICT_BYTES)

    def _evict_one(self, now: float, keep: int, reason: str) -> None:
        victim = None
        for entry in self._entries.values():
            if entry.seq == keep:
                continue
            if entry.deadline is not None and now > entry.deadline:
                victim = entry
                reason = EVICT_EXPIRED
                break
        if victim is None:
            for entry in self._entries.values():
                if entry.seq != keep:
                    victim = entry
                    break
        if victim is None:  # only the just-retained entry remains
            victim = self._entries[keep]
        self._pop_locked(victim.seq)
        self._count_eviction(victim, reason)

    def _pop_locked(self, seq: int) -> Optional[ReplayEntry]:
        entry = self._entries.pop(seq, None)
        if entry is not None:
            self._bytes -= entry.nbytes
        return entry

    def _count_eviction(self, entry: ReplayEntry, reason: str) -> None:
        self._registry.increment(metrics_mod.REPLAY_EVICTED_TOTAL,
                                 reason=reason, edge=self.name)

    # -- release / takeover ------------------------------------------------
    def release(self, seq: int) -> bool:
        """Drop *seq* because its ACK arrived.  True if it was held."""
        with self._lock:
            return self._pop_locked(seq) is not None

    def evict(self, seq: int, reason: str) -> bool:
        """Drop *seq* for *reason* (shed, attempts, ...), counting it."""
        with self._lock:
            entry = self._pop_locked(seq)
        if entry is None:
            return False
        self._count_eviction(entry, reason)
        return True

    def discard(self, entry: ReplayEntry, reason: str) -> None:
        """Count giving up on an already-popped *entry* for *reason*."""
        self._count_eviction(entry, reason)

    def holds(self, seq: int) -> bool:
        with self._lock:
            return seq in self._entries

    def take_for(self, downstream: str) -> List[ReplayEntry]:
        """Pop every entry assigned to *downstream* (its crash/leave)."""
        with self._lock:
            taken = [entry for entry in self._entries.values()
                     if entry.downstream == downstream]
            for entry in taken:
                self._pop_locked(entry.seq)
        return taken

    def take_stale(self, cutoff: float) -> List[ReplayEntry]:
        """Pop entries sent at or before *cutoff* (ACK overdue).

        Unassigned entries (``downstream is None`` — retained while no
        live member existed) are always considered stale: they are
        waiting for the next sweep to find them a home.
        """
        with self._lock:
            taken = [entry for entry in self._entries.values()
                     if entry.downstream is None or entry.sent_at <= cutoff]
            for entry in taken:
                self._pop_locked(entry.seq)
        return taken

    # -- introspection -----------------------------------------------------
    def entries(self) -> List[ReplayEntry]:
        """Snapshot of retained entries, oldest first (checkpointing)."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes


class DedupWindow:
    """Bounded set of recently seen keys (check-and-insert).

    ``seen(key)`` returns True when *key* was already observed inside
    the window (a duplicate) and False otherwise, recording it either
    way.  The window holds the last ``capacity`` distinct keys; beyond
    that, at-least-once degrades gracefully to possible re-delivery of
    very old tuples — which is the contract, not exactly-once.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise RuntimeStateError("dedup window capacity must be >= 1")
        self.capacity = capacity
        self._order: Deque[Hashable] = deque()
        self._keys: Set[Hashable] = set()
        self.duplicates = 0
        self._lock = threading.Lock()

    def seen(self, key: Hashable) -> bool:
        with self._lock:
            if key in self._keys:
                self.duplicates += 1
                return True
            self._keys.add(key)
            self._order.append(key)
            while len(self._order) > self.capacity:
                evicted = self._order.popleft()
                self._keys.discard(evicted)
            return False

    def snapshot(self) -> List[Hashable]:
        """Window contents oldest-first, for control-plane checkpoints."""
        with self._lock:
            return list(self._order)

    def restore(self, keys: Iterable[Hashable]) -> None:
        """Seed the window from a checkpoint (without counting dupes)."""
        with self._lock:
            for key in keys:
                if key in self._keys:
                    continue
                self._keys.add(key)
                self._order.append(key)
                while len(self._order) > self.capacity:
                    evicted = self._order.popleft()
                    self._keys.discard(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a point in scenario time."""

    time: float
    action: str
    device_id: str

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise RuntimeStateError("unknown churn action %r (want one of %s)"
                                  % (self.action, sorted(_ACTIONS)))
        if self.time < 0:
            raise RuntimeStateError("churn event time must be >= 0")
        if not self.device_id:
            raise RuntimeStateError("churn event needs a device id")


@dataclass(frozen=True)
class ChurnSchedule:
    """A seeded, replayable sequence of membership events.

    The same schedule is consumed by the simulator (scenario time) and
    the runtime chaos harness (wall-clock, optionally scaled), so one
    seed describes one churn story on both substrates.
    """

    events: Tuple[ChurnEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time,
                                                           e.device_id)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def generate(cls, seed: int, device_ids: Sequence[str],
                 duration: float, start_after: float = 5.0,
                 settle: float = 8.0,
                 kill_fraction: float = 0.5,
                 rejoin_gap: Tuple[float, float] = (3.0, 6.0)
                 ) -> "ChurnSchedule":
        """Deterministic kill/leave + rejoin story for *device_ids*.

        Each device departs once — abruptly (kill) or gracefully
        (leave), chosen by the seeded RNG at ``kill_fraction`` odds —
        and rejoins after a seeded gap.  All events land inside
        ``[start_after, duration - settle]`` so the tail of the run can
        recover and be measured.
        """
        if duration <= start_after + settle:
            raise RuntimeStateError("duration too short for churn window "
                                  "(need > start_after + settle)")
        rng = random.Random(seed)
        window_end = duration - settle
        events: List[ChurnEvent] = []
        for device_id in sorted(device_ids):
            depart_at = rng.uniform(start_after,
                                    max(start_after + 0.1,
                                        window_end - rejoin_gap[1]))
            action = CHURN_KILL if rng.random() < kill_fraction \
                else CHURN_LEAVE
            gap = rng.uniform(*rejoin_gap)
            rejoin_at = min(window_end, depart_at + gap)
            events.append(ChurnEvent(round(depart_at, 3), action, device_id))
            events.append(ChurnEvent(round(rejoin_at, 3), CHURN_REJOIN,
                                     device_id))
        return cls(events=tuple(events), seed=seed)

    def validate(self, initial_ids: Iterable[str]) -> None:
        """Check the schedule is coherent against *initial_ids*.

        Departures must target a present device, rejoins an absent one;
        a fresh ``join`` must not collide with a present device.
        """
        present = set(initial_ids)
        known = set(present)
        for event in self.events:
            if event.action in _CONTROL_ACTIONS:
                # master / link events never move worker membership
                continue
            if event.action in (CHURN_LEAVE, CHURN_KILL):
                if event.device_id not in present:
                    raise RuntimeStateError(
                        "churn %s of %r at t=%.3f: device not present"
                        % (event.action, event.device_id, event.time))
                present.discard(event.device_id)
            elif event.action == CHURN_REJOIN:
                if event.device_id in present:
                    raise RuntimeStateError(
                        "churn rejoin of %r at t=%.3f: device still present"
                        % (event.device_id, event.time))
                if event.device_id not in known:
                    raise RuntimeStateError(
                        "churn rejoin of %r at t=%.3f: device never joined"
                        % (event.device_id, event.time))
                present.add(event.device_id)
            else:  # CHURN_JOIN
                if event.device_id in present:
                    raise RuntimeStateError(
                        "churn join of %r at t=%.3f: device already present"
                        % (event.device_id, event.time))
                present.add(event.device_id)
                known.add(event.device_id)
        if not present:
            raise RuntimeStateError("churn schedule ends with an empty swarm")

    def end_time(self) -> float:
        return self.events[-1].time if self.events else 0.0

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
