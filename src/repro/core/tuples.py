"""Data tuples exchanged between function units.

The paper models a stream element as a *tuple*: "a list of serializable data
structures, such as a bitmap image, a matrix of floating-point values or a
text string" (Sec. IV-A).  We represent a tuple as named values plus
metadata used by the resource-management layer (sequence number, source
timestamp and per-hop timing samples used for latency decomposition).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple as TupleType

from repro.core.exceptions import SchemaError
from repro.trace.spans import SpanContext

_seq_counter = itertools.count()


def _next_seq() -> int:
    return next(_seq_counter)


@dataclass(frozen=True)
class TupleSchema:
    """Declares the named fields a tuple must carry.

    Mirrors the paper's API where the programmer declares the tuple
    structure up front (``tuple.add("value1")``).
    """

    fields: TupleType[str, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise SchemaError("a tuple schema needs at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise SchemaError("duplicate field names in schema: %r" % (self.fields,))
        for name in self.fields:
            if not isinstance(name, str) or not name:
                raise SchemaError("field names must be non-empty strings")

    @classmethod
    def of(cls, *names: str) -> "TupleSchema":
        """Build a schema from field names: ``TupleSchema.of("frame", "id")``."""
        return cls(tuple(names))

    def validate(self, values: Dict[str, Any]) -> None:
        """Raise :class:`SchemaError` unless *values* matches this schema."""
        missing = [name for name in self.fields if name not in values]
        if missing:
            raise SchemaError("tuple missing fields %r" % (missing,))
        extra = [name for name in values if name not in self.fields]
        if extra:
            raise SchemaError("tuple has undeclared fields %r" % (extra,))


@dataclass
class HopTiming:
    """Timing samples collected as a tuple crosses one hop.

    All times are seconds on the clock of the measuring component.  The
    decomposition matches Fig. 2 of the paper: transmission, queuing and
    processing delay.
    """

    device_id: str = ""
    unit_name: str = ""
    sent_at: float = 0.0
    received_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def transmission_delay(self) -> float:
        return max(0.0, self.received_at - self.sent_at)

    @property
    def queuing_delay(self) -> float:
        return max(0.0, self.started_at - self.received_at)

    @property
    def processing_delay(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def total_delay(self) -> float:
        return max(0.0, self.finished_at - self.sent_at)


@dataclass
class DataTuple:
    """A stream element: named values plus routing/timing metadata."""

    values: Dict[str, Any]
    seq: int = field(default_factory=_next_seq)
    created_at: float = 0.0
    schema: Optional[TupleSchema] = None
    hops: List[HopTiming] = field(default_factory=list)
    #: absolute deadline on the source's clock (``created_at + ttl``);
    #: stages drop the tuple instead of processing it past this point
    deadline: Optional[float] = None
    #: trace metadata stamped at the source; carried over the wire so
    #: every hop honors the source's sampling decision
    trace: Optional[SpanContext] = None
    #: which delivery of this tuple the receiver is looking at (1 = the
    #: original send); redeliveries after churn bump it so traces and
    #: dedup accounting can attribute duplicates to replay
    delivery_attempt: int = 1
    #: owning tenant pipeline; the empty string is the implicit
    #: single-tenant namespace and never appears on the wire
    tenant: str = ""
    #: partitioning key for keyed stateful operators; ``None`` (the
    #: default, stateless case) never appears on the wire
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.schema is not None:
            self.schema.validate(self.values)

    def get_value(self, key: str) -> Any:
        """Return the value stored under *key* (paper: ``data.getValue``)."""
        try:
            return self.values[key]
        except KeyError:
            raise SchemaError("tuple %d has no field %r" % (self.seq, key)) from None

    def derive(self, values: Dict[str, Any], schema: Optional[TupleSchema] = None) -> "DataTuple":
        """Create the downstream tuple produced from this one.

        The derived tuple keeps the sequence number, creation timestamp,
        deadline and accumulated hop history so end-to-end delay,
        ordering and staleness are preserved across function units
        (paper: ``data.setValues``).
        """
        return DataTuple(
            values=dict(values),
            seq=self.seq,
            created_at=self.created_at,
            schema=schema,
            hops=list(self.hops),
            deadline=self.deadline,
            trace=self.trace,
            delivery_attempt=self.delivery_attempt,
            tenant=self.tenant,
            key=self.key,
        )

    def expired(self, now: float) -> bool:
        """Whether this tuple is already past its deadline (if it has one)."""
        return self.deadline is not None and now > self.deadline

    @property
    def total_delay(self) -> float:
        """Cumulative delay recorded across every hop so far."""
        return sum(hop.total_delay for hop in self.hops)

    def payload_size(self) -> int:
        """Approximate serialized payload size in bytes.

        Used by the network models to charge transmission time.  Sizes are
        computed structurally so simulation payloads (plain bytes / arrays /
        strings) are charged realistically.
        """
        return sum(_sizeof(value) for value in self.values.values())


def _sizeof(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_sizeof(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(_sizeof(k) + _sizeof(v) for k, v in value.items())
    nbytes = getattr(value, "nbytes", None)  # numpy arrays
    if nbytes is not None:
        return int(nbytes)
    return 64  # arbitrary object: charge a flat overhead


def make_stream(payloads: Iterable[Dict[str, Any]], schema: Optional[TupleSchema] = None,
                start_time: float = 0.0, interval: float = 0.0) -> List[DataTuple]:
    """Build an ordered list of tuples with evenly spaced creation times."""
    stream = []
    for index, values in enumerate(payloads):
        stream.append(
            DataTuple(values=dict(values), seq=index, schema=schema,
                      created_at=start_time + index * interval)
        )
    return stream
