"""Latency estimation (paper Sec. V-B).

The upstream attaches a timestamp to each tuple; the downstream ACKs with
the original timestamp after processing.  The upstream computes a latency
sample ``now - timestamp`` covering transmission + queuing + processing
(ACK return time is negligible) and folds it into a moving average per
downstream.  Downstreams also piggyback their measured processing delay on
the ACK, which is what processing-delay-based policies (PR/PRS) consume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from repro.core.exceptions import PolicyError


class MovingAverageEstimator:
    """Fixed-window moving average over the most recent samples."""

    def __init__(self, window: int = 20) -> None:
        if window < 1:
            raise PolicyError("moving-average window must be >= 1")
        self._window = window
        self._samples: Deque[float] = deque(maxlen=window)
        self._total = 0.0

    def observe(self, sample: float) -> None:
        if sample < 0:
            raise PolicyError("latency samples must be non-negative")
        if len(self._samples) == self._samples.maxlen:
            self._total -= self._samples[0]
        self._samples.append(sample)
        self._total += sample

    @property
    def value(self) -> Optional[float]:
        if not self._samples:
            return None
        return self._total / len(self._samples)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._total = 0.0


class EwmaEstimator:
    """Exponentially weighted moving average: ``v = (1-a)*v + a*sample``."""

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise PolicyError("EWMA alpha must be in (0, 1]")
        self._alpha = alpha
        self._value: Optional[float] = None
        self._count = 0

    def observe(self, sample: float) -> None:
        if sample < 0:
            raise PolicyError("latency samples must be non-negative")
        if self._value is None:
            self._value = sample
        else:
            self._value = (1.0 - self._alpha) * self._value + self._alpha * sample
        self._count += 1

    @property
    def value(self) -> Optional[float]:
        return self._value

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._value = None
        self._count = 0


def make_estimator(kind: str = "moving-average", **kwargs):
    """Estimator factory: ``"moving-average"`` (paper default) or ``"ewma"``."""
    if kind == "moving-average":
        return MovingAverageEstimator(**kwargs)
    if kind == "ewma":
        return EwmaEstimator(**kwargs)
    raise PolicyError("unknown estimator kind %r" % kind)


@dataclass
class DownstreamStats:
    """Per-downstream observations consumed by routing policies."""

    downstream_id: str
    latency: Optional[float] = None          # end-to-end L_i, seconds
    processing_delay: Optional[float] = None  # W_i, seconds
    alive: bool = True
    acked_count: int = 0
    sent_count: int = 0

    @property
    def service_rate(self) -> Optional[float]:
        """mu_i = 1 / L_i (tuples per second); None until first sample."""
        if self.latency is None or self.latency <= 0.0:
            return None
        return 1.0 / self.latency


@dataclass
class _PendingSend:
    seq: int
    downstream_id: str
    sent_at: float


class AckTracker:
    """Tracks in-flight tuples per downstream and maintains estimators.

    One tracker lives at each upstream function unit.  ``record_send`` /
    ``record_ack`` implement the timestamp-echo protocol of Sec. V-B;
    ``stats`` produces the :class:`DownstreamStats` snapshot policies run
    on.  Stale in-flight entries older than ``timeout`` are dropped (lost
    tuples, e.g. a device that left mid-stream).
    """

    def __init__(self, estimator_kind: str = "moving-average",
                 timeout: float = 10.0, **estimator_kwargs) -> None:
        self._estimator_kind = estimator_kind
        self._estimator_kwargs = dict(estimator_kwargs)
        self._timeout = timeout
        self._latency: Dict[str, object] = {}
        self._processing: Dict[str, object] = {}
        self._pending: Dict[int, _PendingSend] = {}
        self._sent: Dict[str, int] = {}
        self._acked: Dict[str, int] = {}
        self._alive: Dict[str, bool] = {}

    # -- membership ------------------------------------------------------
    def add_downstream(self, downstream_id: str) -> None:
        if downstream_id in self._latency:
            return
        self._latency[downstream_id] = make_estimator(
            self._estimator_kind, **self._estimator_kwargs)
        self._processing[downstream_id] = make_estimator(
            self._estimator_kind, **self._estimator_kwargs)
        self._sent[downstream_id] = 0
        self._acked[downstream_id] = 0
        self._alive[downstream_id] = True

    def remove_downstream(self, downstream_id: str) -> None:
        self._latency.pop(downstream_id, None)
        self._processing.pop(downstream_id, None)
        self._sent.pop(downstream_id, None)
        self._acked.pop(downstream_id, None)
        self._alive.pop(downstream_id, None)
        self._pending = {seq: pending for seq, pending in self._pending.items()
                         if pending.downstream_id != downstream_id}

    def mark_dead(self, downstream_id: str) -> None:
        if downstream_id in self._alive:
            self._alive[downstream_id] = False

    def downstream_ids(self) -> Iterable[str]:
        return list(self._latency)

    # -- data plane ------------------------------------------------------
    def record_send(self, seq: int, downstream_id: str, now: float) -> None:
        if downstream_id not in self._latency:
            self.add_downstream(downstream_id)
        self._pending[seq] = _PendingSend(seq, downstream_id, now)
        self._sent[downstream_id] += 1

    def record_ack(self, seq: int, now: float,
                   processing_delay: Optional[float] = None) -> Optional[float]:
        """Fold in the ACK for *seq*; return the latency sample, if matched."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            return None
        downstream_id = pending.downstream_id
        if downstream_id not in self._latency:
            return None
        sample = max(0.0, now - pending.sent_at)
        self._latency[downstream_id].observe(sample)
        if processing_delay is not None:
            self._processing[downstream_id].observe(max(0.0, processing_delay))
        self._acked[downstream_id] += 1
        return sample

    def expire_pending(self, now: float) -> int:
        """Drop in-flight entries older than the timeout; return the count."""
        stale = [seq for seq, pending in self._pending.items()
                 if now - pending.sent_at > self._timeout]
        for seq in stale:
            del self._pending[seq]
        return len(stale)

    def pending_count(self, downstream_id: Optional[str] = None) -> int:
        if downstream_id is None:
            return len(self._pending)
        return sum(1 for pending in self._pending.values()
                   if pending.downstream_id == downstream_id)

    # -- snapshots -------------------------------------------------------
    def stats(self) -> Dict[str, DownstreamStats]:
        """Snapshot of every known downstream for the policy layer."""
        snapshot = {}
        for downstream_id, estimator in self._latency.items():
            snapshot[downstream_id] = DownstreamStats(
                downstream_id=downstream_id,
                latency=estimator.value,
                processing_delay=self._processing[downstream_id].value,
                alive=self._alive[downstream_id],
                acked_count=self._acked[downstream_id],
                sent_count=self._sent[downstream_id],
            )
        return snapshot


class RateMeter:
    """Measures the incoming tuple rate Lambda over a sliding window."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise PolicyError("rate meter window must be positive")
        self._window = window
        self._arrivals: Deque[float] = deque()

    def observe(self, now: float) -> None:
        self._arrivals.append(now)
        self._evict(now)

    def rate(self, now: float) -> float:
        """Arrivals per second over the last window."""
        self._evict(now)
        return len(self._arrivals) / self._window

    def _evict(self, now: float) -> None:
        while self._arrivals and now - self._arrivals[0] > self._window:
            self._arrivals.popleft()
