"""Latency estimation (paper Sec. V-B).

The upstream attaches a timestamp to each tuple; the downstream ACKs with
the original timestamp after processing.  The upstream computes a latency
sample ``now - timestamp`` covering transmission + queuing + processing
(ACK return time is negligible) and folds it into a moving average per
downstream.  Downstreams also piggyback their measured processing delay on
the ACK, which is what processing-delay-based policies (PR/PRS) consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from repro import metrics as metrics_mod
from repro.core.exceptions import PolicyError


class MovingAverageEstimator:
    """Fixed-window moving average over the most recent samples.

    The running total is maintained incrementally (O(1) per sample),
    which accumulates floating-point subtraction error over long runs;
    every ``window`` evictions the total is recomputed exactly from the
    live deque (amortized O(1)), bounding the drift to one window's
    worth of rounding.
    """

    def __init__(self, window: int = 20) -> None:
        if window < 1:
            raise PolicyError("moving-average window must be >= 1")
        self._window = window
        self._samples: Deque[float] = deque(maxlen=window)
        self._total = 0.0
        self._evictions = 0

    def observe(self, sample: float) -> None:
        if sample < 0:
            raise PolicyError("latency samples must be non-negative")
        if len(self._samples) == self._samples.maxlen:
            self._total -= self._samples[0]
            self._evictions += 1
        self._samples.append(sample)
        self._total += sample
        if self._evictions >= self._window:
            self._evictions = 0
            self._total = math.fsum(self._samples)

    @property
    def value(self) -> Optional[float]:
        if not self._samples:
            return None
        return self._total / len(self._samples)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._total = 0.0
        self._evictions = 0


class EwmaEstimator:
    """Exponentially weighted moving average: ``v = (1-a)*v + a*sample``."""

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise PolicyError("EWMA alpha must be in (0, 1]")
        self._alpha = alpha
        self._value: Optional[float] = None
        self._count = 0

    def observe(self, sample: float) -> None:
        if sample < 0:
            raise PolicyError("latency samples must be non-negative")
        if self._value is None:
            self._value = sample
        else:
            self._value = (1.0 - self._alpha) * self._value + self._alpha * sample
        self._count += 1

    @property
    def value(self) -> Optional[float]:
        return self._value

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._value = None
        self._count = 0


def make_estimator(kind: str = "moving-average", **kwargs):
    """Estimator factory: ``"moving-average"`` (paper default) or ``"ewma"``."""
    if kind == "moving-average":
        return MovingAverageEstimator(**kwargs)
    if kind == "ewma":
        return EwmaEstimator(**kwargs)
    raise PolicyError("unknown estimator kind %r" % kind)


@dataclass
class DownstreamStats:
    """Per-downstream observations consumed by routing policies."""

    downstream_id: str
    latency: Optional[float] = None          # end-to-end L_i, seconds
    processing_delay: Optional[float] = None  # W_i, seconds
    alive: bool = True
    acked_count: int = 0
    sent_count: int = 0
    lost_count: int = 0

    @property
    def service_rate(self) -> Optional[float]:
        """mu_i = 1 / L_i (tuples per second); None until first sample."""
        if self.latency is None or self.latency <= 0.0:
            return None
        return 1.0 / self.latency

    @property
    def loss_rate(self) -> float:
        """Fraction of resolved sends (acked or expired) that were lost.

        In-flight tuples are excluded — they are not yet evidence either
        way — so the signal converges quickly after a device departs
        instead of being diluted by a large pending window.
        """
        resolved = self.acked_count + self.lost_count
        if resolved == 0:
            return 0.0
        return self.lost_count / resolved


@dataclass
class _PendingSend:
    seq: int
    downstream_id: str
    sent_at: float


class AckTracker:
    """Tracks in-flight tuples per downstream and maintains estimators.

    One tracker lives at each upstream function unit.  ``record_send`` /
    ``record_ack`` implement the timestamp-echo protocol of Sec. V-B;
    ``stats`` produces the :class:`DownstreamStats` snapshot policies run
    on.

    Stale in-flight entries older than ``timeout`` are *lost tuples*
    (e.g. a device that left mid-stream): each expiry is attributed to
    its downstream's ``lost_count``, and a downstream that accumulates
    ``dead_after`` consecutive expiry rounds with zero intervening ACKs
    is marked dead so the policy layer stops routing regular traffic to
    it.  A later ACK (round-robin probing keeps touching dead members)
    resurrects the downstream.
    """

    def __init__(self, estimator_kind: str = "moving-average",
                 timeout: float = 10.0, dead_after: int = 3,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 **estimator_kwargs) -> None:
        if dead_after < 1:
            raise PolicyError("dead_after must be >= 1")
        self._estimator_kind = estimator_kind
        self._estimator_kwargs = dict(estimator_kwargs)
        self._timeout = timeout
        self._dead_after = dead_after
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._latency: Dict[str, object] = {}
        self._processing: Dict[str, object] = {}
        self._pending: Dict[int, _PendingSend] = {}
        self._sent: Dict[str, int] = {}
        self._acked: Dict[str, int] = {}
        self._lost: Dict[str, int] = {}
        self._alive: Dict[str, bool] = {}
        #: expiry rounds (with >= 1 loss) since the last ACK, per downstream
        self._expiry_streak: Dict[str, int] = {}

    # -- membership ------------------------------------------------------
    def add_downstream(self, downstream_id: str) -> None:
        if downstream_id in self._latency:
            return
        self._latency[downstream_id] = make_estimator(
            self._estimator_kind, **self._estimator_kwargs)
        self._processing[downstream_id] = make_estimator(
            self._estimator_kind, **self._estimator_kwargs)
        self._sent[downstream_id] = 0
        self._acked[downstream_id] = 0
        self._lost[downstream_id] = 0
        self._alive[downstream_id] = True
        self._expiry_streak[downstream_id] = 0

    def remove_downstream(self, downstream_id: str) -> None:
        self._latency.pop(downstream_id, None)
        self._processing.pop(downstream_id, None)
        self._sent.pop(downstream_id, None)
        self._acked.pop(downstream_id, None)
        self._lost.pop(downstream_id, None)
        self._alive.pop(downstream_id, None)
        self._expiry_streak.pop(downstream_id, None)
        self._pending = {seq: pending for seq, pending in self._pending.items()
                         if pending.downstream_id != downstream_id}

    def mark_dead(self, downstream_id: str) -> None:
        if downstream_id in self._alive and self._alive[downstream_id]:
            self._alive[downstream_id] = False
            self._registry.increment(metrics_mod.MARKED_DEAD_TOTAL,
                                     downstream=downstream_id)

    def is_alive(self, downstream_id: str) -> bool:
        return self._alive.get(downstream_id, False)

    def downstream_ids(self) -> Iterable[str]:
        return list(self._latency)

    # -- data plane ------------------------------------------------------
    def record_send(self, seq: int, downstream_id: str, now: float) -> None:
        if downstream_id not in self._latency:
            self.add_downstream(downstream_id)
        self._pending[seq] = _PendingSend(seq, downstream_id, now)
        self._sent[downstream_id] += 1
        self._registry.increment(metrics_mod.SENT_TOTAL,
                                 downstream=downstream_id)

    def record_ack(self, seq: int, now: float,
                   processing_delay: Optional[float] = None) -> Optional[float]:
        """Fold in the ACK for *seq*; return the latency sample, if matched."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            return None
        downstream_id = pending.downstream_id
        if downstream_id not in self._latency:
            return None
        sample = max(0.0, now - pending.sent_at)
        if not self._alive[downstream_id]:
            # A probe reached a downstream we had given up on.
            self._resurrect(downstream_id, pending.sent_at)
        self._latency[downstream_id].observe(sample)
        if processing_delay is not None:
            self._processing[downstream_id].observe(max(0.0, processing_delay))
        self._acked[downstream_id] += 1
        self._expiry_streak[downstream_id] = 0
        self._registry.increment(metrics_mod.ACKED_TOTAL,
                                 downstream=downstream_id)
        return sample

    def revive(self, downstream_id: str, now: float) -> None:
        """Explicitly resurrect a dead-marked member without an ACK.

        The ACK path (:meth:`record_ack`) can only resurrect a member
        that still receives probes — when *every* member is dead no
        send happens at all, so an external revival signal (a successor
        master re-hosting the instance after a failover) must be able
        to break the deadlock directly.
        """
        if downstream_id in self._alive and not self._alive[downstream_id]:
            self._resurrect(downstream_id, now)

    def _resurrect(self, downstream_id: str, before: float) -> None:
        """Mark a dead member alive again, with a clean slate.

        Estimator history and in-flight entries from before the death
        window describe a peer that no longer exists; keeping them
        would let one pre-departure timeout streak instantly re-kill
        the revived member.
        """
        self._flush_stale_pending(downstream_id, before)
        self._latency[downstream_id].reset()
        self._processing[downstream_id].reset()
        self._alive[downstream_id] = True
        self._registry.increment(metrics_mod.RESURRECTED_TOTAL,
                                 downstream=downstream_id)

    def _flush_stale_pending(self, downstream_id: str, before: float) -> None:
        """Charge pre-resurrection in-flight entries as lost, quietly.

        Tuples sent into the dead window (strictly before the ACKed
        send at *before*) are gone; counting them keeps the loss ledger
        exact without bumping the expiry streak of the fresh peer.
        """
        stale = [seq for seq, pending in self._pending.items()
                 if pending.downstream_id == downstream_id
                 and pending.sent_at < before]
        for seq in stale:
            self._pending.pop(seq)
            self._lost[downstream_id] += 1
            self._registry.increment(metrics_mod.LOST_TOTAL,
                                     downstream=downstream_id)

    def expire_pending(self, now: float) -> int:
        """Expire in-flight entries older than the timeout.

        Every expired entry is a lost tuple charged to its downstream;
        a downstream collecting ``dead_after`` consecutive expiry rounds
        without a single ACK in between is marked dead.  Returns the
        number of entries expired this round.
        """
        stale = [seq for seq, pending in self._pending.items()
                 if now - pending.sent_at > self._timeout]
        expired_by_downstream: Dict[str, int] = {}
        for seq in stale:
            pending = self._pending.pop(seq)
            downstream_id = pending.downstream_id
            if downstream_id not in self._latency:
                continue
            self._lost[downstream_id] += 1
            expired_by_downstream[downstream_id] = \
                expired_by_downstream.get(downstream_id, 0) + 1
            self._registry.increment(metrics_mod.LOST_TOTAL,
                                     downstream=downstream_id)
        for downstream_id, count in expired_by_downstream.items():
            self._expiry_streak[downstream_id] += 1
            if self._expiry_streak[downstream_id] >= self._dead_after:
                self.mark_dead(downstream_id)
        return len(stale)

    def lost_count(self, downstream_id: Optional[str] = None) -> int:
        if downstream_id is None:
            return sum(self._lost.values())
        return self._lost.get(downstream_id, 0)

    def lost_by_downstream(self) -> Dict[str, int]:
        return dict(self._lost)

    def pending_downstream(self, seq: int) -> Optional[str]:
        """The downstream an in-flight *seq* was sent to, if still pending."""
        pending = self._pending.get(seq)
        return pending.downstream_id if pending is not None else None

    def pending_count(self, downstream_id: Optional[str] = None) -> int:
        if downstream_id is None:
            return len(self._pending)
        return sum(1 for pending in self._pending.values()
                   if pending.downstream_id == downstream_id)

    # -- snapshots -------------------------------------------------------
    def stats(self) -> Dict[str, DownstreamStats]:
        """Snapshot of every known downstream for the policy layer."""
        snapshot = {}
        for downstream_id, estimator in self._latency.items():
            snapshot[downstream_id] = DownstreamStats(
                downstream_id=downstream_id,
                latency=estimator.value,
                processing_delay=self._processing[downstream_id].value,
                alive=self._alive[downstream_id],
                acked_count=self._acked[downstream_id],
                sent_count=self._sent[downstream_id],
                lost_count=self._lost[downstream_id],
            )
        return snapshot


class RateMeter:
    """Measures the incoming tuple rate Lambda over a sliding window."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise PolicyError("rate meter window must be positive")
        self._window = window
        self._arrivals: Deque[float] = deque()

    def observe(self, now: float) -> None:
        self._arrivals.append(now)
        self._evict(now)

    def rate(self, now: float) -> float:
        """Arrivals per second over the last window."""
        self._evict(now)
        return len(self._arrivals) / self._window

    def _evict(self, now: float) -> None:
        while self._arrivals and now - self._arrivals[0] > self._window:
            self._arrivals.popleft()
