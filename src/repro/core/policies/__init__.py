"""Routing policies: RR, PR, LR, PRS and the paper's LRS.

Use :func:`make_policy` to construct a policy by name::

    policy = make_policy("LRS", seed=7)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.exceptions import PolicyError
from repro.core.policies.base import (PolicyDecision, ProbeScheduler,
                                      RoutingPolicy, weights_from_delays)
from repro.core.policies.extensions import (JoinShortestQueuePolicy,
                                            WeightedRoundRobinPolicy)
from repro.core.policies.round_robin import RoundRobinPolicy
from repro.core.policies.weighted import (LatencyRoutingPolicy,
                                          LatencyRoutingSelectionPolicy,
                                          ProcessingDelayRoutingPolicy,
                                          ProcessingDelaySelectionPolicy,
                                          WeightedPolicy)

POLICY_REGISTRY: Dict[str, Type[RoutingPolicy]] = {
    "RR": RoundRobinPolicy,
    "PR": ProcessingDelayRoutingPolicy,
    "LR": LatencyRoutingPolicy,
    "PRS": ProcessingDelaySelectionPolicy,
    "LRS": LatencyRoutingSelectionPolicy,
    # extensions beyond the paper (see policies/extensions.py)
    "JSQ": JoinShortestQueuePolicy,
    "WRR": WeightedRoundRobinPolicy,
}

#: evaluation order used throughout the paper's figures
POLICY_NAMES: List[str] = ["RR", "PR", "LR", "PRS", "LRS"]

#: extension policies available for comparison studies
EXTENSION_POLICY_NAMES: List[str] = ["JSQ", "WRR"]


def make_policy(name: str, seed: Optional[int] = None, **kwargs) -> RoutingPolicy:
    """Build a routing policy by its paper name (case-insensitive)."""
    try:
        cls = POLICY_REGISTRY[name.upper()]
    except KeyError:
        raise PolicyError("unknown policy %r (expected one of %r)"
                          % (name, POLICY_NAMES)) from None
    return cls(seed=seed, **kwargs)


__all__ = [
    "EXTENSION_POLICY_NAMES",
    "JoinShortestQueuePolicy",
    "POLICY_NAMES",
    "POLICY_REGISTRY",
    "WeightedRoundRobinPolicy",
    "LatencyRoutingPolicy",
    "LatencyRoutingSelectionPolicy",
    "PolicyDecision",
    "ProbeScheduler",
    "ProcessingDelayRoutingPolicy",
    "ProcessingDelaySelectionPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "WeightedPolicy",
    "make_policy",
    "weights_from_delays",
]
