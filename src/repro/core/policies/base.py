"""Routing-policy interface shared by the runtime and the simulator.

A policy instance lives at one upstream function unit and decides, per
tuple, which downstream replica receives it.  The hosting runtime calls
:meth:`RoutingPolicy.update` periodically (every second in the paper) with
fresh :class:`~repro.core.latency.DownstreamStats` and the measured input
rate, and :meth:`RoutingPolicy.route` once per tuple.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.exceptions import RoutingError
from repro.core.latency import DownstreamStats
from repro.core.routing import RoundRobinCycler, RoutingTable


@dataclass
class PolicyDecision:
    """Outcome of one policy update round."""

    selected: List[str] = field(default_factory=list)
    weights: Dict[str, float] = field(default_factory=dict)
    probing: bool = False


class ProbeScheduler:
    """Periodic round-robin probing of *all* downstreams (paper Sec. V-B).

    Selected-only routing starves the latency estimates of unselected
    units, so "each upstream function unit switches periodically every few
    rounds to round robin mode for a short time".  After every
    ``probe_every`` update rounds, the next ``probe_tuples`` probes are
    routed round-robin across every alive downstream.  Probes are spaced
    ``probe_spacing`` tuples apart rather than sent back-to-back: a burst
    of transfers to weak-signal devices would monopolise the sender's
    radio and contaminate the latency samples of every other downstream.
    """

    def __init__(self, probe_every: int = 5, probe_tuples: int = 4,
                 probe_spacing: int = 3) -> None:
        self._probe_every = max(1, probe_every)
        self._probe_tuples = max(0, probe_tuples)
        self._probe_spacing = max(1, probe_spacing)
        self._round = 0
        self._remaining = 0
        self._since_last = 0

    def on_update_round(self) -> bool:
        """Advance one round; return True when a probe window begins."""
        if self._probe_tuples == 0:
            return False
        self._round += 1
        if self._round % self._probe_every == 0:
            self._remaining = self._probe_tuples
            self._since_last = self._probe_spacing  # first probe fires now
            return True
        return False

    def consume(self) -> bool:
        """Per-tuple check: True when this tuple should be a probe."""
        if self._remaining <= 0:
            return False
        self._since_last += 1
        if self._since_last >= self._probe_spacing:
            self._since_last = 0
            self._remaining -= 1
            return True
        return False

    @property
    def probing(self) -> bool:
        return self._remaining > 0


class RoutingPolicy:
    """Base class: membership bookkeeping + weighted/probe routing plumbing.

    Subclasses implement :meth:`compute_decision` which maps downstream
    stats and the input rate to a :class:`PolicyDecision`.
    """

    name = "base"
    uses_selection = False

    def __init__(self, seed: Optional[int] = None,
                 probe_every: int = 5, probe_tuples: int = 4,
                 probe_spacing: int = 3) -> None:
        self._rng = random.Random(seed)
        self._table = RoutingTable()
        self._members: Dict[str, bool] = {}
        self._probe_cycler = RoundRobinCycler()
        self._probe = ProbeScheduler(probe_every=probe_every,
                                     probe_tuples=probe_tuples,
                                     probe_spacing=probe_spacing)
        self._last_decision = PolicyDecision()

    # -- membership ------------------------------------------------------
    def on_downstream_added(self, downstream_id: str) -> None:
        """A device joined: start routing to it immediately (Sec. VI-C).

        Until the next update round assigns measured weights, the newcomer
        gets an equal share so it can be observed at all.
        """
        if downstream_id in self._members:
            return
        self._members[downstream_id] = True
        self._refresh_probe_cycler()
        current = self._table.weights
        if current:
            share = 1.0 / (len(current) + 1)
            blended = {ds: weight * (1.0 - share) for ds, weight in current.items()}
            blended[downstream_id] = share
            self._table.set_weights(blended)
        else:
            self._table.set_weights({downstream_id: 1.0})

    def on_downstream_removed(self, downstream_id: str) -> None:
        """A link broke / device left: remove and renormalize (Sec. IV-C)."""
        self._members.pop(downstream_id, None)
        self._refresh_probe_cycler()
        if downstream_id in self._table:
            self._table.remove(downstream_id)

    def mark_dead(self, downstream_id: str) -> None:
        """Stop routing regular traffic to a failing downstream.

        Unlike :meth:`on_downstream_removed` the member is kept: probing
        still cycles over it, so a recovered device is observed again and
        :meth:`update` re-admits it once its stats report it alive.
        """
        if not self._members.get(downstream_id, False):
            return
        self._members[downstream_id] = False
        if downstream_id in self._table:
            self._table.remove(downstream_id)
        self._refresh_probe_cycler()

    def mark_alive(self, downstream_id: str) -> None:
        """Resume routing to a dead-marked member (explicit revival).

        Probe-driven re-admission needs at least one live member to
        keep the send loop turning; when every member is dead, an
        external signal (e.g. a successor master re-hosting the
        instance) revives it here.  Re-admission reuses the joiner
        path, so the member returns with an equal share until the next
        update round measures it — and subclass membership hooks
        (cyclers, capability tables) run exactly as for a fresh join.
        """
        if self._members.get(downstream_id, True):
            return  # unknown or already alive
        self._members.pop(downstream_id)
        self.on_downstream_added(downstream_id)

    def downstream_ids(self) -> List[str]:
        return sorted(self._members)

    def _alive_ids(self) -> List[str]:
        return sorted(ds for ds, alive in self._members.items() if alive)

    def _refresh_probe_cycler(self) -> None:
        # Probe every member, dead ones included: the periodic round-robin
        # refresh is what notices a departed device coming back (its ACK
        # resurrects it) and keeps unselected members' estimates fresh.
        members = sorted(self._members)
        if members:
            self._probe_cycler.set_ids(members)

    # -- control plane ---------------------------------------------------
    def update(self, stats: Mapping[str, DownstreamStats],
               input_rate: float) -> PolicyDecision:
        """Run one policy round; returns and installs the new decision."""
        for downstream_id, stat in stats.items():
            if downstream_id in self._members:
                self._members[downstream_id] = stat.alive
        alive = {downstream_id: stats[downstream_id]
                 for downstream_id in self._alive_ids() if downstream_id in stats}
        for downstream_id in self._alive_ids():
            if downstream_id not in alive:
                # Member we have never measured: present it with empty stats.
                alive[downstream_id] = DownstreamStats(downstream_id=downstream_id)
        decision = self.compute_decision(alive, input_rate)
        decision.probing = self._probe.on_update_round()
        self._refresh_probe_cycler()
        if decision.weights:
            self._table.set_weights(decision.weights)
        self._last_decision = decision
        return decision

    def compute_decision(self, stats: Mapping[str, DownstreamStats],
                         input_rate: float) -> PolicyDecision:
        raise NotImplementedError

    @property
    def last_decision(self) -> PolicyDecision:
        return self._last_decision

    # -- data plane ------------------------------------------------------
    def route(self) -> str:
        """Pick the downstream for the next tuple."""
        if not self._members:
            raise RoutingError("policy %r has no downstreams" % self.name)
        if self._probe.consume():
            return self._probe_cycler.next()
        if len(self._table) == 0:
            self._refresh_probe_cycler()
            return self._probe_cycler.next()
        return self._table.choose(self._rng)

    @property
    def probing(self) -> bool:
        return self._probe.probing


def weights_from_delays(delays: Mapping[str, Optional[float]]) -> Dict[str, float]:
    """Turn per-downstream delays into normalized inverse-delay weights.

    ``p_i = (1/L_i) / sum_j (1/L_j)``.  Downstreams without an estimate yet
    are given the mean inverse-delay of the measured ones (optimistic
    bootstrap), or a uniform share when nothing is measured at all.
    """
    known = {ds: delay for ds, delay in delays.items()
             if delay is not None and delay > 0.0}
    if not known:
        return {ds: 1.0 for ds in delays}
    inverse = {ds: 1.0 / delay for ds, delay in known.items()}
    mean_inverse = sum(inverse.values()) / len(inverse)
    for ds in delays:
        if ds not in inverse:
            inverse[ds] = mean_inverse
    return inverse
