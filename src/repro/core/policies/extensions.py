"""Extension policies beyond the paper's five.

The paper's discussion (Sec. V-C) frames LRS as one point in a spectrum
of resource-management policies its framework enables.  This module adds
two classic alternatives for comparison studies:

* **JSQ** — join-shortest-queue: route each tuple to the downstream with
  the fewest un-ACKed tuples in flight.  Uses instantaneous backlog
  instead of smoothed latency; reacts faster but needs per-tuple state.
* **WRR** — weighted round robin over static capability weights: the
  "offline profiling" strawman — deterministic shares proportional to
  nominal device rates, no runtime adaptation at all.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.exceptions import PolicyError, RoutingError
from repro.core.latency import DownstreamStats
from repro.core.policies.base import PolicyDecision, RoutingPolicy


class JoinShortestQueuePolicy(RoutingPolicy):
    """JSQ: route to the downstream with the smallest in-flight backlog.

    The backlog counter is maintained from the same send/ACK events LRS
    uses — call :meth:`on_sent` / :meth:`on_acked` from the hosting
    runtime (the simulator and dispatcher do this automatically through
    ``route()`` and the tracker callbacks below).
    """

    name = "JSQ"
    uses_selection = False

    def __init__(self, seed: Optional[int] = None, **kwargs) -> None:
        super().__init__(seed=seed, probe_every=1, probe_tuples=0)
        self._in_flight: Dict[str, int] = {}

    def on_downstream_added(self, downstream_id: str) -> None:
        super().on_downstream_added(downstream_id)
        self._in_flight.setdefault(downstream_id, 0)

    def on_downstream_removed(self, downstream_id: str) -> None:
        super().on_downstream_removed(downstream_id)
        self._in_flight.pop(downstream_id, None)

    def on_sent(self, downstream_id: str) -> None:
        if downstream_id in self._in_flight:
            self._in_flight[downstream_id] += 1

    def on_acked(self, downstream_id: str) -> None:
        if downstream_id in self._in_flight:
            self._in_flight[downstream_id] = max(
                0, self._in_flight[downstream_id] - 1)

    def backlog(self, downstream_id: str) -> int:
        return self._in_flight.get(downstream_id, 0)

    def compute_decision(self, stats: Mapping[str, DownstreamStats],
                         input_rate: float) -> PolicyDecision:
        alive = sorted(stats)
        # Advisory equal weights; routing itself is backlog-driven.
        share = 1.0 / len(alive) if alive else 0.0
        return PolicyDecision(selected=alive,
                              weights={ds: share for ds in alive})

    def route(self) -> str:
        alive = self._alive_ids()
        if not alive:
            raise RoutingError("JSQ policy has no downstreams")
        choice = min(alive, key=lambda ds: (self._in_flight.get(ds, 0), ds))
        self.on_sent(choice)
        return choice


class WeightedRoundRobinPolicy(RoutingPolicy):
    """WRR: fixed shares proportional to offline capability weights.

    ``capabilities`` maps downstream id -> nominal service rate; unknown
    downstreams get the mean capability.  No adaptation at run time —
    the baseline that shows why Swing needs online estimates.
    """

    name = "WRR"
    uses_selection = False

    def __init__(self, seed: Optional[int] = None,
                 capabilities: Optional[Mapping[str, float]] = None,
                 **kwargs) -> None:
        super().__init__(seed=seed, probe_every=1, probe_tuples=0)
        if capabilities is not None and any(v <= 0
                                            for v in capabilities.values()):
            raise PolicyError("capabilities must be positive rates")
        self._capabilities = dict(capabilities or {})

    def _capability(self, downstream_id: str) -> float:
        if downstream_id in self._capabilities:
            return self._capabilities[downstream_id]
        if self._capabilities:
            return (sum(self._capabilities.values())
                    / len(self._capabilities))
        return 1.0

    def on_downstream_added(self, downstream_id: str) -> None:
        super().on_downstream_added(downstream_id)
        self._rebuild_table()

    def on_downstream_removed(self, downstream_id: str) -> None:
        super().on_downstream_removed(downstream_id)
        self._rebuild_table()

    def mark_dead(self, downstream_id: str) -> None:
        super().mark_dead(downstream_id)
        self._rebuild_table()

    def _rebuild_table(self) -> None:
        alive = self._alive_ids()
        if alive:
            self._table.set_weights({ds: self._capability(ds)
                                     for ds in alive})

    def compute_decision(self, stats: Mapping[str, DownstreamStats],
                         input_rate: float) -> PolicyDecision:
        alive = sorted(stats)
        weights = {ds: self._capability(ds) for ds in alive}
        total = sum(weights.values()) or 1.0
        return PolicyDecision(selected=alive,
                              weights={ds: w / total
                                       for ds, w in weights.items()})
