"""RR: round-robin routing (paper baseline).

The default distribution mechanism of data-center stream processors (SEEP,
Storm, IBM Streams) and recent mobile ones: each upstream sends tuples to
all its downstream units in turns, one tuple at a time, ignoring both
device capability and network conditions.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.exceptions import RoutingError
from repro.core.latency import DownstreamStats
from repro.core.policies.base import PolicyDecision, RoutingPolicy
from repro.core.routing import RoundRobinCycler


class RoundRobinPolicy(RoutingPolicy):
    """Strict rotation over every alive downstream."""

    name = "RR"
    uses_selection = False

    def __init__(self, seed=None, **kwargs) -> None:
        # RR needs no probing: every downstream is visited constantly.
        super().__init__(seed=seed, probe_every=1, probe_tuples=0)
        self._cycler = RoundRobinCycler()

    def on_downstream_added(self, downstream_id: str) -> None:
        super().on_downstream_added(downstream_id)
        self._cycler.set_ids(self._alive_ids())

    def on_downstream_removed(self, downstream_id: str) -> None:
        super().on_downstream_removed(downstream_id)
        alive = self._alive_ids()
        if alive:
            self._cycler.set_ids(alive)

    def mark_dead(self, downstream_id: str) -> None:
        super().mark_dead(downstream_id)
        alive = self._alive_ids()
        if alive:
            self._cycler.set_ids(alive)

    def compute_decision(self, stats: Mapping[str, DownstreamStats],
                         input_rate: float) -> PolicyDecision:
        alive = sorted(stats)
        self._cycler.set_ids(alive)
        share = 1.0 / len(alive) if alive else 0.0
        return PolicyDecision(selected=alive,
                              weights={ds: share for ds in alive})

    def route(self) -> str:
        if not self._cycler.ids():
            alive = self._alive_ids()
            if not alive:
                raise RoutingError("RR policy has no downstreams")
            self._cycler.set_ids(alive)
        return self._cycler.next()
