"""The four weighted policies: PR, LR, PRS, LRS (paper Sec. V / VI-B).

All four share one structure — a *delay signal* (end-to-end latency L_i or
processing delay W_i) turned into inverse-delay routing weights, with
Worker Selection optionally restricting the candidate set to the minimum
fastest prefix that meets the input rate:

========  ============  =================
policy    delay signal  worker selection
========  ============  =================
PR        W_i           no
LR        L_i           no
PRS       W_i           yes
LRS       L_i           yes
========  ============  =================
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.latency import DownstreamStats
from repro.core.policies.base import (PolicyDecision, RoutingPolicy,
                                      weights_from_delays)
from repro.core.selection import select_min_prefix


class WeightedPolicy(RoutingPolicy):
    """Inverse-delay weighted routing with optional worker selection."""

    #: which DownstreamStats field drives the weights
    delay_attribute = "latency"
    uses_selection = False

    def __init__(self, seed: Optional[int] = None,
                 probe_every: int = 5, probe_tuples: int = 4,
                 probe_spacing: int = 3) -> None:
        super().__init__(seed=seed, probe_every=probe_every,
                         probe_tuples=probe_tuples,
                         probe_spacing=probe_spacing)

    def _delays(self, stats: Mapping[str, DownstreamStats]) -> Dict[str, Optional[float]]:
        return {ds: getattr(stat, self.delay_attribute)
                for ds, stat in stats.items()}

    def compute_decision(self, stats: Mapping[str, DownstreamStats],
                         input_rate: float) -> PolicyDecision:
        delays = self._delays(stats)
        if self.uses_selection:
            candidates = self._select(delays, input_rate)
        else:
            candidates = sorted(delays)
        weights = weights_from_delays({ds: delays[ds] for ds in candidates})
        return PolicyDecision(selected=sorted(candidates), weights=weights)

    def _select(self, delays: Dict[str, Optional[float]],
                input_rate: float) -> list:
        """Worker Selection over measured service rates mu_i = 1/delay_i.

        Unmeasured downstreams are included only when the measured ones
        cannot meet the input rate (they may be needed, and must be probed
        into measurability).
        """
        rates = {ds: 1.0 / delay for ds, delay in delays.items()
                 if delay is not None and delay > 0.0}
        unknown = sorted(ds for ds, delay in delays.items()
                         if delay is None or delay <= 0.0)
        if not rates:
            return sorted(delays)
        chosen = select_min_prefix(rates, input_rate)
        if sum(rates[ds] for ds in chosen) < input_rate:
            return sorted(set(chosen) | set(unknown))
        return chosen


class ProcessingDelayRoutingPolicy(WeightedPolicy):
    """PR: processing-delay-based routing, no worker selection.

    Routes toward the most computationally capable devices regardless of
    their network position — the energy-oriented alternative discussed in
    Sec. V-C, which the evaluation shows failing to meet the rate target
    when capable devices sit on weak links.
    """

    name = "PR"
    delay_attribute = "processing_delay"
    uses_selection = False


class LatencyRoutingPolicy(WeightedPolicy):
    """LR: latency-based routing, no worker selection."""

    name = "LR"
    delay_attribute = "latency"
    uses_selection = False


class ProcessingDelaySelectionPolicy(WeightedPolicy):
    """PRS: processing-delay-based routing with worker selection."""

    name = "PRS"
    delay_attribute = "processing_delay"
    uses_selection = True


class LatencyRoutingSelectionPolicy(WeightedPolicy):
    """LRS: the paper's algorithm — latency routing + worker selection."""

    name = "LRS"
    delay_attribute = "latency"
    uses_selection = True
