"""Shared LRS control plane (paper Sec. V) behind three narrow ports.

The paper's core algorithm — latency estimation, worker selection, and
probabilistic routing — is ONE control loop, but this repo used to
implement it twice: once in the live runtime's dispatcher and once in
the discrete-event simulator's dispatch/control processes.
:class:`LrsController` is the single, transport-agnostic home of that
loop.  It owns:

* the routing policy (built from a :class:`PolicyConfig`),
* the :class:`~repro.core.latency.AckTracker` feeding it L_i / W_i
  estimates via the timestamp-echo protocol,
* the :class:`~repro.core.latency.RateMeter` measuring the input rate,
* the once-per-interval policy update (expiry sweep included),
* probe-cycle scheduling (delegated to the policy's
  :class:`~repro.core.policies.ProbeScheduler`),
* failure detection: dead-marking on send failure / expiry streaks,
  resurrection on a probe's ACK,
* metrics emission (rerouted / update-round / probe-window counters).

It talks to its substrate through three narrow ports:

``Clock``
    A zero-argument callable returning seconds (``time.monotonic`` in
    the runtime, ``lambda: sim.now`` on the engine).

``Egress``
    An object with ``send(downstream_id, seq, context) -> Optional[float]``
    returning the send timestamp on success and ``None`` on failure; a
    failed send dead-marks the downstream and triggers a re-route.  The
    runtime's egress performs health-gated, retried fabric sends; the
    simulator's egress always succeeds instantly because delivery, loss
    and delay are modeled by the network.

``MetricSink``
    A :class:`~repro.metrics.MetricsRegistry`; every counter the control
    plane emits goes through it.

``TraceSink``
    A :class:`~repro.trace.Tracer` (default: the disabled
    ``NULL_TRACER``).  The controller emits ``ack_rtt`` spans for every
    matched timestamp echo and ``retry`` instants for every re-route,
    in the same span vocabulary both substrates' adapters use.

The hosting adapters decide *when* to call in (``observe_arrival`` /
``dispatch`` per tuple, ``maybe_update`` lazily or ``update`` from a
periodic process) but never *what* happens — that is the contract the
sim/real parity harness in ``tests/integration`` verifies.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Deque, Dict, Iterable, List, Mapping, Optional,
                    Tuple, Union)

from repro import metrics as metrics_mod
from repro.core.batching import BatchConfig
from repro.core.delivery import (EVICT_ATTEMPTS, EVICT_EXPIRED,
                                 DeliveryConfig, ReplayBuffer, ReplayEntry)
from repro.core.exceptions import RoutingError
from repro.core.keyed import (HotRangeDetector, KeyedConfig, KeyRange,
                              KeyRangeTable)
from repro.core.latency import AckTracker, DownstreamStats, RateMeter
from repro.core.overload import OverloadConfig
from repro.core.policies import PolicyDecision, RoutingPolicy, make_policy
from repro.trace import ACK_RTT, NULL_TRACER, RETRY, Span, TraceSink

#: the Clock port: a zero-argument callable returning seconds
Clock = Callable[[], float]

#: policies that consume the Sec. V-B probing knobs
PROBED_POLICIES = frozenset({"PR", "LR", "PRS", "LRS"})


@dataclass(frozen=True)
class PolicyConfig:
    """Everything needed to build one policy + tracker pair, once.

    The single source of truth for policy-construction defaults
    (estimator window, probe period, failure-detection thresholds).
    The simulator's :class:`~repro.simulation.swarm.SwarmConfig`, the
    runtime's :class:`~repro.runtime.dispatcher.UpstreamDispatcher` and
    the CLI all derive their defaults from here instead of carrying
    their own copies.
    """

    policy: str = "LRS"
    seed: Optional[int] = None
    #: seconds between policy update rounds (1 s in the paper)
    control_interval: float = 1.0
    # -- probing (paper Sec. V-B) ---------------------------------------
    probe_every: int = 5
    probe_tuples: int = 4
    probe_spacing: int = 3
    # -- latency estimation ---------------------------------------------
    estimator: str = "moving-average"
    estimator_window: int = 20
    #: sliding window of the input-rate meter, seconds
    rate_window: float = 1.0
    # -- failure detection -----------------------------------------------
    #: in-flight tuples older than this are charged as lost
    ack_timeout: float = 10.0
    #: consecutive expiry rounds without an ACK before dead-marking
    dead_after: int = 3
    #: offline capability weights (WRR only): downstream id -> rate
    capabilities: Optional[Mapping[str, float]] = None
    # -- overload protection ----------------------------------------------
    #: shared shedding/backpressure knobs (``None`` = all mechanisms off);
    #: both the runtime's dispatchers/workers and the simulator consume
    #: the same object, so shedding decisions replay identically
    overload: Optional[OverloadConfig] = None
    # -- delivery semantics ------------------------------------------------
    #: replay/dedup knobs (``None`` = historical best-effort delivery);
    #: like ``overload``, one object drives both substrates so churn
    #: recovery decisions replay identically
    delivery: Optional[DeliveryConfig] = None
    # -- batched data plane ------------------------------------------------
    #: tuple-batching flush policy (``None`` = per-tuple dispatch); one
    #: object drives both substrates so batch boundaries replay
    #: identically, and ``max_tuples=1`` is wire-identical to no batching
    batching: Optional[BatchConfig] = None
    # -- keyed routing -----------------------------------------------------
    #: key-range routing + hot-split knobs (``None`` = stateless edge);
    #: one object drives both substrates so range splits replay
    #: identically
    keyed: Optional[KeyedConfig] = None

    def overload_config(self) -> OverloadConfig:
        """The effective overload knobs (defaults when unset)."""
        return self.overload if self.overload is not None else OverloadConfig()

    def delivery_config(self) -> DeliveryConfig:
        """The effective delivery knobs (best-effort defaults when unset)."""
        return self.delivery if self.delivery is not None else DeliveryConfig()

    def batching_config(self) -> BatchConfig:
        """The effective batching knobs (per-tuple dispatch when unset)."""
        return self.batching if self.batching is not None else BatchConfig()

    def keyed_config(self) -> KeyedConfig:
        """The effective keyed-routing knobs (stateless when unset)."""
        return self.keyed if self.keyed is not None else KeyedConfig()

    def policy_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for this config's policy class."""
        name = self.policy.upper()
        if name in PROBED_POLICIES:
            return {"probe_every": self.probe_every,
                    "probe_tuples": self.probe_tuples,
                    "probe_spacing": self.probe_spacing}
        if name == "WRR" and self.capabilities:
            return {"capabilities": dict(self.capabilities)}
        return {}

    def estimator_kwargs(self) -> Dict[str, object]:
        if self.estimator == "moving-average":
            return {"window": self.estimator_window}
        return {}

    def make_policy(self) -> RoutingPolicy:
        return make_policy(self.policy, seed=self.seed,
                           **self.policy_kwargs())

    def make_tracker(self, registry: Optional[metrics_mod.MetricsRegistry]
                     = None) -> AckTracker:
        return AckTracker(estimator_kind=self.estimator,
                          timeout=self.ack_timeout,
                          dead_after=self.dead_after,
                          registry=registry,
                          **self.estimator_kwargs())


@dataclass(frozen=True)
class AckResult:
    """Outcome of folding one ACK into the estimators."""

    downstream_id: str
    sample: float  # the end-to-end latency sample, seconds


class LrsController:
    """Transport-agnostic routing controller: one per upstream edge.

    Thread-safe: the runtime calls in from dispatch and receive threads
    concurrently; the simulator from a single engine loop.
    """

    def __init__(self, config: Optional[PolicyConfig] = None,
                 clock: Clock = time.monotonic,
                 egress: Optional[object] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 name: str = "",
                 max_decisions: Optional[int] = None,
                 trace: Optional[TraceSink] = None,
                 redelivery: Optional[Callable[[int, str, object, int],
                                               None]] = None,
                 tenant: str = "") -> None:
        self.config = config if config is not None else PolicyConfig()
        self.name = name
        #: owning tenant pipeline ("" = the single-tenant namespace);
        #: stamps the tenant= label on this edge's redelivery counters
        #: and the tenant attribute on its spans
        self.tenant = tenant
        self._clock = clock
        self._egress = egress
        # Internal component: an uninjected registry means a private
        # one, never the process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._trace = trace if trace is not None else NULL_TRACER
        self._policy = self.config.make_policy()
        self._tracker = self.config.make_tracker(self._registry)
        self._rate = RateMeter(window=self.config.rate_window)
        self._lock = threading.RLock()
        self._last_update = clock()
        # -- at-least-once delivery (None = historical best-effort) ------
        delivery = self.config.delivery
        self._replay: Optional[ReplayBuffer] = None
        self._redelivery_timeout = self.config.ack_timeout
        if delivery is not None and delivery.at_least_once:
            self._replay = ReplayBuffer(delivery, registry=self._registry,
                                        name=name or "-")
            if delivery.redelivery_timeout is not None:
                self._redelivery_timeout = delivery.redelivery_timeout
        #: substrate hook run after each successful redelivery send; the
        #: simulator uses it to put the frame back on the radio (the
        #: runtime's egress already delivers, so it leaves this unset)
        self.on_redeliver = redelivery
        self._redeliver_queue: Deque[Union[str, ReplayEntry]] = deque()
        self._redelivering = False
        # Mutation hook for the verification harness: when the env flag
        # is set, the first overdue redelivery is silently dropped (no
        # re-retain, no eviction count) — a seeded at-least-once bug the
        # invariant checker must find and shrink.  Never set outside
        # `swing verify` mutation tests.
        self._fault_skip_redelivery = bool(
            os.environ.get("SWING_FAULT_SKIP_REDELIVERY"))
        # -- batched dispatch bookkeeping (populated only when a batch is
        # retained for replay): member seq -> head seq, and head seq ->
        # the members still awaiting an ACK.  The replay buffer holds ONE
        # entry per batch (keyed by the head), so per-tuple ACKs must
        # drain the membership before the batch entry is released.
        self._batch_of: Dict[int, int] = {}
        self._batch_members: Dict[int, set] = {}
        # -- keyed routing (None until the substrate attaches a table) ---
        self._key_table: Optional[KeyRangeTable] = None
        self._key_detector: Optional[HotRangeDetector] = None
        #: in-flight seq -> key hash, so redelivery after churn or a
        #: range flip still honors key-range ownership
        self._key_of: Dict[int, int] = {}
        #: lazily created swing_batch_size histogram for this edge
        self._batch_histogram: Optional[metrics_mod.Histogram] = None
        #: update-round log: (time, decision); capped when the hosting
        #: substrate is long-lived (the runtime), unbounded in the
        #: duration-limited simulator and the parity harness
        self.decisions: Union[List[Tuple[float, PolicyDecision]],
                              Deque[Tuple[float, PolicyDecision]]] = (
            deque(maxlen=max_decisions) if max_decisions else [])
        self.dispatched = 0
        self.ack_count = 0

    # -- membership ------------------------------------------------------
    def add_downstream(self, downstream_id: str) -> None:
        """Admit a downstream (idempotent; resurrection-safe)."""
        with self._lock:
            self._tracker.add_downstream(downstream_id)
            # No-op when already a member, even a dead-marked one: the
            # tracker's alive flag, not re-admission, governs routing.
            self._policy.on_downstream_added(downstream_id)

    def remove_downstream(self, downstream_id: str,
                          redeliver: bool = True) -> None:
        """Forget a downstream entirely (link broke / LEAVE observed).

        With at-least-once delivery the tuples retained for the removed
        member are redelivered to survivors unless ``redeliver=False``
        (a graceful drain keeps the departing worker responsible for
        its queue; the stale-ACK sweep still covers stragglers).
        """
        with self._lock:
            self._tracker.remove_downstream(downstream_id)
            if downstream_id in self._policy.downstream_ids():
                self._policy.on_downstream_removed(downstream_id)
        if redeliver:
            self._request_redelivery(downstream_id)

    def set_downstreams(self, downstream_ids: Iterable[str]) -> None:
        """Reconcile the member set against a deploy update."""
        desired = set(downstream_ids)
        with self._lock:
            for downstream_id in sorted(self._tracker.downstream_ids()):
                if downstream_id not in desired:
                    self.remove_downstream(downstream_id)
            known = set(self._tracker.downstream_ids())
            for downstream_id in sorted(desired - known):
                self.add_downstream(downstream_id)

    def downstream_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._tracker.downstream_ids())

    def live_downstreams(self) -> List[str]:
        """Members not currently marked dead."""
        with self._lock:
            return sorted(downstream_id for downstream_id
                          in self._tracker.downstream_ids()
                          if self._tracker.is_alive(downstream_id))

    def is_alive(self, downstream_id: str) -> bool:
        with self._lock:
            return self._tracker.is_alive(downstream_id)

    def unsatisfiable(self) -> bool:
        """True when members exist but every one is dead-marked.

        This is the backpressure signal source admission control
        observes: dispatching more tuples would only manufacture
        guaranteed losses, so the source should shed (or throttle)
        until probing resurrects a downstream.
        """
        with self._lock:
            downstream_ids = self._tracker.downstream_ids()
            return bool(downstream_ids) and not any(
                self._tracker.is_alive(downstream_id)
                for downstream_id in downstream_ids)

    # -- data plane ------------------------------------------------------
    def observe_arrival(self, now: Optional[float] = None) -> None:
        """Feed one tuple arrival into the input-rate meter (Lambda)."""
        if now is None:
            now = self._clock()
        with self._lock:
            self._rate.observe(now)

    def select(self) -> Optional[str]:
        """Route one tuple without sending (adapters that own delivery)."""
        with self._lock:
            try:
                return self._policy.route()
            except RoutingError:
                return None

    def record_send(self, seq: int, downstream_id: str,
                    now: Optional[float] = None) -> None:
        if now is None:
            now = self._clock()
        with self._lock:
            self._tracker.record_send(seq, downstream_id, now)

    def dispatch(self, seq: int, context: Optional[object] = None,
                 deadline: Optional[float] = None,
                 key_hash: Optional[int] = None) -> Optional[str]:
        """Route + send one tuple; returns the chosen downstream or None.

        A failed egress send dead-marks the downstream — kept in the
        membership so probing can resurrect it, but excluded from
        routing — and the tuple is re-routed to the next live member
        (Sec. IV-C).  ``context`` is passed through to the egress
        opaquely (the runtime uses it for the encoded payload); with
        at-least-once delivery it is also retained for replay until the
        ACK arrives, and ``deadline`` bounds how long replay may keep
        trying (an expired tuple is evicted, not redelivered — overload
        protection wins).

        When the tuple carries a key (``key_hash`` set) and a key-range
        table is attached, ownership overrides the policy: the range
        owner gets the tuple, and a paused or unowned range parks it in
        the replay buffer (retained unassigned) until routing is flipped
        — that park/redeliver cycle is what makes a live migration
        lossless under at-least-once delivery.
        """
        if key_hash is not None and self._key_table is not None:
            return self._dispatch_keyed(seq, key_hash, context, deadline)
        with self._lock:
            try:
                chosen = self._policy.route()
            except RoutingError:
                chosen = None
        tried = set()
        while chosen is not None:
            sent_at = self._send(chosen, seq, context)
            if sent_at is not None:
                self.record_send(seq, chosen, sent_at)
                if self._replay is not None and context is not None:
                    self._replay.retain(seq, chosen, context, now=sent_at,
                                        deadline=deadline)
                if tried:
                    self._registry.increment(metrics_mod.REROUTED_TOTAL,
                                             downstream=chosen)
                    if self._trace.enabled:
                        self._trace.emit(Span(
                            RETRY, seq, sent_at, sent_at,
                            device_id=self.name or "-",
                            hop="egress:%s" % (self.name or "-"),
                            detail=",".join(sorted(tried))))
                self.dispatched += 1
                return chosen
            tried.add(chosen)
            self.mark_dead(chosen)
            chosen = self._fallback(tried)
        if self._replay is not None and context is not None:
            # No live member took the tuple: retain it unassigned so the
            # next redelivery sweep can place it once someone comes back.
            self._replay.retain(seq, None, context, now=self._clock(),
                                deadline=deadline)
        return None

    def _dispatch_keyed(self, seq: int, key_hash: int,
                        context: Optional[object],
                        deadline: Optional[float]) -> Optional[str]:
        with self._lock:
            table = self._key_table
            if self._key_detector is not None:
                self._key_detector.observe(table.range_of(key_hash),
                                           self._clock())
            owner = table.owner_of(key_hash)
            alive = owner is not None and self._tracker.is_alive(owner)
        if alive:
            sent_at = self._send(owner, seq, context)
            if sent_at is not None:
                self.record_send(seq, owner, sent_at)
                if self._replay is not None and context is not None:
                    with self._lock:
                        self._key_of[seq] = key_hash
                    self._replay.retain(seq, owner, context, now=sent_at,
                                        deadline=deadline)
                self.dispatched += 1
                return owner
            self.mark_dead(owner)
        # Paused range, unowned hash, dead owner, or failed send: park
        # the tuple unassigned; the replay sweep re-places it once the
        # range is routable again.  Without a replay buffer (best
        # effort) the tuple is simply dropped, like an exhausted
        # stateless dispatch.
        if self._replay is not None and context is not None:
            with self._lock:
                self._key_of[seq] = key_hash
            self._replay.retain(seq, None, context, now=self._clock(),
                                deadline=deadline)
        return None

    # -- keyed routing ---------------------------------------------------
    @property
    def key_table(self) -> Optional[KeyRangeTable]:
        return self._key_table

    def set_key_table(self, table: Optional[KeyRangeTable]) -> None:
        """Attach the edge's key-range table (enables keyed dispatch).

        A hot-range detector is created alongside it when the config
        carries keyed knobs with splitting enabled.
        """
        with self._lock:
            self._key_table = table
            keyed = self.config.keyed_config()
            self._key_detector = (HotRangeDetector(keyed)
                                  if table is not None
                                  and self.config.keyed is not None
                                  and keyed.split_enabled else None)

    def hot_range(self, now: Optional[float] = None) \
            -> Optional[Tuple[KeyRange, float]]:
        """The hottest splittable range right now, or ``None``.

        Counted on ``swing_hot_keys_detected_total``; callers are
        expected to act on the proposal (split + migrate), which arms
        the detector's cooldown via :meth:`split_range`.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            if self._key_detector is None or self._key_table is None:
                return None
            owners = len({owner for _, owner in self._key_table.ranges()})
            found = self._key_detector.hottest(now, self._key_table,
                                               max(owners, 1))
        if found is not None:
            self._registry.increment(metrics_mod.HOT_KEYS_DETECTED_TOTAL,
                                     edge=self.name or "-")
        return found

    def split_range(self, key_range: KeyRange) -> Tuple[KeyRange, KeyRange]:
        """Split an owned range in place (both halves keep the owner)."""
        with self._lock:
            if self._key_table is None:
                raise RoutingError("no key table attached to %r"
                                   % (self.name or "-"))
            left, right = self._key_table.split(key_range)
            if self._key_detector is not None:
                self._key_detector.forget(key_range)
                self._key_detector.mark_split(self._clock())
        return left, right

    def move_range(self, key_range: KeyRange, new_owner: str,
                   reason: str) -> None:
        """Re-own a range and count the move (reason=hot_split|drain|crash)."""
        with self._lock:
            if self._key_table is None:
                raise RoutingError("no key table attached to %r"
                                   % (self.name or "-"))
            self._key_table.assign(key_range, new_owner)
        labels = {"reason": reason, "edge": self.name or "-"}
        if self.tenant:
            labels["tenant"] = self.tenant
        self._registry.increment(metrics_mod.KEY_RANGE_MOVES_TOTAL, **labels)

    def pause_range(self, key_range: KeyRange) -> None:
        with self._lock:
            if self._key_table is None:
                raise RoutingError("no key table attached to %r"
                                   % (self.name or "-"))
            self._key_table.pause(key_range)

    def resume_range(self, key_range: KeyRange) -> None:
        """Resume a paused range and re-place everything parked on it."""
        with self._lock:
            if self._key_table is None:
                raise RoutingError("no key table attached to %r"
                                   % (self.name or "-"))
            self._key_table.resume(key_range)
        # Parked tuples sit unassigned in the replay buffer; a sweep
        # pops unassigned entries immediately, so the new owner sees
        # them without waiting out the redelivery timeout.
        self._sweep_replay(self._clock())

    def keyed_ranges_of(self, owner: str) -> Tuple[KeyRange, ...]:
        with self._lock:
            if self._key_table is None:
                return ()
            return self._key_table.ranges_owned_by(owner)

    def dispatch_batch(self, seqs: Iterable[int],
                       context: Optional[object] = None,
                       deadline: Optional[float] = None) -> Optional[str]:
        """Route + send one closed batch with a single policy decision.

        The batch is the wire unit: one routing decision, one egress
        send (keyed by the head seq), one pending-ACK entry, and — with
        at-least-once delivery — ONE replay-buffer entry covering the
        whole batch (*context* is the framed batch; redelivery re-sends
        it wholesale, and the receiver's dedup window suppresses any
        members that already made it through).  ``deadline`` should be
        the earliest member deadline.  A batch of one degenerates to
        :meth:`dispatch`, so the size-1 path is byte- and
        decision-identical to per-tuple dispatch.
        """
        seqs = list(seqs)
        if not seqs:
            return None
        self._observe_batch_size(len(seqs))
        if len(seqs) == 1:
            return self.dispatch(seqs[0], context=context, deadline=deadline)
        head = seqs[0]
        with self._lock:
            try:
                chosen = self._policy.route()
            except RoutingError:
                chosen = None
        tried = set()
        while chosen is not None:
            sent_at = self._send(chosen, head, context)
            if sent_at is not None:
                # Per-batch tracker bookkeeping: the head seq stands in
                # for the whole batch (one pending entry, one latency
                # sample, one loss charge on expiry) — this is what lets
                # the batched path amortize the control-plane cost.
                self.record_send(head, chosen, sent_at)
                if self._replay is not None and context is not None:
                    self._register_batch(seqs)
                    self._replay.retain(head, chosen, context, now=sent_at,
                                        deadline=deadline,
                                        nbytes=getattr(context, "nbytes",
                                                       None))
                if tried:
                    self._registry.increment(metrics_mod.REROUTED_TOTAL,
                                             downstream=chosen)
                    if self._trace.enabled:
                        self._trace.emit(Span(
                            RETRY, head, sent_at, sent_at,
                            device_id=self.name or "-",
                            hop="egress:%s" % (self.name or "-"),
                            detail=",".join(sorted(tried))))
                self.dispatched += len(seqs)
                return chosen
            tried.add(chosen)
            self.mark_dead(chosen)
            chosen = self._fallback(tried)
        if self._replay is not None and context is not None:
            self._register_batch(seqs)
            self._replay.retain(head, None, context, now=self._clock(),
                                deadline=deadline,
                                nbytes=getattr(context, "nbytes", None))
        return None

    def _register_batch(self, seqs: List[int]) -> None:
        """Map batch members to their head before retaining the batch."""
        head = seqs[0]
        with self._lock:
            self._batch_members[head] = set(seqs)
            for seq in seqs:
                self._batch_of[seq] = head

    def _observe_batch_size(self, size: int) -> None:
        if self._batch_histogram is None:
            self._batch_histogram = self._registry.histogram(
                metrics_mod.BATCH_SIZE,
                buckets=metrics_mod.BATCH_SIZE_BUCKETS,
                edge=self.name or "-")
        self._batch_histogram.observe(size)

    def _send(self, downstream_id: str, seq: int,
              context: Optional[object]) -> Optional[float]:
        if self._egress is None:
            return self._clock()
        return self._egress.send(downstream_id, seq, context)

    def _fallback(self, tried) -> Optional[str]:
        """Next live, not-yet-tried downstream; None when exhausted."""
        with self._lock:
            try:
                candidate = self._policy.route()
            except RoutingError:
                candidate = None
            if candidate is not None and candidate not in tried:
                return candidate
            for downstream_id in sorted(self._tracker.downstream_ids()):
                if downstream_id not in tried \
                        and self._tracker.is_alive(downstream_id):
                    return downstream_id
        return None

    def mark_dead(self, downstream_id: str) -> None:
        """Stop routing regular traffic to a failing downstream."""
        with self._lock:
            self._tracker.mark_dead(downstream_id)
            self._policy.mark_dead(downstream_id)
        self._request_redelivery(downstream_id)

    def revive_downstream(self, downstream_id: str) -> None:
        """Explicitly resurrect a dead-marked member.

        The normal path back from dead is an ACK (a probe reaches the
        member again) — but when *every* member of an edge is dead no
        tuple and no probe is ever sent, so nothing can ACK and the
        edge wedges with its retention unassigned forever.  A failover
        creates exactly that shape on worker-hosted edges whose sole
        downstream is the master-hosted sink: the crash dead-marks it,
        and the successor re-hosting it is invisible to the data plane.
        Re-registration calls this to break the deadlock; the next
        replay sweep then places the retained frames.
        """
        with self._lock:
            if self._tracker.is_alive(downstream_id):
                return
            self._tracker.revive(downstream_id, self._clock())
            self._policy.mark_alive(downstream_id)

    def on_ack(self, seq: int, processing_delay: Optional[float] = None,
               now: Optional[float] = None,
               downstream_hint: Optional[str] = None
               ) -> Optional[AckResult]:
        """Fold a downstream's timestamp echo into the estimators.

        ``downstream_hint`` backs backlog-driven policies (JSQ) when the
        pending entry already expired: the substrate knows where the
        tuple went even if the tracker gave up on it.
        """
        if now is None:
            now = self._clock()
        if self._replay is not None:
            # Any ACK for this seq releases retention — including one
            # from a previous delivery attempt racing a redelivery.
            self._release_retention(seq)
        with self._lock:
            downstream_id = self._tracker.pending_downstream(seq)
            sample = self._tracker.record_ack(
                seq, now, processing_delay=processing_delay)
            if sample is not None:
                self.ack_count += 1
            resolved = (downstream_id if downstream_id is not None
                        else downstream_hint)
            if resolved is not None:
                on_acked = getattr(self._policy, "on_acked", None)
                if on_acked is not None:
                    on_acked(resolved)
        if sample is None or downstream_id is None:
            return None
        # Record the RTT distribution unconditionally (percentiles must
        # survive tracing being sampled out); the span itself is built
        # only for sampled tuples — this sits on the per-ACK hot path.
        self._registry.observe_histogram(metrics_mod.ACK_RTT_SECONDS,
                                         sample, downstream=downstream_id)
        if self._trace.enabled and self._trace.sampled(seq):
            self._trace.emit(Span(ACK_RTT, seq, now - sample, now,
                                  device_id=self.name or "-",
                                  hop="egress:%s" % (self.name or "-"),
                                  detail=downstream_id),
                             sampled=True)
        return AckResult(downstream_id=downstream_id, sample=sample)

    def _release_retention(self, seq: int) -> None:
        """Release replay retention for one ACKed seq, batch-aware.

        A batch is retained as one entry keyed by its head seq; a
        member's ACK only shrinks the membership, and the entry is
        released when the last member is acknowledged (the simulator
        ACKs batch members one result at a time).
        """
        if self._replay is None:
            return
        with self._lock:
            self._key_of.pop(seq, None)
            head = self._batch_of.pop(seq, None)
            if head is not None:
                members = self._batch_members.get(head)
                if members is not None:
                    members.discard(seq)
                    if members:
                        return  # batch still partially un-ACKed
                    del self._batch_members[head]
                seq = head
        self._replay.release(seq)

    def on_ack_batch(self, seqs: Iterable[int],
                     processing_delay: Optional[float] = None,
                     now: Optional[float] = None,
                     downstream_hint: Optional[str] = None
                     ) -> Optional[AckResult]:
        """Fold one batched timestamp echo into the estimators.

        The runtime worker ACKs a whole batch with one message; the
        head seq matches the batch's single pending entry, yielding one
        latency sample, while ``ack_count`` is credited for every member
        so throughput accounting stays per-tuple.
        """
        seqs = list(seqs)
        if not seqs:
            return None
        if len(seqs) == 1:
            return self.on_ack(seqs[0], processing_delay=processing_delay,
                               now=now, downstream_hint=downstream_hint)
        if now is None:
            now = self._clock()
        head = seqs[0]
        if self._replay is not None:
            with self._lock:
                for seq in seqs:
                    self._batch_of.pop(seq, None)
                    self._key_of.pop(seq, None)
                self._batch_members.pop(head, None)
            self._replay.release(head)
        with self._lock:
            downstream_id = self._tracker.pending_downstream(head)
            sample = self._tracker.record_ack(
                head, now, processing_delay=processing_delay)
            if sample is not None:
                self.ack_count += len(seqs)
            resolved = (downstream_id if downstream_id is not None
                        else downstream_hint)
            if resolved is not None:
                on_acked = getattr(self._policy, "on_acked", None)
                if on_acked is not None:
                    on_acked(resolved)
        if sample is None or downstream_id is None:
            return None
        self._registry.observe_histogram(metrics_mod.ACK_RTT_SECONDS,
                                         sample, downstream=downstream_id)
        if self._trace.enabled and self._trace.sampled(head):
            self._trace.emit(Span(ACK_RTT, head, now - sample, now,
                                  device_id=self.name or "-",
                                  hop="egress:%s" % (self.name or "-"),
                                  detail=downstream_id),
                             sampled=True)
        return AckResult(downstream_id=downstream_id, sample=sample)

    # -- control plane ---------------------------------------------------
    def maybe_update(self, now: Optional[float] = None) -> PolicyDecision:
        """Lazy once-per-interval policy round (the runtime's trigger)."""
        if now is None:
            now = self._clock()
        ran = False
        with self._lock:
            if now - self._last_update >= self.config.control_interval:
                decision = self._update_locked(now)
                ran = True
            else:
                decision = self._policy.last_decision
        if ran:
            self._sweep_replay(now)
        return decision

    def update(self, now: Optional[float] = None) -> PolicyDecision:
        """Run a policy round immediately (periodic processes, tests)."""
        if now is None:
            now = self._clock()
        with self._lock:
            decision = self._update_locked(now)
        self._sweep_replay(now)
        return decision

    def _update_locked(self, now: float) -> PolicyDecision:
        self._last_update = now
        self._tracker.expire_pending(now)
        decision = self._policy.update(self._tracker.stats(),
                                       self._rate.rate(now))
        self.decisions.append((now, decision))
        self._registry.increment(metrics_mod.POLICY_UPDATES_TOTAL,
                                 edge=self.name or "-")
        if decision.probing:
            self._registry.increment(metrics_mod.PROBE_WINDOWS_TOTAL,
                                     edge=self.name or "-")
        return decision

    # -- at-least-once replay --------------------------------------------
    def replay_holds(self, seq: int) -> bool:
        """Whether the replay buffer still owns *seq* (not yet ACKed).

        Substrates use this to gate loss accounting: a tuple that is
        still retained is recoverable, not lost.  A batch member is
        covered by its batch's single entry (keyed by the head seq).
        """
        if self._replay is None:
            return False
        with self._lock:
            head = self._batch_of.get(seq, seq)
        return self._replay.holds(head)

    def replay_depth(self) -> int:
        return len(self._replay) if self._replay is not None else 0

    def export_retention(self) -> List[Tuple[int, int, Optional[float],
                                             object, Tuple[int, ...]]]:
        """Snapshot retained entries for a control-plane checkpoint.

        Each item is ``(seq, attempt, deadline, context, member_seqs)``;
        ``member_seqs`` is non-empty for batch entries (head included).
        """
        if self._replay is None:
            return []
        with self._lock:
            members_of = {head: tuple(sorted(members))
                          for head, members in self._batch_members.items()}
        return [(entry.seq, entry.attempt, entry.deadline, entry.context,
                 members_of.get(entry.seq, ()))
                for entry in self._replay.entries()]

    def import_retention(self, items: Iterable[Tuple[int, int,
                                                     Optional[float], object,
                                                     Tuple[int, ...]]]) -> int:
        """Re-retain checkpointed entries after a master restart.

        Entries land unassigned (``downstream=None``) so the next
        control sweep routes each to a live downstream through the
        normal redelivery path — the sink's dedup window absorbs any
        that were in fact delivered between checkpoint and crash.
        Returns the number of entries imported.
        """
        if self._replay is None:
            return 0
        count = 0
        now = self._clock()
        for seq, attempt, deadline, context, members in items:
            if members and len(members) > 1:
                ordered = [seq] + [s for s in members if s != seq]
                self._register_batch(ordered)
            self._replay.retain(seq, None, context, now=now,
                                deadline=deadline, attempt=attempt,
                                nbytes=getattr(context, "nbytes", None))
            count += 1
        return count

    def release_replay(self, seq: int, reason: str) -> bool:
        """Give up retention of *seq* for *reason* (e.g. it was shed).

        Overload protection wins over delivery guarantees: once a tuple
        is shed there is no point redelivering it, so the substrate
        evicts it here (counted, never silent).

        Shedding one member of a retained batch only shrinks the batch's
        membership; the batch entry itself is evicted when its last
        member is given up (or released by an ACK).
        """
        if self._replay is None:
            return False
        target = seq
        with self._lock:
            self._key_of.pop(seq, None)
            head = self._batch_of.pop(seq, None)
            if head is not None:
                members = self._batch_members.get(head)
                if members is not None:
                    members.discard(seq)
                    if members:
                        return True  # entry stays for the other members
                    del self._batch_members[head]
                target = head
        return self._replay.evict(target, reason)

    def _sweep_replay(self, now: float) -> None:
        """Redeliver retained tuples whose ACK is overdue."""
        if self._replay is None:
            return
        stale = self._replay.take_stale(now - self._redelivery_timeout)
        if stale:
            with self._lock:
                self._redeliver_queue.extend(stale)
            self._drain_redeliveries()
        self._prune_batches()

    def _forget_batch(self, head: int) -> None:
        """Drop the membership maps of a batch whose entry was given up."""
        with self._lock:
            members = self._batch_members.pop(head, None)
            if members:
                for seq in members:
                    self._batch_of.pop(seq, None)

    def _prune_batches(self) -> None:
        """Forget batches whose replay entry is gone (internal eviction).

        The replay buffer evicts oldest entries on its own when a bound
        trips; the membership maps of such a batch would otherwise live
        forever.  Heads sitting in the redelivery queue are skipped —
        their entry is only *temporarily* popped.
        """
        if self._replay is None or not self._batch_members:
            return
        with self._lock:
            queued = {item.seq for item in self._redeliver_queue
                      if not isinstance(item, str)}
            stale_heads = [head for head in self._batch_members
                           if head not in queued
                           and not self._replay.holds(head)]
            for head in stale_heads:
                for seq in self._batch_members.pop(head):
                    self._batch_of.pop(seq, None)

    def _request_redelivery(self, downstream_id: str) -> None:
        """Queue redelivery of everything assigned to *downstream_id*."""
        if self._replay is None:
            return
        with self._lock:
            self._redeliver_queue.append(downstream_id)
        self._drain_redeliveries()

    def _drain_redeliveries(self) -> None:
        """Work through the redelivery queue, one entry at a time.

        A failed redelivery send dead-marks its target, which enqueues
        that target's entries here rather than recursing — the
        ``_redelivering`` guard keeps exactly one drain active.
        """
        with self._lock:
            if self._redelivering:
                return
            self._redelivering = True
        try:
            while True:
                with self._lock:
                    if not self._redeliver_queue:
                        return
                    item = self._redeliver_queue.popleft()
                entries = (self._replay.take_for(item)
                           if isinstance(item, str) else [item])
                for entry in entries:
                    self._redeliver_entry(entry)
        finally:
            with self._lock:
                self._redelivering = False

    def _redeliver_entry(self, entry: ReplayEntry) -> None:
        if self._fault_skip_redelivery:
            # Seeded bug (see __init__): drop this overdue tuple on the
            # floor exactly once — it leaves the replay buffer with no
            # eviction record and is never sent again.
            self._fault_skip_redelivery = False
            self._forget_batch(entry.seq)
            return
        now = self._clock()
        if entry.deadline is not None and now > entry.deadline:
            # Shed-aware: an expired tuple would be dropped on arrival
            # anyway, so redelivering it only wastes the network.
            self._replay.discard(entry, EVICT_EXPIRED)
            self._forget_batch(entry.seq)
            with self._lock:
                self._key_of.pop(entry.seq, None)
            return
        if entry.attempt >= self.config.delivery_config() \
                .max_delivery_attempts:
            self._replay.discard(entry, EVICT_ATTEMPTS)
            self._forget_batch(entry.seq)
            with self._lock:
                self._key_of.pop(entry.seq, None)
            return
        with self._lock:
            key_hash = self._key_of.get(entry.seq)
            keyed = key_hash is not None and self._key_table is not None
            if keyed:
                owner = self._key_table.owner_of(key_hash)
                if owner is None or not self._tracker.is_alive(owner):
                    owner = None
        if keyed:
            # Key-range ownership binds redelivery too: the tuple may
            # only go to the range owner.  No routable owner (paused
            # mid-migration, or the owner is down) re-parks it for the
            # next sweep.
            if owner is not None:
                sent_at = self._send_redelivery(owner, entry)
                if sent_at is not None:
                    self._record_redelivery(entry, owner, sent_at)
                    return
                self.mark_dead(owner)
            self._replay.retain(entry.seq, None, entry.context,
                                now=entry.sent_at, deadline=entry.deadline,
                                attempt=entry.attempt, nbytes=entry.nbytes)
            return
        tried = {entry.downstream} if entry.downstream is not None else set()
        chosen = self._fallback(tried)
        if chosen is None and entry.downstream is not None \
                and self.is_alive(entry.downstream):
            chosen = entry.downstream  # sole survivor: retry in place
        while chosen is not None:
            sent_at = self._send_redelivery(chosen, entry)
            if sent_at is not None:
                self._record_redelivery(entry, chosen, sent_at)
                return
            tried.add(chosen)
            self.mark_dead(chosen)
            chosen = self._fallback(tried)
        # Nobody can take it right now: keep it (unassigned) for the
        # next sweep instead of dropping it on the floor.
        self._replay.retain(entry.seq, None, entry.context,
                            now=entry.sent_at, deadline=entry.deadline,
                            attempt=entry.attempt, nbytes=entry.nbytes)

    def _record_redelivery(self, entry: ReplayEntry, chosen: str,
                           sent_at: float) -> None:
        """Bookkeeping for one successful redelivery send."""
        attempt = entry.attempt + 1
        self.record_send(entry.seq, chosen, sent_at)
        self._replay.retain(entry.seq, chosen, entry.context,
                            now=sent_at, deadline=entry.deadline,
                            attempt=attempt, nbytes=entry.nbytes)
        labels = {"downstream": chosen, "edge": self.name or "-"}
        if self.tenant:
            labels["tenant"] = self.tenant
        self._registry.increment(metrics_mod.REDELIVERED_TOTAL,
                                 **labels)
        if self._trace.enabled:
            self._trace.emit(Span(
                RETRY, entry.seq, sent_at, sent_at,
                device_id=self.name or "-",
                hop="egress:%s" % (self.name or "-"),
                detail="redeliver:%s>%s#%d"
                       % (entry.downstream or "-", chosen, attempt),
                tenant=self.tenant))
        if self.on_redeliver is not None:
            self.on_redeliver(entry.seq, chosen, entry.context,
                              attempt)

    def _send_redelivery(self, downstream_id: str,
                         entry: ReplayEntry) -> Optional[float]:
        if self._egress is None:
            return self._clock()
        send_redelivery = getattr(self._egress, "send_redelivery", None)
        if send_redelivery is not None:
            return send_redelivery(downstream_id, entry.seq, entry.context,
                                   entry.attempt + 1)
        return self._egress.send(downstream_id, entry.seq, entry.context)

    # -- snapshots -------------------------------------------------------
    @property
    def policy(self) -> RoutingPolicy:
        return self._policy

    @property
    def tracker(self) -> AckTracker:
        return self._tracker

    @property
    def rate_meter(self) -> RateMeter:
        return self._rate

    @property
    def last_decision(self) -> PolicyDecision:
        return self._policy.last_decision

    def stats(self) -> Dict[str, DownstreamStats]:
        with self._lock:
            return self._tracker.stats()

    def lost_by_downstream(self) -> Dict[str, int]:
        with self._lock:
            return self._tracker.lost_by_downstream()

    def dead_downstreams(self) -> List[str]:
        with self._lock:
            return sorted(downstream_id for downstream_id
                          in self._tracker.downstream_ids()
                          if not self._tracker.is_alive(downstream_id))
