"""Routing tables with weighted probabilistic tuple routing.

Each upstream function unit keeps a routing table holding the IDs of its
downstream units and a normalized weight per ID (paper Sec. IV-C / V-A).
Upon tuple arrival the upstream draws a weighted random downstream — fast,
constant-time-per-tuple routing requiring only a random number.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.exceptions import RoutingError


def normalize_weights(weights: Mapping[str, float]) -> Dict[str, float]:
    """Scale *weights* to sum to one; uniform if all weights are zero."""
    if not weights:
        return {}
    for downstream_id, weight in weights.items():
        if weight < 0:
            raise RoutingError("negative weight %r for %r" % (weight, downstream_id))
    total = sum(weights.values())
    if total <= 0.0:
        share = 1.0 / len(weights)
        return {downstream_id: share for downstream_id in weights}
    return {downstream_id: weight / total for downstream_id, weight in weights.items()}


class RoutingTable:
    """Normalized weights over downstream IDs with O(log n) sampling."""

    def __init__(self, weights: Optional[Mapping[str, float]] = None) -> None:
        self._weights: Dict[str, float] = {}
        self._ids: List[str] = []
        self._cumulative: List[float] = []
        if weights:
            self.set_weights(weights)

    # -- mutation --------------------------------------------------------
    def set_weights(self, weights: Mapping[str, float]) -> None:
        """Replace the table contents with normalized *weights*."""
        self._weights = normalize_weights(weights)
        self._rebuild()

    def add(self, downstream_id: str, weight: float = 0.0) -> None:
        """Add a downstream (e.g. a device that just joined).

        A zero weight keeps existing proportions; the next policy update
        assigns it a real share.  A positive weight is blended in and the
        table renormalized.
        """
        raw = dict(self._weights)
        raw[downstream_id] = weight
        self.set_weights(raw)

    def remove(self, downstream_id: str) -> None:
        """Drop a downstream (device left / link broken) and renormalize."""
        if downstream_id not in self._weights:
            raise RoutingError("unknown downstream %r" % downstream_id)
        raw = dict(self._weights)
        del raw[downstream_id]
        self.set_weights(raw)

    # -- queries ---------------------------------------------------------
    def __contains__(self, downstream_id: str) -> bool:
        return downstream_id in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def weights(self) -> Dict[str, float]:
        return dict(self._weights)

    def weight(self, downstream_id: str) -> float:
        try:
            return self._weights[downstream_id]
        except KeyError:
            raise RoutingError("unknown downstream %r" % downstream_id) from None

    def ids(self) -> List[str]:
        return list(self._ids)

    # -- routing ---------------------------------------------------------
    def choose(self, rng: random.Random) -> str:
        """Draw one downstream ID proportionally to its weight."""
        if not self._ids:
            raise RoutingError("routing table is empty")
        point = rng.random()
        # bisect_right maps id i to the half-open interval
        # [cumulative[i-1], cumulative[i]): a zero-weight downstream owns
        # an empty interval and can never be drawn, even at the exact
        # boundary points (rng.random() == 0.0 used to land on index 0
        # with bisect_left regardless of that entry's weight).
        index = bisect.bisect_right(self._cumulative, point)
        if index >= len(self._ids):
            index = len(self._ids) - 1
        return self._ids[index]

    def _rebuild(self) -> None:
        self._ids = sorted(self._weights)
        self._cumulative = []
        running = 0.0
        for downstream_id in self._ids:
            running += self._weights[downstream_id]
            self._cumulative.append(running)
        if self._cumulative:
            self._cumulative[-1] = 1.0  # guard against float drift


class RoundRobinCycler:
    """Deterministic rotation over a set of downstream IDs (RR policy)."""

    def __init__(self, ids: Optional[Iterable[str]] = None) -> None:
        self._ids: List[str] = sorted(ids) if ids else []
        self._index = 0

    def set_ids(self, ids: Iterable[str]) -> None:
        current = self._ids[self._index % len(self._ids)] if self._ids else None
        self._ids = sorted(ids)
        if current in self._ids:
            # Keep rotating from the same place when membership changes.
            self._index = self._ids.index(current)
        else:
            self._index = 0

    def ids(self) -> List[str]:
        return list(self._ids)

    def next(self) -> str:
        if not self._ids:
            raise RoutingError("round-robin cycler has no downstreams")
        downstream_id = self._ids[self._index % len(self._ids)]
        self._index = (self._index + 1) % len(self._ids)
        return downstream_id
