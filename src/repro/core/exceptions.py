"""Exception hierarchy for the Swing reproduction.

All library errors derive from :class:`SwingError` so callers can catch a
single base type at API boundaries.
"""


class SwingError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(SwingError):
    """Raised for malformed application dataflow graphs."""


class GraphValidationError(GraphError):
    """Raised when an :class:`~repro.core.graph.AppGraph` fails validation."""


class SchemaError(SwingError):
    """Raised when a tuple does not match its declared schema."""


class RoutingError(SwingError):
    """Raised when a routing decision cannot be made (e.g. no downstreams)."""


class PolicyError(SwingError):
    """Raised for invalid policy configuration or unknown policy names."""


class SerializationError(SwingError):
    """Raised when a tuple cannot be encoded or decoded."""


class RuntimeStateError(SwingError):
    """Raised when a runtime component is driven through an invalid state."""


class DiscoveryError(SwingError):
    """Raised when master/worker discovery fails."""


class DeploymentError(SwingError):
    """Raised when an application graph cannot be deployed on a swarm."""


class SimulationError(SwingError):
    """Raised for invalid simulation configuration or state."""
