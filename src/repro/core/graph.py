"""Application dataflow graphs.

A Swing app is a directed acyclic graph whose vertices are function units
and whose edges carry data tuples (paper Sec. IV-A).  The *logical* graph
declares unit kinds and their topology; at deployment each logical unit may
be replicated on several devices (Fig. 3 shows units B and C each running
on multiple devices), and the routing policies pick among those replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.exceptions import GraphError, GraphValidationError
from repro.core.function_unit import FunctionUnit
from repro.core.tuples import TupleSchema

UnitFactory = Callable[[], FunctionUnit]


@dataclass
class FunctionUnitSpec:
    """Declaration of one logical function unit in an app graph.

    ``factory`` builds a fresh :class:`FunctionUnit` instance per device the
    unit is deployed on.  ``role`` is one of ``"source"``, ``"compute"`` or
    ``"sink"``.
    """

    name: str
    factory: UnitFactory
    role: str = "compute"
    output_schema: Optional[TupleSchema] = None

    _VALID_ROLES = ("source", "compute", "sink")

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("function unit needs a non-empty name")
        if self.role not in self._VALID_ROLES:
            raise GraphError("invalid role %r for unit %r (expected one of %r)"
                             % (self.role, self.name, self._VALID_ROLES))

    @property
    def is_source(self) -> bool:
        return self.role == "source"

    @property
    def is_sink(self) -> bool:
        return self.role == "sink"


class AppGraph:
    """A directed acyclic graph of function unit specs.

    Built with :meth:`add_unit` / :meth:`connect` or the fluent
    :class:`GraphBuilder`.  :meth:`validate` enforces the structural rules
    the paper's deployment step relies on: at least one source and one sink,
    acyclicity, full connectivity, and sources/sinks in the right positions.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._units: Dict[str, FunctionUnitSpec] = {}
        self._downstreams: Dict[str, List[str]] = {}
        self._upstreams: Dict[str, List[str]] = {}

    # -- construction ----------------------------------------------------
    def add_unit(self, spec: FunctionUnitSpec) -> FunctionUnitSpec:
        if spec.name in self._units:
            raise GraphError("duplicate function unit name %r" % spec.name)
        self._units[spec.name] = spec
        self._downstreams[spec.name] = []
        self._upstreams[spec.name] = []
        return spec

    def connect(self, upstream: str, downstream: str) -> None:
        """Add the edge *upstream* -> *downstream* (paper: ``connectTo``)."""
        for name in (upstream, downstream):
            if name not in self._units:
                raise GraphError("unknown function unit %r" % name)
        if upstream == downstream:
            raise GraphError("self-loop on unit %r" % upstream)
        if downstream in self._downstreams[upstream]:
            raise GraphError("duplicate edge %r -> %r" % (upstream, downstream))
        self._downstreams[upstream].append(downstream)
        self._upstreams[downstream].append(upstream)

    # -- queries ---------------------------------------------------------
    @property
    def unit_names(self) -> List[str]:
        return list(self._units)

    def unit(self, name: str) -> FunctionUnitSpec:
        try:
            return self._units[name]
        except KeyError:
            raise GraphError("unknown function unit %r" % name) from None

    def downstreams(self, name: str) -> List[str]:
        """Names of units this unit sends tuples to."""
        self.unit(name)
        return list(self._downstreams[name])

    def upstreams(self, name: str) -> List[str]:
        """Names of units this unit receives tuples from."""
        self.unit(name)
        return list(self._upstreams[name])

    def sources(self) -> List[FunctionUnitSpec]:
        return [spec for spec in self._units.values() if spec.is_source]

    def sinks(self) -> List[FunctionUnitSpec]:
        return [spec for spec in self._units.values() if spec.is_sink]

    def edges(self) -> List[Tuple[str, str]]:
        return [(up, down)
                for up, downs in self._downstreams.items()
                for down in downs]

    def compute_units(self) -> List[FunctionUnitSpec]:
        return [spec for spec in self._units.values()
                if not spec.is_source and not spec.is_sink]

    # -- validation ------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Return unit names in topological order; raise on cycles."""
        in_degree = {name: len(ups) for name, ups in self._upstreams.items()}
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for downstream in self._downstreams[name]:
                in_degree[downstream] -= 1
                if in_degree[downstream] == 0:
                    ready.append(downstream)
        if len(order) != len(self._units):
            cyclic = sorted(set(self._units) - set(order))
            raise GraphValidationError("cycle involving units %r" % (cyclic,))
        return order

    def validate(self) -> None:
        """Check the structural invariants required for deployment."""
        if not self._units:
            raise GraphValidationError("graph %r has no function units" % self.name)
        if not self.sources():
            raise GraphValidationError("graph %r has no source unit" % self.name)
        if not self.sinks():
            raise GraphValidationError("graph %r has no sink unit" % self.name)
        for spec in self._units.values():
            ups, downs = self._upstreams[spec.name], self._downstreams[spec.name]
            if spec.is_source and ups:
                raise GraphValidationError("source %r has upstream units %r"
                                           % (spec.name, ups))
            if spec.is_sink and downs:
                raise GraphValidationError("sink %r has downstream units %r"
                                           % (spec.name, downs))
            if not spec.is_source and not ups:
                raise GraphValidationError("unit %r is unreachable (no upstream)"
                                           % spec.name)
            if not spec.is_sink and not downs:
                raise GraphValidationError("unit %r is a dead end (no downstream)"
                                           % spec.name)
        self.topological_order()

    def stages(self) -> List[str]:
        """Return the linear pipeline order for chain-shaped graphs.

        Many sensing apps (both apps in the paper) are simple chains
        source -> f1 -> ... -> sink.  Raises if the graph is not a chain.
        """
        order = self.topological_order()
        for name in order:
            if len(self._downstreams[name]) > 1 or len(self._upstreams[name]) > 1:
                raise GraphError("graph %r is not a linear pipeline" % self.name)
        return order


class GraphBuilder:
    """Fluent builder mirroring the paper's ``compose()`` API.

    Example::

        graph = (GraphBuilder("face-recognition")
                 .source("camera", Camera)
                 .unit("detector", Detector)
                 .unit("recognizer", Recognizer)
                 .sink("display", Display)
                 .chain("camera", "detector", "recognizer", "display")
                 .build())
    """

    def __init__(self, name: str = "app") -> None:
        self._graph = AppGraph(name)

    def source(self, name: str, factory: UnitFactory,
               output_schema: Optional[TupleSchema] = None) -> "GraphBuilder":
        self._graph.add_unit(FunctionUnitSpec(name, factory, role="source",
                                              output_schema=output_schema))
        return self

    def unit(self, name: str, factory: UnitFactory,
             output_schema: Optional[TupleSchema] = None) -> "GraphBuilder":
        self._graph.add_unit(FunctionUnitSpec(name, factory, role="compute",
                                              output_schema=output_schema))
        return self

    def sink(self, name: str, factory: UnitFactory) -> "GraphBuilder":
        self._graph.add_unit(FunctionUnitSpec(name, factory, role="sink"))
        return self

    def connect(self, upstream: str, downstream: str) -> "GraphBuilder":
        self._graph.connect(upstream, downstream)
        return self

    def chain(self, *names: str) -> "GraphBuilder":
        """Connect *names* in sequence: a -> b -> c -> ..."""
        for upstream, downstream in zip(names, names[1:]):
            self._graph.connect(upstream, downstream)
        return self

    def build(self) -> AppGraph:
        self._graph.validate()
        return self._graph
