"""Tuple batching: the shared flush policy of the batched data plane.

Per-tuple dispatch pays one routing decision, one framed message, and
one ACK round trip per tuple — ~18 µs on the microbenchmark, nowhere
near what the hardware allows.  SEEP's transport (and the paper's
serialization service, Sec. IV-C) amortize that cost by framing many
tuples together; :class:`BatchConfig` is the substrate-neutral
description of *when* to close a batch, consumed identically by the
runtime's :class:`~repro.runtime.dispatcher.UpstreamDispatcher` and the
simulator's dispatch process, so batching decisions replay the same on
both substrates.

A batch flushes when either bound is hit:

* ``max_tuples`` — the batch is full (size bound), or
* ``max_delay`` — the oldest buffered tuple has waited long enough
  (latency bound; keeps tail latency bounded at low input rates).

``max_tuples=1`` (the default) disables batching entirely: every tuple
flushes immediately through the legacy single-tuple wire format, which
stays byte-identical so mixed configurations interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.exceptions import SwingError


@dataclass(frozen=True)
class BatchConfig:
    """Flush policy for one upstream edge's tuple batches."""

    #: close the batch once this many tuples are buffered (1 = batching off)
    max_tuples: int = 1
    #: close a partial batch once its oldest tuple has waited this long,
    #: seconds; the hosting substrate checks this on its own cadence
    #: (dispatch calls + the worker's idle loop), so it is a lower
    #: bound on the wait, not a hard deadline
    max_delay: float = 0.01

    def __post_init__(self) -> None:
        if self.max_tuples < 1:
            raise SwingError("batch max_tuples must be >= 1")
        if self.max_delay < 0:
            raise SwingError("batch max_delay must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.max_tuples > 1


class BatchBuffer:
    """Accumulates pending items until the flush policy closes the batch.

    Not thread-safe: the hosting adapter brings its own lock (the
    runtime's dispatcher) or is single-threaded (the engine).
    """

    __slots__ = ("config", "_items", "_opened_at")

    def __init__(self, config: BatchConfig) -> None:
        self.config = config
        self._items: List[Any] = []
        self._opened_at: Optional[float] = None

    def __len__(self) -> int:
        return len(self._items)

    def append(self, item: Any, now: float) -> bool:
        """Buffer one item; True when the batch is now full (size bound)."""
        if not self._items:
            self._opened_at = now
        self._items.append(item)
        return len(self._items) >= self.config.max_tuples

    def due(self, now: float) -> bool:
        """True when the oldest buffered item has waited past max_delay."""
        return (bool(self._items) and self._opened_at is not None
                and now - self._opened_at >= self.config.max_delay)

    def take(self) -> Tuple[Any, ...]:
        """Drain and return everything buffered (empty tuple when idle)."""
        items = tuple(self._items)
        self._items.clear()
        self._opened_at = None
        return items
