"""Multi-tenant control plane: many pipelines sharing one swarm.

The paper's deployment shape is many concurrent sensing apps running over
a single device fleet, but historically one ``Master`` owned one swarm
running one pipeline.  This module introduces the vocabulary and the one
cross-tenant decision function both substrates share:

* **TenantId** — a plain string naming one tenant pipeline.  The empty
  string :data:`DEFAULT_TENANT` is the implicit single-tenant namespace:
  every wire frame, metric label and edge key stays byte-identical to
  the pre-multi-tenant system when the tenant is the default one.
* **TenantSpec** — one tenant's share of the swarm: an admission weight
  (how much of a contended queue it may hold) and a priority tier
  (who sheds first when everyone is over budget).
* **PipelineDeployment** — the record a deployment session is built
  from: the spec plus the pipeline it runs.
* :func:`fair_admission` — the cross-tenant extension of
  ``repro.core.overload.admission``.  It is a pure function of queue
  state so shedding decisions stay replayable and identical across the
  threaded runtime and the discrete-event simulator, exactly like the
  single-tenant admission function it generalises.

Fair-share semantics
--------------------

Capacity is divided into weighted integer *budgets*
(:func:`tenant_budgets`).  While the shared queue has free space every
arrival is admitted — budgets only matter under contention.  When the
queue is full:

* an arrival from a tenant **at or over** its own budget is rejected
  (the overloaded tenant sheds its own newest tuple first — it can
  never displace a well-behaved tenant's work);
* an arrival from a tenant **under** its budget evicts the oldest tuple
  of the most-over-budget tenant, preferring the lowest priority tier
  among over-budget tenants and breaking remaining ties by lexicographic
  tenant id (determinism for trace replay);
* if no tenant is over budget (capacity smaller than the budget sum's
  rounding slack), the arrival is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.core import overload as overload_mod
from repro.core.exceptions import RuntimeStateError

#: a tenant is named by a plain string; the empty string is the implicit
#: single-tenant namespace (no wire/metric/key changes at N=1)
TenantId = str

#: the implicit tenant every pre-multi-tenant artifact belongs to
DEFAULT_TENANT: TenantId = ""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of the shared swarm."""

    #: non-empty tenant name; becomes the ``tenant=`` metric label and
    #: the wire tag on this tenant's frames
    tenant_id: TenantId
    #: relative admission weight; a tenant's budget in a contended queue
    #: is ``capacity * weight / sum(weights)`` (floored, min 1)
    weight: float = 1.0
    #: priority tier: under contention, *lower* tiers shed before higher
    #: ones.  Equal-tier tenants shed by over-budget depth.
    priority: int = 0
    #: optional per-tenant source rate (tuples/s) overriding the shared
    #: workload's rate; ``None`` inherits the workload default
    input_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise RuntimeStateError("tenant_id must be a non-empty string")
        # The id embeds into scoped unit/edge/instance keys, whose
        # separators must stay unambiguous.
        for forbidden in (":", ">", "@"):
            if forbidden in self.tenant_id:
                raise RuntimeStateError(
                    "tenant_id must not contain %r" % forbidden)
        if self.weight <= 0:
            raise RuntimeStateError("tenant weight must be positive")
        if self.input_rate is not None and self.input_rate <= 0:
            raise RuntimeStateError("tenant input_rate must be positive (or None)")


@dataclass(frozen=True)
class PipelineDeployment:
    """What one deployment session runs: a tenant plus its pipeline."""

    spec: TenantSpec
    #: name of the pipeline/application this tenant runs (informational;
    #: the session holds the actual graph object)
    pipeline: str = ""

    @property
    def tenant_id(self) -> TenantId:
        return self.spec.tenant_id


def tenant_budgets(specs: Sequence[TenantSpec],
                   capacity: int) -> Dict[TenantId, int]:
    """Split *capacity* queue slots into weighted per-tenant budgets.

    Every tenant gets at least one slot so a tiny weight cannot starve a
    tenant outright; the remainder is apportioned by weight (floored).
    Budgets may sum to slightly less than *capacity* — the slack is
    first-come-first-served and only matters at the margin.
    """
    if capacity < 1:
        raise RuntimeStateError("capacity must be >= 1")
    if not specs:
        return {}
    seen = set()
    for spec in specs:
        if spec.tenant_id in seen:
            raise RuntimeStateError("duplicate tenant id %r" % (spec.tenant_id,))
        seen.add(spec.tenant_id)
    total_weight = sum(spec.weight for spec in specs)
    return {spec.tenant_id: max(1, int(capacity * spec.weight / total_weight))
            for spec in specs}


@dataclass(frozen=True)
class FairDecision:
    """Outcome of one cross-tenant admission decision.

    ``action`` reuses the single-tenant admission vocabulary
    (``ADMIT`` / ``EVICT_OLDEST`` / ``REJECT``); when the action is
    ``EVICT_OLDEST``, ``victim`` names the tenant whose oldest tuple
    must be shed to make room.
    """

    action: str
    victim: Optional[TenantId] = None


def fair_admission(tenant_id: TenantId,
                   depths: Mapping[TenantId, int],
                   budgets: Mapping[TenantId, int],
                   capacity: Optional[int],
                   priorities: Optional[Mapping[TenantId, int]] = None,
                   ) -> FairDecision:
    """Cross-tenant admission for one arrival at a shared bounded queue.

    *depths* maps each tenant to the number of its tuples currently in
    the queue; *budgets* comes from :func:`tenant_budgets`.  Pure
    function — both substrates consult it so a replayed trace sheds
    identically on either side.
    """
    if capacity is None:
        return FairDecision(overload_mod.ADMIT)
    total = sum(depths.values())
    if total < capacity:
        return FairDecision(overload_mod.ADMIT)
    # Queue full.  A tenant at/over its own budget sheds its own newest
    # tuple; it never touches anyone else's.
    own_depth = depths.get(tenant_id, 0)
    own_budget = budgets.get(tenant_id, 0)
    if own_depth >= own_budget:
        return FairDecision(overload_mod.REJECT)
    # The arrival is within its budget: evict from whoever is most over
    # theirs, lowest priority tier first, tenant id as the final tie-break.
    victim: Optional[TenantId] = None
    victim_key: Optional[tuple] = None
    for other, depth in depths.items():
        if depth <= 0:
            continue
        over = depth - budgets.get(other, 0)
        if over <= 0:
            continue
        tier = priorities.get(other, 0) if priorities else 0
        # Sort ascending: lowest tier, then most over budget, then
        # lexicographically smallest id wins the victim slot.
        key = (tier, -over, other)
        if victim_key is None or key < victim_key:
            victim = other
            victim_key = key
    if victim is None:
        return FairDecision(overload_mod.REJECT)
    return FairDecision(overload_mod.EVICT_OLDEST, victim=victim)


class MultiTenantController:
    """Owns one controller per tenant over a shared clock and registry.

    The per-tenant controllers are the existing single-tenant unit
    (``LrsController`` or the simulator's engine adapter); this class
    only holds the map and the shared fair-share state — it has no
    opinions about transport, which is what lets both substrates reuse
    it.
    """

    def __init__(self, specs: Sequence[TenantSpec],
                 factory: Callable[[TenantSpec], object],
                 queue_capacity: Optional[int] = None) -> None:
        if not specs:
            raise RuntimeStateError("need at least one tenant spec")
        self.specs: Dict[TenantId, TenantSpec] = {}
        for spec in specs:
            if spec.tenant_id in self.specs:
                raise RuntimeStateError("duplicate tenant id %r" % (spec.tenant_id,))
            self.specs[spec.tenant_id] = spec
        self._controllers: Dict[TenantId, object] = {
            tenant_id: factory(spec) for tenant_id, spec in self.specs.items()}
        self.queue_capacity = queue_capacity
        self.budgets: Dict[TenantId, int] = (
            tenant_budgets(list(self.specs.values()), queue_capacity)
            if queue_capacity is not None else {})
        self.priorities: Dict[TenantId, int] = {
            tenant_id: spec.priority for tenant_id, spec in self.specs.items()}

    def tenant_ids(self) -> Sequence[TenantId]:
        return list(self.specs)

    def controller(self, tenant_id: TenantId) -> object:
        try:
            return self._controllers[tenant_id]
        except KeyError:
            raise RuntimeStateError("unknown tenant %r" % (tenant_id,)) from None

    def controllers(self) -> Dict[TenantId, object]:
        return dict(self._controllers)

    def admit(self, tenant_id: TenantId,
              depths: Mapping[TenantId, int]) -> FairDecision:
        """Fair-share admission for one arrival at the shared queue."""
        return fair_admission(tenant_id, depths, self.budgets,
                              self.queue_capacity, self.priorities)
