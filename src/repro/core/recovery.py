"""Control-plane crash recovery: checkpoints, stores and timing knobs.

Seven PRs hardened the *workers* against churn; this module makes the
**master** survivable.  The master is the single writer of swarm
membership, per-tenant deployment state and (through its co-located
runtime) the source edges' replay retention — all of it in-memory, all
of it gone on a crash.  Recovery rests on three pieces:

``RecoveryConfig``
    Frozen knob bundle: checkpoint cadence plus the runtime timing
    knobs that used to be scattered hardcoded sleeps (worker idle tick,
    drain poll, master sweep interval, deployment await).  Chaos tests
    compress time by shrinking these deterministically instead of
    monkeypatching module constants.

``ControlPlaneCheckpoint``
    A versioned, frozen snapshot of everything the master must carry
    across a restart: its fencing epoch, the worker membership, each
    tenant session's placement + started flag, the replay-buffer
    retention index of the master-hosted edges (seq, attempt, deadline
    and the encoded wire frame, so redelivery after restart re-sends
    real bytes), and the sink dedup window's high-water keys (so a
    restarted sink does not double-deliver what its predecessor already
    delivered).  Serialized through the hardened binary codec — never
    pickle — and decoded *strictly*: unknown fields or a foreign
    version are rejected loudly, not silently dropped.

``CheckpointStore``
    The durability port.  :class:`InMemoryCheckpointStore` backs tests
    and single-process failover; :class:`FileCheckpointStore` writes
    via temp-file + ``os.replace`` so a crash mid-write can never leave
    a torn checkpoint behind.

``CheckpointManager``
    Cadence: periodic (piggybacked on control traffic) + on-mutation
    writes, and the ``swing_checkpoint_age_seconds`` gauge so staleness
    is observable.

The crash model matches the simulator mirror: the checkpoint store is
durable and synchronously written (a final checkpoint at crash time
stands in for a per-dispatch write-ahead log), while every in-memory
structure of the master process is lost.  DESIGN.md §12 spells out the
resulting guarantee matrix.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError, SerializationError

#: wire version of the checkpoint payload; bump on layout change
CHECKPOINT_VERSION = 1

_CHECKPOINT_FIELDS = frozenset({"version", "epoch", "workers", "sessions",
                                "retention", "dedup", "key_ranges"})
_SESSION_FIELDS = frozenset({"tenant", "started", "assignments"})
_ENTRY_FIELDS = frozenset({"seq", "attempt", "deadline", "frame", "seqs"})


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for checkpoint cadence and runtime timing.

    ``checkpoint_interval``
        Seconds between periodic checkpoint writes (0 disables the
        periodic path; on-mutation writes still happen).
    ``checkpoint_on_mutation``
        Write immediately on membership / deployment changes.
    ``worker_idle_tick``
        Worker mailbox poll timeout — bounds how long a partial batch
        can sit buffered, and how fast a worker notices shutdown.
    ``drain_quiet`` / ``drain_poll``
        Graceful-drain quiescence window and its poll period.
    ``detector_interval``
        Master failure-detector sweep period; ``None`` keeps the
        historical ``heartbeat_timeout / 2``.
    ``await_timeout`` / ``await_poll``
        Bound + poll for membership/deployment waits (app runner).
    ``run_poll``
        The app runner's completion-poll period.
    """

    checkpoint_interval: float = 1.0
    checkpoint_on_mutation: bool = True
    worker_idle_tick: float = 0.05
    drain_quiet: float = 0.25
    drain_poll: float = 0.01
    detector_interval: Optional[float] = None
    await_timeout: float = 5.0
    await_poll: float = 0.005
    run_poll: float = 0.02

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise RuntimeStateError("checkpoint_interval must be >= 0")
        for name in ("worker_idle_tick", "drain_poll", "await_timeout",
                     "await_poll", "run_poll"):
            if getattr(self, name) <= 0:
                raise RuntimeStateError("%s must be positive" % name)
        if self.drain_quiet < 0:
            raise RuntimeStateError("drain_quiet must be >= 0")
        if self.detector_interval is not None and self.detector_interval <= 0:
            raise RuntimeStateError("detector_interval must be positive "
                                    "when set")


@dataclass(frozen=True)
class SessionState:
    """One tenant session's deployment state inside a checkpoint."""

    tenant: str
    started: bool
    #: unit name -> sorted hosting worker ids
    assignments: Tuple[Tuple[str, Tuple[str, ...]], ...]


@dataclass(frozen=True)
class RetainedEntry:
    """One un-ACKed replay-buffer entry carried across a restart.

    ``frame`` is the encoded wire payload (a single tuple, or a batch
    frame when ``len(seqs) > 1``), so the restarted master can redeliver
    real bytes without re-running any unit.
    """

    seq: int
    attempt: int
    deadline: Optional[float]
    frame: bytes
    seqs: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ControlPlaneCheckpoint:
    """Versioned snapshot of the master's recoverable state."""

    epoch: int = 0
    workers: Tuple[str, ...] = ()
    sessions: Tuple[SessionState, ...] = ()
    #: edge key -> retained entries of that edge's replay buffer
    retention: Tuple[Tuple[str, Tuple[RetainedEntry, ...]], ...] = ()
    #: sink/ingress dedup high-water keys, oldest first: (edge, seq)
    dedup: Tuple[Tuple[str, int], ...] = ()
    #: keyed routing: edge key -> ((lo, hi, owner), ...) range table;
    #: empty on stateless deployments and then absent from the wire, so
    #: checkpoints without keyed edges stay byte-identical to version 1
    #: payloads written before this field existed
    key_ranges: Tuple[Tuple[str, Tuple[Tuple[int, int, str], ...]], ...] = ()

    # -- codec -----------------------------------------------------------
    def encode(self) -> bytes:
        from repro.runtime.serialization import encode_value
        fields = {
            "version": CHECKPOINT_VERSION,
            "epoch": self.epoch,
            "workers": list(self.workers),
            "sessions": [{
                "tenant": session.tenant,
                "started": session.started,
                "assignments": {unit: list(hosts)
                                for unit, hosts in session.assignments},
            } for session in self.sessions],
            "retention": {edge: [{
                "seq": entry.seq,
                "attempt": entry.attempt,
                "deadline": entry.deadline,
                "frame": entry.frame,
                "seqs": list(entry.seqs),
            } for entry in entries] for edge, entries in self.retention},
            "dedup": [[edge, seq] for edge, seq in self.dedup],
        }
        if self.key_ranges:
            fields["key_ranges"] = {
                edge: [[lo, hi, owner] for lo, hi, owner in ranges]
                for edge, ranges in self.key_ranges}
        return encode_value(fields)

    @classmethod
    def decode(cls, data: bytes) -> "ControlPlaneCheckpoint":
        """Strict decode: unknown fields and foreign versions are errors.

        A checkpoint written by a *newer* master may carry state this
        build cannot honor; restoring a silently-truncated view of it
        would violate the delivery guarantee, so version skew fails
        loudly instead.
        """
        from repro.runtime.serialization import decode_value
        decoded = decode_value(data)
        if not isinstance(decoded, dict):
            raise SerializationError("checkpoint payload is not a mapping")
        unknown = set(decoded) - _CHECKPOINT_FIELDS
        if unknown:
            raise SerializationError(
                "checkpoint carries unknown fields %s (version skew?)"
                % sorted(unknown))
        version = decoded.get("version")
        if version != CHECKPOINT_VERSION:
            raise SerializationError(
                "checkpoint version %r not supported (want %d)"
                % (version, CHECKPOINT_VERSION))
        try:
            epoch = decoded.get("epoch", 0)
            workers = tuple(decoded.get("workers", []))
            sessions = tuple(cls._decode_session(raw)
                             for raw in decoded.get("sessions", []))
            retention = tuple(
                (edge, tuple(cls._decode_entry(raw) for raw in entries))
                for edge, entries in sorted(
                    decoded.get("retention", {}).items()))
            dedup = tuple((pair[0], pair[1])
                          for pair in decoded.get("dedup", []))
            key_ranges = tuple(
                (edge, tuple((item[0], item[1], item[2])
                             for item in ranges))
                for edge, ranges in sorted(
                    decoded.get("key_ranges", {}).items()))
        except (TypeError, ValueError, KeyError, IndexError,
                AttributeError) as error:
            raise SerializationError("malformed checkpoint: %s" % error) \
                from error
        if not isinstance(epoch, int) or epoch < 0:
            raise SerializationError("checkpoint epoch must be an int >= 0")
        for worker_id in workers:
            if not isinstance(worker_id, str) or not worker_id:
                raise SerializationError("checkpoint worker ids must be "
                                         "non-empty strings")
        for edge, seq in dedup:
            if not isinstance(edge, str) or not isinstance(seq, int):
                raise SerializationError("checkpoint dedup keys must be "
                                         "(edge, seq) pairs")
        for edge, ranges in key_ranges:
            if not isinstance(edge, str):
                raise SerializationError("checkpoint key-range edges must "
                                         "be strings")
            for lo, hi, owner in ranges:
                if not isinstance(lo, int) or not isinstance(hi, int) \
                        or not isinstance(owner, str):
                    raise SerializationError(
                        "checkpoint key ranges must be (lo, hi, owner)")
        return cls(epoch=epoch, workers=workers, sessions=sessions,
                   retention=retention, dedup=dedup, key_ranges=key_ranges)

    @staticmethod
    def _decode_session(raw: object) -> SessionState:
        if not isinstance(raw, dict):
            raise SerializationError("checkpoint session is not a mapping")
        unknown = set(raw) - _SESSION_FIELDS
        if unknown:
            raise SerializationError(
                "checkpoint session carries unknown fields %s"
                % sorted(unknown))
        tenant = raw.get("tenant", "")
        started = raw.get("started", False)
        assignments = raw.get("assignments", {})
        if not isinstance(tenant, str) or not isinstance(started, bool) \
                or not isinstance(assignments, dict):
            raise SerializationError("malformed checkpoint session")
        return SessionState(
            tenant=tenant, started=started,
            assignments=tuple(sorted(
                (unit, tuple(hosts)) for unit, hosts in assignments.items())))

    @staticmethod
    def _decode_entry(raw: object) -> RetainedEntry:
        if not isinstance(raw, dict):
            raise SerializationError("checkpoint entry is not a mapping")
        unknown = set(raw) - _ENTRY_FIELDS
        if unknown:
            raise SerializationError(
                "checkpoint entry carries unknown fields %s" % sorted(unknown))
        seq = raw["seq"]
        attempt = raw.get("attempt", 1)
        deadline = raw.get("deadline")
        frame = raw.get("frame", b"")
        seqs = tuple(raw.get("seqs", []))
        if not isinstance(seq, int) or not isinstance(attempt, int):
            raise SerializationError("checkpoint entry seq/attempt must be "
                                     "ints")
        if deadline is not None and not isinstance(deadline, float):
            raise SerializationError("checkpoint entry deadline must be a "
                                     "float or None")
        if not isinstance(frame, (bytes, bytearray, memoryview)):
            raise SerializationError("checkpoint entry frame must be bytes")
        return RetainedEntry(seq=seq, attempt=attempt, deadline=deadline,
                             frame=bytes(frame), seqs=seqs)


# -- durability port -----------------------------------------------------
class CheckpointStore:
    """Where checkpoint bytes go; implementations must be atomic."""

    def save(self, data: bytes) -> None:
        raise NotImplementedError

    def load(self) -> Optional[bytes]:
        raise NotImplementedError


class InMemoryCheckpointStore(CheckpointStore):
    """Latest-wins in-memory store (tests, single-process failover)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Optional[bytes] = None
        self.writes = 0

    def save(self, data: bytes) -> None:
        with self._lock:
            self._data = bytes(data)
            self.writes += 1

    def load(self) -> Optional[bytes]:
        with self._lock:
            return self._data


class FileCheckpointStore(CheckpointStore):
    """Single-file store with atomic-rename writes.

    The write goes to ``<path>.tmp`` first and is published with
    :func:`os.replace`, so readers see either the previous checkpoint or
    the complete new one — never a torn prefix.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def save(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self) -> Optional[bytes]:
        try:
            with open(self.path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None


class CheckpointManager:
    """Drives periodic + on-mutation checkpointing for one master.

    ``capture`` is the master's snapshot callable; it runs under the
    manager's lock, so one coherent checkpoint is written at a time.
    The ``swing_checkpoint_age_seconds`` gauge is refreshed on every
    call, making staleness observable even between writes.
    """

    def __init__(self, capture: Callable[[], ControlPlaneCheckpoint],
                 store: CheckpointStore,
                 config: Optional[RecoveryConfig] = None,
                 registry: Optional[metrics_mod.MetricsRegistry] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config if config is not None else RecoveryConfig()
        self.store = store
        self._capture = capture
        self._clock = clock
        # Internal component: uninjected -> private registry, never the
        # process-wide default (cross-instance pollution).
        self._registry = (registry if registry is not None
                          else metrics_mod.MetricsRegistry())
        self._lock = threading.Lock()
        self._last_write: Optional[float] = None
        self.writes = 0

    def write(self, now: Optional[float] = None) -> None:
        """Capture and persist one checkpoint unconditionally."""
        if now is None:
            now = self._clock()
        with self._lock:
            data = self._capture().encode()
            self.store.save(data)
            self._last_write = now
            self.writes += 1
        self._export_age(now)

    def mutation(self, now: Optional[float] = None) -> None:
        """A membership/deployment change happened; write if configured."""
        if self.config.checkpoint_on_mutation:
            self.write(now)

    def maybe_checkpoint(self, now: Optional[float] = None) -> bool:
        """Periodic path: write when the interval elapsed; returns
        True when a checkpoint was written."""
        if now is None:
            now = self._clock()
        interval = self.config.checkpoint_interval
        wrote = False
        if interval > 0:
            with self._lock:
                due = (self._last_write is None
                       or now - self._last_write >= interval)
            if due:
                self.write(now)
                wrote = True
        if not wrote:
            self._export_age(now)
        return wrote

    def age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last successful write (None before any)."""
        if now is None:
            now = self._clock()
        with self._lock:
            if self._last_write is None:
                return None
            return max(0.0, now - self._last_write)

    def load(self) -> Optional[ControlPlaneCheckpoint]:
        data = self.store.load()
        if data is None:
            return None
        return ControlPlaneCheckpoint.decode(data)

    def _export_age(self, now: float) -> None:
        age = self.age(now)
        if age is not None:
            self._registry.set_gauge(metrics_mod.CHECKPOINT_AGE_SECONDS, age)


def load_checkpoint(store: CheckpointStore
                    ) -> Optional[ControlPlaneCheckpoint]:
    """Read + strictly decode the latest checkpoint (None when absent)."""
    data = store.load()
    if data is None:
        return None
    return ControlPlaneCheckpoint.decode(data)


def retention_entries(exported: List[Tuple[int, int, Optional[float],
                                           object, Tuple[int, ...]]]
                      ) -> Tuple[RetainedEntry, ...]:
    """Build checkpoint entries from a controller's retention export.

    Only byte-payload contexts survive into the checkpoint (a batch
    context contributes its frame); opaque simulator contexts are the
    simulator's own responsibility and are skipped.
    """
    entries = []
    for seq, attempt, deadline, context, members in exported:
        frame = getattr(context, "frame", context)
        if not isinstance(frame, (bytes, bytearray, memoryview)):
            continue
        entries.append(RetainedEntry(seq=seq, attempt=attempt,
                                     deadline=deadline, frame=bytes(frame),
                                     seqs=tuple(members)))
    return tuple(entries)
