"""Overload protection shared by both substrates (runtime + simulator).

Once the swarm's aggregate service rate falls below the input rate
(Lambda > sum of mu_i), LRS "selects all" and every unbounded queue in
the system grows without limit: tuples arrive seconds stale and memory
grows unboundedly.  This module is the single source of truth for how
the system degrades *gracefully* instead:

* **Deadlines** — a tuple may carry an absolute deadline stamped at the
  source (``created_at + ttl``).  Any stage (dispatcher egress, worker
  ingress, sink) drops an expired tuple instead of spending transmission
  or compute on work nobody can use.
* **Bounded queues** — every queue (the runtime's mailboxes, the
  simulator's source egress and device ingress queues) takes a capacity
  and a drop policy.  :func:`admission` is the one decision function
  both substrates consult, so a replayed trace sheds identically on
  either side (mirrored by the parity harness in
  ``tests/integration/test_overload.py``).
* **Source admission control** — :func:`source_admission` turns the
  local backpressure signal (queue depth, all-downstreams-dead) into a
  shed-at-source decision, so doomed work is refused before it is
  generated into the pipeline.

Every shed is counted in the ``swing_tuples_shed_total{reason=...}``
counter family (:mod:`repro.metrics`) with one of the
:data:`SHED_REASONS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import RuntimeStateError

# -- drop policies -------------------------------------------------------
#: evict the oldest queued element to admit the newcomer (frame-like
#: streams: the newest sample is the most valuable one)
DROP_OLDEST = "drop_oldest"
#: refuse the newcomer, keep the queue as is (FIFO work queues)
DROP_NEWEST = "drop_newest"
#: make the producer wait for space (classic backpressure)
BLOCK = "block"

DROP_POLICIES = frozenset({DROP_OLDEST, DROP_NEWEST, BLOCK})

# -- admission decisions (what a queue should do with one arrival) -------
ADMIT = "admit"
EVICT_OLDEST = "evict_oldest"
REJECT = "reject"
WAIT = "wait"

# -- shed reasons (the counter family's ``reason`` label values) ---------
REASON_EXPIRED = "expired"
REASON_QUEUE_FULL = "queue_full"
REASON_BACKPRESSURE = "backpressure"

SHED_REASONS = (REASON_EXPIRED, REASON_QUEUE_FULL, REASON_BACKPRESSURE)


@dataclass(frozen=True)
class OverloadConfig:
    """One experiment's overload-protection knobs, shared verbatim by the
    threaded runtime and the discrete-event simulator.

    The defaults disable every mechanism, preserving the historical
    unbounded-queue behavior (which the Fig. 1 delay build-up experiment
    depends on).
    """

    #: seconds of useful life from creation; ``None`` = tuples never
    #: expire.  The source stamps ``deadline = created_at + ttl``.
    ttl: Optional[float] = None
    #: per-queue capacity (worker ingress / runtime mailbox) in tuples;
    #: ``None`` = unbounded
    queue_capacity: Optional[int] = None
    #: what a full queue does with an arrival
    drop_policy: str = DROP_OLDEST
    #: source admission: shed new tuples while the local queue holds at
    #: least this many entries; ``None`` disables the depth signal
    backpressure_depth: Optional[int] = None
    #: source admission: shed new tuples while every downstream is
    #: dead-marked (dispatching would only manufacture guaranteed losses)
    shed_on_unsatisfiable: bool = True

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl <= 0:
            raise RuntimeStateError("ttl must be positive (or None)")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise RuntimeStateError("queue capacity must be >= 1 (or None)")
        if self.drop_policy not in DROP_POLICIES:
            raise RuntimeStateError(
                "unknown drop policy %r (expected one of %s)"
                % (self.drop_policy, ", ".join(sorted(DROP_POLICIES))))
        if self.backpressure_depth is not None and self.backpressure_depth < 1:
            raise RuntimeStateError("backpressure depth must be >= 1 (or None)")

    # -- deadlines -------------------------------------------------------
    def deadline_for(self, created_at: float) -> Optional[float]:
        """Absolute deadline for a tuple created at *created_at*."""
        if self.ttl is None:
            return None
        return created_at + self.ttl

    @property
    def enabled(self) -> bool:
        """Whether any protection mechanism is switched on."""
        return (self.ttl is not None or self.queue_capacity is not None
                or self.backpressure_depth is not None)


def expired(deadline: Optional[float], now: float) -> bool:
    """Whether a tuple carrying *deadline* is already too stale to use."""
    return deadline is not None and now > deadline


def admission(depth: int, capacity: Optional[int], drop_policy: str) -> str:
    """The one bounded-queue decision both substrates consult.

    Given the queue's current *depth* and its configured *capacity*,
    returns what to do with one arriving element: :data:`ADMIT`,
    :data:`EVICT_OLDEST` (admit after shedding the head),
    :data:`REJECT` (shed the newcomer) or :data:`WAIT` (block the
    producer).  Keeping this a pure function is what makes shedding
    decisions replayable and identical across the runtime and the
    simulator.
    """
    if capacity is None or depth < capacity:
        return ADMIT
    if drop_policy == DROP_OLDEST:
        return EVICT_OLDEST
    if drop_policy == DROP_NEWEST:
        return REJECT
    return WAIT


def source_admission(depth: int, unsatisfiable: bool,
                     config: OverloadConfig) -> Optional[str]:
    """Shed-at-source decision for one about-to-be-generated tuple.

    Returns the shed reason (a member of :data:`SHED_REASONS`) or
    ``None`` to admit.  *depth* is the producer's local queue depth (the
    runtime's mailbox, the simulator's source egress queue);
    *unsatisfiable* is the dispatcher's all-downstreams-dead signal.
    """
    if unsatisfiable and config.shed_on_unsatisfiable:
        return REASON_BACKPRESSURE
    if (config.backpressure_depth is not None
            and depth >= config.backpressure_depth):
        return REASON_BACKPRESSURE
    return None
