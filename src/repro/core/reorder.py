"""Reordering Service (paper Sec. IV-C, evaluated in Fig. 8).

Heterogeneity and dynamism make tuples arrive at the sink out of order.
The sink buffers results and plays them back in sequence order.  The
paper sizes the buffer as a *timespan* of the source rate — one second,
i.e. 24 tuples at 24 FPS: "A large buffer ensures better ordering but
delays the display of the results."

The buffer releases a result when either (a) it is the next expected
sequence number, or (b) the buffer is full, in which case the smallest
buffered sequence is released and any gap before it is skipped (those
tuples are late or lost; video playback must go on).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class PlaybackRecord:
    """One released result: when it arrived vs. when it was played back."""

    seq: int
    arrived_at: float
    played_at: float
    skipped_gap: int = 0  # sequence numbers skipped right before this one

    @property
    def buffering_delay(self) -> float:
        return max(0.0, self.played_at - self.arrived_at)


class ReorderBuffer:
    """Fixed-capacity sequence reorderer for sink-side playback."""

    def __init__(self, capacity: int, first_seq: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reorder buffer capacity must be >= 1")
        self.capacity = capacity
        self._heap: List[Tuple[int, float]] = []
        self._buffered = set()
        self._next_seq = first_seq
        self.playback: List[PlaybackRecord] = []
        self.duplicates = 0
        self.stale_drops = 0

    @classmethod
    def for_rate(cls, rate_per_second: float, timespan: float = 1.0,
                 first_seq: int = 0) -> "ReorderBuffer":
        """Size the buffer as *timespan* seconds of the source rate."""
        capacity = max(1, int(round(rate_per_second * timespan)))
        return cls(capacity=capacity, first_seq=first_seq)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def offer(self, seq: int, now: float) -> List[PlaybackRecord]:
        """Insert an arriving result; return any records released now."""
        if seq < self._next_seq:
            # Arrived after its slot was skipped: too late to play.
            self.stale_drops += 1
            return []
        if seq in self._buffered:
            self.duplicates += 1
            return []
        heapq.heappush(self._heap, (seq, now))
        self._buffered.add(seq)
        return self._drain(now)

    def flush(self, now: float) -> List[PlaybackRecord]:
        """Release everything still buffered (end of stream)."""
        released = []
        while self._heap:
            released.append(self._release_min(now))
        return released

    # -- internals -------------------------------------------------------
    def _drain(self, now: float) -> List[PlaybackRecord]:
        released = []
        # In-order head: release immediately.
        while self._heap and self._heap[0][0] == self._next_seq:
            released.append(self._release_min(now))
        # Over capacity: force out the smallest, skipping the gap.
        while len(self._heap) > self.capacity:
            released.append(self._release_min(now))
        return released

    def _release_min(self, now: float) -> PlaybackRecord:
        seq, arrived_at = heapq.heappop(self._heap)
        self._buffered.discard(seq)
        skipped = max(0, seq - self._next_seq)
        self._next_seq = seq + 1
        record = PlaybackRecord(seq=seq, arrived_at=arrived_at,
                                played_at=now, skipped_gap=skipped)
        self.playback.append(record)
        return record

    # -- metrics ---------------------------------------------------------
    def total_skipped(self) -> int:
        return sum(record.skipped_gap for record in self.playback)

    def mean_buffering_delay(self) -> Optional[float]:
        if not self.playback:
            return None
        return sum(r.buffering_delay for r in self.playback) / len(self.playback)

    def is_monotonic(self) -> bool:
        """Playback must always be in strictly increasing sequence order."""
        seqs = [record.seq for record in self.playback]
        return all(a < b for a, b in zip(seqs, seqs[1:]))
