"""Function-unit programming API.

The paper's programming model divides an app into *function units* — graph
vertices that receive a data tuple, compute, and emit a result tuple to
their downstream units (Sec. IV-A).  Developers subclass
:class:`FunctionUnit` and implement :meth:`FunctionUnit.process_data`,
emitting results through the :class:`UnitContext` passed at activation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import RuntimeStateError
from repro.core.tuples import DataTuple, TupleSchema


class UnitContext:
    """Runtime services available to a function unit instance.

    A context is bound when the unit is activated on a device.  ``emit``
    forwards an output tuple to the hosting runtime, which routes it to the
    downstream function units according to the active policy.
    """

    def __init__(self, unit_name: str, instance_id: str,
                 emit: Callable[[DataTuple], None],
                 now: Callable[[], float],
                 state: Optional[Any] = None) -> None:
        self.unit_name = unit_name
        self.instance_id = instance_id
        self._emit = emit
        self._now = now
        self.emitted_count = 0
        #: per-key operator state (a ``repro.core.state.StateStore``)
        #: for stateful units; None on stateless activations
        self.state = state

    def emit(self, data: DataTuple) -> None:
        """Send *data* toward the downstream function units."""
        self.emitted_count += 1
        self._emit(data)

    def now(self) -> float:
        """Current time on the hosting device's clock (seconds)."""
        return self._now()


class FunctionUnit:
    """Base class for user-defined function units (paper: FunctionUnitAPI).

    Lifecycle: ``on_start`` once when activated, ``process_data`` per input
    tuple, ``on_stop`` once at shutdown.  Sources override ``generate``
    instead of ``process_data``; the runtime drives them at the configured
    input rate.
    """

    def __init__(self) -> None:
        self._context: Optional[UnitContext] = None

    # -- lifecycle -------------------------------------------------------
    def bind(self, context: UnitContext) -> None:
        self._context = context

    @property
    def context(self) -> UnitContext:
        if self._context is None:
            raise RuntimeStateError("function unit used before activation")
        return self._context

    def on_start(self) -> None:
        """Hook called once when the unit is activated on a device."""

    def on_stop(self) -> None:
        """Hook called once when the unit is deactivated."""

    # -- data plane ------------------------------------------------------
    def process_data(self, data: DataTuple) -> None:
        """Handle one incoming tuple.  Subclasses must override."""
        raise NotImplementedError

    def send(self, data: DataTuple) -> None:
        """Emit *data* to the downstream units (paper: ``send(output)``)."""
        self.context.emit(data)


class SourceUnit(FunctionUnit):
    """A unit with no upstream: produces tuples instead of consuming them."""

    def process_data(self, data: DataTuple) -> None:
        raise RuntimeStateError("source units do not accept input tuples")

    def generate(self) -> Optional[DataTuple]:
        """Produce the next tuple, or ``None`` when the stream is exhausted."""
        raise NotImplementedError


class SinkUnit(FunctionUnit):
    """A unit with no downstream: terminal consumer of result tuples."""

    def __init__(self) -> None:
        super().__init__()
        self.results: List[DataTuple] = []

    def process_data(self, data: DataTuple) -> None:
        self.results.append(data)


class LambdaUnit(FunctionUnit):
    """Wrap a plain function ``values -> values`` as a function unit.

    Convenient for tests and small pipelines::

        unit = LambdaUnit(lambda values: {"out": values["in"] * 2})
    """

    def __init__(self, fn: Callable[[Dict[str, Any]], Dict[str, Any]],
                 output_schema: Optional[TupleSchema] = None) -> None:
        super().__init__()
        self._fn = fn
        self._output_schema = output_schema

    def process_data(self, data: DataTuple) -> None:
        result = self._fn(dict(data.values))
        self.send(data.derive(result, schema=self._output_schema))


class IterableSource(SourceUnit):
    """Source unit that replays tuples from an in-memory iterable."""

    def __init__(self, payloads, schema: Optional[TupleSchema] = None) -> None:
        super().__init__()
        self._iterator = iter(payloads)
        self._schema = schema
        self._seq = 0

    def generate(self) -> Optional[DataTuple]:
        try:
            values = next(self._iterator)
        except StopIteration:
            return None
        data = DataTuple(values=dict(values), seq=self._seq, schema=self._schema,
                         created_at=self.context.now())
        self._seq += 1
        return data


class CollectingSink(SinkUnit):
    """Sink that records results and exposes simple accessors for tests."""

    def values(self, key: str) -> List[Any]:
        return [data.get_value(key) for data in self.results]

    def sequences(self) -> List[int]:
        return [data.seq for data in self.results]


class ReorderingSink(SinkUnit):
    """Sink with the paper's Reordering Service built in (Sec. IV-C).

    Arriving results are buffered and *played back* in sequence order;
    ``playback`` holds the ordered tuples ready for display while
    ``results`` (inherited) keeps the raw arrival order.  The buffer is
    sized as a timespan of the source rate, defaulting to the paper's
    one second.

    Duplicate policy: a ``seq`` already seen inside the dedup window is
    dropped before it reaches ``results`` or the buffer, and counted in
    ``duplicates_dropped``.  At-least-once delivery (and plain network
    retries) may replay a tuple; without this, ``results`` silently
    double-counted throughput while the playback path dropped the copy
    — two different answers from one sink.  The window defaults to four
    buffer timespans, bounding memory on long runs.
    """

    def __init__(self, source_rate: float = 24.0,
                 timespan: float = 1.0,
                 dedup_window: Optional[int] = None) -> None:
        super().__init__()
        from repro.core.delivery import DedupWindow
        from repro.core.reorder import ReorderBuffer
        self._buffer = ReorderBuffer.for_rate(source_rate, timespan=timespan)
        if dedup_window is None:
            dedup_window = max(64, 4 * self._buffer.capacity)
        self._seen = DedupWindow(dedup_window)
        self.duplicates_dropped = 0
        self._by_seq: Dict[int, DataTuple] = {}
        self.playback: List[DataTuple] = []

    def process_data(self, data: DataTuple) -> None:
        if self._seen.seen(data.seq):
            self.duplicates_dropped += 1
            return
        super().process_data(data)
        self._by_seq.setdefault(data.seq, data)
        for record in self._buffer.offer(data.seq, self.context.now()):
            if record.seq in self._by_seq:
                self.playback.append(self._by_seq.pop(record.seq))
        self._prune_released()

    def _prune_released(self) -> None:
        # Drop stash entries the buffer will never release again (played
        # back or skipped) — a long run must not retain every tuple ever
        # seen.  Anything below next_seq is settled.
        next_seq = self._buffer.next_seq
        for seq in [seq for seq in self._by_seq if seq < next_seq]:
            del self._by_seq[seq]

    def on_stop(self) -> None:
        """Flush everything still buffered at shutdown."""
        now = self._context.now() if self._context is not None else 0.0
        for record in self._buffer.flush(now):
            if record.seq in self._by_seq:
                self.playback.append(self._by_seq.pop(record.seq))
        self._by_seq.clear()

    @property
    def skipped(self) -> int:
        return self._buffer.total_skipped()
