"""Application performance requirements.

The programmer "can also define performance requirements that affect
resource allocation and task scheduling, e.g., the maximum input data rate
that needs to be sustained by an app" (paper Sec. IV-A).  The input-rate
target is the Lambda the Worker Selection step must cover; the latency
target is advisory and used by monitoring to flag violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import SwingError

#: minimum frame rate for smooth video playback (paper Sec. I)
SMOOTH_VIDEO_FPS = 24.0


@dataclass(frozen=True)
class PerformanceRequirement:
    """Target rates and bounds an app declares for its deployment."""

    input_rate: float = SMOOTH_VIDEO_FPS   # tuples per second
    max_latency: Optional[float] = None    # seconds, advisory
    reorder_timespan: float = 1.0          # seconds of buffering at the sink

    def __post_init__(self) -> None:
        if self.input_rate <= 0:
            raise SwingError("input rate must be positive")
        if self.max_latency is not None and self.max_latency <= 0:
            raise SwingError("max latency must be positive")
        if self.reorder_timespan <= 0:
            raise SwingError("reorder timespan must be positive")

    @property
    def frame_interval(self) -> float:
        """Seconds between successive source tuples."""
        return 1.0 / self.input_rate

    def reorder_capacity(self) -> int:
        """Reorder-buffer length: the timespan's worth of tuples."""
        return max(1, int(round(self.input_rate * self.reorder_timespan)))

    def meets_rate(self, achieved_rate: float, tolerance: float = 0.02) -> bool:
        """True when *achieved_rate* satisfies the target within tolerance."""
        return achieved_rate >= self.input_rate * (1.0 - tolerance)

    def meets_latency(self, achieved_latency: float) -> bool:
        if self.max_latency is None:
            return True
        return achieved_latency <= self.max_latency
