"""Lightweight counter registry for runtime observability.

The failure-detection subsystem (ACK expiry accounting, dispatcher
retries, health monitoring) emits monotonic counters describing the data
plane: tuples sent, acked, lost, retried, downstreams marked dead or
resurrected.  A :class:`MetricsRegistry` collects them with optional
labels (Prometheus-style ``name{key=value}`` identity), so the CLI and
the simulation harness can print one coherent accounting table after a
run.

A process-wide default registry backs components that are not handed an
explicit one; simulations create a private registry per run so repeated
experiments never bleed counts into each other.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: canonical counter names emitted by the runtime / simulation
SENT_TOTAL = "swing_tuples_sent_total"
ACKED_TOTAL = "swing_tuples_acked_total"
LOST_TOTAL = "swing_tuples_lost_total"
RETRIED_TOTAL = "swing_tuples_retried_total"
REROUTED_TOTAL = "swing_tuples_rerouted_total"
#: overload protection: tuples shed with reason=expired|queue_full|backpressure
SHED_TOTAL = "swing_tuples_shed_total"
MARKED_DEAD_TOTAL = "swing_downstream_marked_dead_total"
RESURRECTED_TOTAL = "swing_downstream_resurrected_total"
DROPPED_TOTAL = "swing_frames_dropped_total"
HEARTBEAT_MISS_TOTAL = "swing_heartbeat_miss_total"
POLICY_UPDATES_TOTAL = "swing_policy_updates_total"
PROBE_WINDOWS_TOTAL = "swing_probe_windows_total"

#: gauge: current depth of one named queue (mailbox / sim store)
QUEUE_DEPTH = "swing_queue_depth"


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """One monotonically increasing counter with a fixed label set."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % amount)
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def identity(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join("%s=%s" % (k, v)
                         for k, v in sorted(self.labels.items()))
        return "%s{%s}" % (self.name, inner)


class Gauge:
    """One instantaneous value (queue depth); unlike counters it may fall."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value

    def identity(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join("%s=%s" % (k, v)
                         for k, v in sorted(self.labels.items()))
        return "%s{%s}" % (self.name, inner)


class MetricsRegistry:
    """Thread-safe get-or-create store of named, labelled counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = Counter(name, labels)
                self._counters[key] = counter
            return counter

    def increment(self, name: str, amount: int = 1, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def value(self, name: str, **labels: str) -> int:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
        return counter.value if counter is not None else 0

    # -- gauges ----------------------------------------------------------
    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = Gauge(name, labels)
                self._gauges[key] = gauge
            return gauge

    def set_gauge(self, name: str, value: int, **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    def gauge_value(self, name: str, **labels: str) -> int:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
        return gauge.value if gauge is not None else 0

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return sorted(self._gauges.values(), key=lambda g: g.identity())

    def counters(self) -> List[Counter]:
        with self._lock:
            return sorted(self._counters.values(),
                          key=lambda c: c.identity())

    def snapshot(self) -> Dict[str, int]:
        """Flat ``identity -> value`` view of every counter and gauge."""
        view = {counter.identity(): counter.value
                for counter in self.counters()}
        view.update((gauge.identity(), gauge.value)
                    for gauge in self.gauges())
        return view

    def values_by_label(self, name: str, label: str) -> Dict[str, int]:
        """Per-label-value totals for one counter family.

        ``values_by_label(LOST_TOTAL, "downstream")`` returns the lost
        count keyed by downstream id — the view the fault-injection
        acceptance check reads.
        """
        totals: Dict[str, int] = {}
        for counter in self.counters():
            if counter.name == name and label in counter.labels:
                key = counter.labels[label]
                totals[key] = totals.get(key, 0) + counter.value
        return totals

    def render(self, only: Optional[Iterable[str]] = None) -> str:
        """Printable dump, one ``identity value`` line per counter/gauge."""
        wanted = set(only) if only is not None else None
        lines = []
        for metric in list(self.counters()) + list(self.gauges()):
            if wanted is not None and metric.name not in wanted:
                continue
            lines.append("%s %d" % (metric.identity(), metric.value))
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


#: process-wide default registry for components not handed a private one
REGISTRY = MetricsRegistry()
