"""Lightweight counter registry for runtime observability.

The failure-detection subsystem (ACK expiry accounting, dispatcher
retries, health monitoring) emits monotonic counters describing the data
plane: tuples sent, acked, lost, retried, downstreams marked dead or
resurrected.  A :class:`MetricsRegistry` collects them with optional
labels (Prometheus-style ``name{key=value}`` identity), so the CLI and
the simulation harness can print one coherent accounting table after a
run.

A process-wide default registry backs components that are not handed an
explicit one; simulations create a private registry per run so repeated
experiments never bleed counts into each other.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: canonical counter names emitted by the runtime / simulation
SENT_TOTAL = "swing_tuples_sent_total"
ACKED_TOTAL = "swing_tuples_acked_total"
LOST_TOTAL = "swing_tuples_lost_total"
RETRIED_TOTAL = "swing_tuples_retried_total"
REROUTED_TOTAL = "swing_tuples_rerouted_total"
#: overload protection: tuples shed with reason=expired|queue_full|backpressure
SHED_TOTAL = "swing_tuples_shed_total"
#: at-least-once delivery: redeliveries of un-ACKed tuples after churn
REDELIVERED_TOTAL = "swing_tuples_redelivered_total"
#: at-least-once delivery: duplicates suppressed by a dedup window
DEDUPED_TOTAL = "swing_tuples_deduped_total"
#: replay retention given up, reason=capacity|bytes|attempts|expired|shed
REPLAY_EVICTED_TOTAL = "swing_replay_evicted_total"
MARKED_DEAD_TOTAL = "swing_downstream_marked_dead_total"
RESURRECTED_TOTAL = "swing_downstream_resurrected_total"
DROPPED_TOTAL = "swing_frames_dropped_total"
HEARTBEAT_MISS_TOTAL = "swing_heartbeat_miss_total"
POLICY_UPDATES_TOTAL = "swing_policy_updates_total"
PROBE_WINDOWS_TOTAL = "swing_probe_windows_total"
#: epoch fencing: stale-epoch control messages rejected by a device
FENCED_TOTAL = "swing_fenced_messages_total"
#: control-plane crash recovery: successful master restore-from-checkpoint
MASTER_RECOVERIES_TOTAL = "swing_master_recoveries_total"
#: keyed routing: key-range ownership changes, reason=hot_split|drain|crash
KEY_RANGE_MOVES_TOTAL = "swing_key_range_moves_total"
#: keyed routing: hot ranges flagged by the split detector
HOT_KEYS_DETECTED_TOTAL = "swing_hot_keys_detected_total"

#: gauge: current depth of one named queue (mailbox / sim store)
QUEUE_DEPTH = "swing_queue_depth"
#: gauge: seconds since the control-plane checkpoint was last written
CHECKPOINT_AGE_SECONDS = "swing_checkpoint_age_seconds"

#: histogram: upstream-observed ACK round trip per downstream, seconds
ACK_RTT_SECONDS = "swing_ack_rtt_seconds"
#: histogram: per-hop span durations by kind (queue_wait/transmit/...)
SPAN_SECONDS = "swing_span_duration_seconds"
#: histogram: graceful-drain duration per departing device, seconds
DRAIN_SECONDS = "swing_drain_duration_seconds"
#: histogram: tuples per flushed batch on one upstream edge
BATCH_SIZE = "swing_batch_size"
#: histogram: pause-to-resume duration of one key-range state migration
STATE_MIGRATION_SECONDS = "swing_state_migration_seconds"

#: default latency buckets, seconds (1 ms .. 10 s, roughly log-spaced)
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: bucket bounds for the batch-size histogram (tuples per flush, powers
#: of two up to the practical batch ceiling)
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                      256.0, 512.0, 1024.0)


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """One monotonically increasing counter with a fixed label set."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % amount)
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def identity(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join("%s=%s" % (k, v)
                         for k, v in sorted(self.labels.items()))
        return "%s{%s}" % (self.name, inner)


class Gauge:
    """One instantaneous value (queue depth); unlike counters it may fall."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value

    def identity(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join("%s=%s" % (k, v)
                         for k, v in sorted(self.labels.items()))
        return "%s{%s}" % (self.name, inner)


class Histogram:
    """Fixed-bucket distribution of non-negative observations.

    Cumulative bucket counts (Prometheus-style ``le`` semantics) plus a
    running sum/count, so percentile *estimates* survive even when span
    tracing is sampled out: quantiles are linearly interpolated inside
    the winning bucket, which is as much resolution as fixed buckets
    can honestly claim.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: Mapping[str, str],
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending and "
                             "non-empty: %r" % (buckets,))
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = max(0.0, float(value))
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1), interpolated within its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        with self._lock:
            counts = list(self._counts)
            count = self._count
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (self.buckets[index] if index < len(self.buckets)
                         else self.buckets[-1])
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            seen += bucket_count
        return self.buckets[-1]

    def bucket_counts(self) -> Dict[str, int]:
        """Per-bucket counts keyed by upper bound (``"+Inf"`` overflow)."""
        with self._lock:
            counts = list(self._counts)
        view = {("%g" % bound): counts[index]
                for index, bound in enumerate(self.buckets)}
        view["+Inf"] = counts[-1]
        return view

    def identity(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join("%s=%s" % (k, v)
                         for k, v in sorted(self.labels.items()))
        return "%s{%s}" % (self.name, inner)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``--metrics-json`` artifact format)."""
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "p50": self.quantile(0.5), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99), "buckets": self.bucket_counts()}


class MetricsRegistry:
    """Thread-safe get-or-create store of named, labelled counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                               Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = Counter(name, labels)
                self._counters[key] = counter
            return counter

    def increment(self, name: str, amount: int = 1, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def value(self, name: str, **labels: str) -> int:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
        return counter.value if counter is not None else 0

    # -- gauges ----------------------------------------------------------
    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = Gauge(name, labels)
                self._gauges[key] = gauge
            return gauge

    def set_gauge(self, name: str, value: int, **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    def gauge_value(self, name: str, **labels: str) -> int:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
        return gauge.value if gauge is not None else 0

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return sorted(self._gauges.values(), key=lambda g: g.identity())

    # -- histograms ------------------------------------------------------
    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(name, labels, buckets=buckets)
                self._histograms[key] = histogram
            return histogram

    def observe_histogram(self, name: str, value: float,
                          **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    def histograms(self) -> List[Histogram]:
        with self._lock:
            return sorted(self._histograms.values(),
                          key=lambda h: h.identity())

    def counters(self) -> List[Counter]:
        with self._lock:
            return sorted(self._counters.values(),
                          key=lambda c: c.identity())

    def snapshot(self) -> Dict[str, int]:
        """Flat ``identity -> value`` view of every counter and gauge."""
        view = {counter.identity(): counter.value
                for counter in self.counters()}
        view.update((gauge.identity(), gauge.value)
                    for gauge in self.gauges())
        return view

    def values_by_label(self, name: str, label: str) -> Dict[str, int]:
        """Per-label-value totals for one counter family.

        ``values_by_label(LOST_TOTAL, "downstream")`` returns the lost
        count keyed by downstream id — the view the fault-injection
        acceptance check reads.
        """
        totals: Dict[str, int] = {}
        for counter in self.counters():
            if counter.name == name and label in counter.labels:
                key = counter.labels[label]
                totals[key] = totals.get(key, 0) + counter.value
        return totals

    def render(self, only: Optional[Iterable[str]] = None) -> str:
        """Printable dump, one ``identity value`` line per metric."""
        wanted = set(only) if only is not None else None
        lines = []
        for metric in list(self.counters()) + list(self.gauges()):
            if wanted is not None and metric.name not in wanted:
                continue
            lines.append("%s %d" % (metric.identity(), metric.value))
        for histogram in self.histograms():
            if wanted is not None and histogram.name not in wanted:
                continue
            lines.append("%s count=%d mean=%.6f p95=%.6f"
                         % (histogram.identity(), histogram.count,
                            histogram.mean, histogram.quantile(0.95)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump of every metric (the ``--metrics-json`` body)."""
        return {
            "counters": {counter.identity(): counter.value
                         for counter in self.counters()},
            "gauges": {gauge.identity(): gauge.value
                       for gauge in self.gauges()},
            "histograms": {histogram.identity(): histogram.to_dict()
                           for histogram in self.histograms()},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide registry for top-level entry points and ad-hoc scripts
#: ONLY.  Internal components (runtimes, controllers, simulations) must
#: be handed a registry explicitly — two Masters or simulations sharing
#: this default would merge their counters, which is exactly the
#: cross-instance pollution the mandatory-injection rule prevents.  No
#: module under ``repro`` reads this fallback.
REGISTRY = MetricsRegistry()
