"""Voice-translation app as Swing function units (paper Sec. VI-A).

Four units: a microphone source reading audio frames, a speech
recognizer turning audio into English words (PocketSphinx substitute),
a translator producing Spanish (Apertium substitute), and a display
sink.  ``build_translation_graph`` wires them into an AppGraph.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.apps.translate.asr import SpeechRecognizer
from repro.apps.translate.audio import (decode_audio, encode_audio,
                                        synthesize_utterance)
from repro.apps.translate.translator import Translator
from repro.core.function_unit import FunctionUnit, SinkUnit, SourceUnit
from repro.core.graph import AppGraph, GraphBuilder
from repro.core.tuples import DataTuple, TupleSchema

AUDIO_SCHEMA = TupleSchema.of("audio")
WORDS_SCHEMA = TupleSchema.of("words")
TEXT_SCHEMA = TupleSchema.of("text")

#: default words-per-utterance of the synthetic speaker
UTTERANCE_WORDS = 4


def default_phrases(count: int, seed: int = 0,
                    words_per_phrase: int = UTTERANCE_WORDS) -> List[List[str]]:
    """Deterministic English phrases drawn from the translator lexicon."""
    rng = random.Random(seed)
    vocabulary = Translator().vocabulary()
    templates = [
        ["the", "{adj}", "{noun}", "is", "here"],
        ["a", "{adj}", "{noun}", "{verb}", "now"],
        ["the", "{noun}", "{verb}", "the", "{noun}"],
        ["my", "{noun}", "is", "very", "{adj}"],
        ["we", "need", "the", "{noun}"],
    ]
    adjectives = ["red", "big", "small", "good", "fast", "slow", "new", "old"]
    nouns = ["car", "house", "phone", "camera", "dog", "book", "city",
             "battery", "signal", "friend"]
    verbs = ["runs", "works", "speaks", "helps", "comes", "goes"]
    phrases = []
    for _ in range(count):
        template = rng.choice(templates)
        phrase = []
        for slot in template:
            if slot == "{adj}":
                phrase.append(rng.choice(adjectives))
            elif slot == "{noun}":
                phrase.append(rng.choice(nouns))
            elif slot == "{verb}":
                phrase.append(rng.choice(verbs))
            else:
                phrase.append(slot)
        phrases.append([word for word in phrase if word in vocabulary
                        or word in verbs])
    return phrases


class MicrophoneSource(SourceUnit):
    """Unit A: produces PCM audio frames of synthetic utterances."""

    def __init__(self, phrases: Optional[Sequence[Sequence[str]]] = None,
                 frame_count: int = 24, seed: int = 0,
                 noise: float = 0.01) -> None:
        super().__init__()
        if phrases is None:
            phrases = default_phrases(frame_count, seed=seed)
        self._phrases = [list(phrase) for phrase in phrases][:frame_count]
        self._index = 0
        self._noise = noise
        self._seed = seed
        self.ground_truth: List[List[str]] = []

    def generate(self) -> Optional[DataTuple]:
        if self._index >= len(self._phrases):
            return None
        phrase = self._phrases[self._index]
        waveform = synthesize_utterance(phrase, noise=self._noise,
                                        seed=self._seed + self._index)
        self.ground_truth.append(list(phrase))
        data = DataTuple(values={"audio": encode_audio(waveform)},
                         seq=self._index, schema=AUDIO_SCHEMA,
                         created_at=self.context.now())
        self._index += 1
        return data


class SpeechRecognizerUnit(FunctionUnit):
    """Unit B: recognizes audio frames into English words."""

    def __init__(self, vocabulary: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        if vocabulary is None:
            vocabulary = Translator().vocabulary()
        self._recognizer = SpeechRecognizer(vocabulary)

    def process_data(self, data: DataTuple) -> None:
        waveform = decode_audio(data.get_value("audio"))
        words = self._recognizer.recognize(waveform)
        self.send(data.derive({"words": words}, schema=WORDS_SCHEMA))


class TranslatorUnit(FunctionUnit):
    """Unit C: translates English words into Spanish text."""

    def __init__(self) -> None:
        super().__init__()
        self._translator = Translator()

    def process_data(self, data: DataTuple) -> None:
        text = self._translator.translate(data.get_value("words"))
        self.send(data.derive({"text": text}, schema=TEXT_SCHEMA))


class SubtitleSink(SinkUnit):
    """Unit D: displays the translated text."""

    def subtitles(self) -> List[str]:
        return [data.get_value("text") for data in self.results]


def build_translation_graph(frame_count: int = 24, seed: int = 0,
                            noise: float = 0.01) -> AppGraph:
    """The paper's four-unit voice-translation dataflow graph."""
    return (GraphBuilder("voice-translation")
            .source("microphone",
                    lambda: MicrophoneSource(frame_count=frame_count,
                                             seed=seed, noise=noise),
                    output_schema=AUDIO_SCHEMA)
            .unit("recognizer", SpeechRecognizerUnit,
                  output_schema=WORDS_SCHEMA)
            .unit("translator", TranslatorUnit, output_schema=TEXT_SCHEMA)
            .sink("display", SubtitleSink)
            .chain("microphone", "recognizer", "translator", "display")
            .build())
