"""Rule-based English -> Spanish translation.

Stands in for Apertium (paper Sec. VI-A), which is itself a rule-based
transfer system: a bilingual lexicon with part-of-speech and gender
tags, morphological handling of plurals, article agreement
(the -> el/la/los/las), and the adjective-noun reorder Spanish requires
("red car" -> "coche rojo").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SwingError

NOUN = "noun"
VERB = "verb"
ADJ = "adj"
DET = "det"
PRON = "pron"
PREP = "prep"
ADV = "adv"
CONJ = "conj"

MASC = "m"
FEM = "f"


@dataclass(frozen=True)
class LexEntry:
    """One bilingual lexicon entry."""

    spanish: str
    pos: str
    gender: Optional[str] = None  # nouns and adjectives


#: core bilingual lexicon (lemma form)
LEXICON: Dict[str, LexEntry] = {
    # determiners and pronouns
    "the": LexEntry("el", DET), "a": LexEntry("un", DET),
    "an": LexEntry("un", DET), "this": LexEntry("este", DET),
    "that": LexEntry("ese", DET), "my": LexEntry("mi", DET),
    "your": LexEntry("tu", DET), "i": LexEntry("yo", PRON),
    "you": LexEntry("tú", PRON), "he": LexEntry("él", PRON),
    "she": LexEntry("ella", PRON), "we": LexEntry("nosotros", PRON),
    "they": LexEntry("ellos", PRON),
    # nouns
    "man": LexEntry("hombre", NOUN, MASC), "woman": LexEntry("mujer", NOUN, FEM),
    "child": LexEntry("niño", NOUN, MASC), "friend": LexEntry("amigo", NOUN, MASC),
    "phone": LexEntry("teléfono", NOUN, MASC), "camera": LexEntry("cámara", NOUN, FEM),
    "device": LexEntry("dispositivo", NOUN, MASC), "face": LexEntry("cara", NOUN, FEM),
    "car": LexEntry("coche", NOUN, MASC), "house": LexEntry("casa", NOUN, FEM),
    "street": LexEntry("calle", NOUN, FEM), "city": LexEntry("ciudad", NOUN, FEM),
    "dog": LexEntry("perro", NOUN, MASC), "cat": LexEntry("gato", NOUN, MASC),
    "water": LexEntry("agua", NOUN, FEM), "food": LexEntry("comida", NOUN, FEM),
    "book": LexEntry("libro", NOUN, MASC), "door": LexEntry("puerta", NOUN, FEM),
    "day": LexEntry("día", NOUN, MASC), "night": LexEntry("noche", NOUN, FEM),
    "team": LexEntry("equipo", NOUN, MASC), "guard": LexEntry("guardia", NOUN, MASC),
    "video": LexEntry("vídeo", NOUN, MASC), "image": LexEntry("imagen", NOUN, FEM),
    "message": LexEntry("mensaje", NOUN, MASC), "network": LexEntry("red", NOUN, FEM),
    "battery": LexEntry("batería", NOUN, FEM), "signal": LexEntry("señal", NOUN, FEM),
    "time": LexEntry("tiempo", NOUN, MASC), "place": LexEntry("lugar", NOUN, MASC),
    "name": LexEntry("nombre", NOUN, MASC), "question": LexEntry("pregunta", NOUN, FEM),
    "answer": LexEntry("respuesta", NOUN, FEM), "traveler": LexEntry("viajero", NOUN, MASC),
    # verbs (present simple, third person used as default surface form)
    "is": LexEntry("es", VERB), "are": LexEntry("son", VERB),
    "have": LexEntry("tiene", VERB), "has": LexEntry("tiene", VERB),
    "see": LexEntry("ve", VERB), "sees": LexEntry("ve", VERB),
    "want": LexEntry("quiere", VERB), "wants": LexEntry("quiere", VERB),
    "need": LexEntry("necesita", VERB), "needs": LexEntry("necesita", VERB),
    "find": LexEntry("encuentra", VERB), "finds": LexEntry("encuentra", VERB),
    "run": LexEntry("corre", VERB), "runs": LexEntry("corre", VERB),
    "speak": LexEntry("habla", VERB), "speaks": LexEntry("habla", VERB),
    "work": LexEntry("trabaja", VERB), "works": LexEntry("trabaja", VERB),
    "go": LexEntry("va", VERB), "goes": LexEntry("va", VERB),
    "come": LexEntry("viene", VERB), "comes": LexEntry("viene", VERB),
    "take": LexEntry("toma", VERB), "takes": LexEntry("toma", VERB),
    "send": LexEntry("envía", VERB), "sends": LexEntry("envía", VERB),
    "help": LexEntry("ayuda", VERB), "helps": LexEntry("ayuda", VERB),
    # adjectives
    "red": LexEntry("rojo", ADJ, MASC), "blue": LexEntry("azul", ADJ),
    "big": LexEntry("grande", ADJ), "small": LexEntry("pequeño", ADJ, MASC),
    "good": LexEntry("bueno", ADJ, MASC), "bad": LexEntry("malo", ADJ, MASC),
    "fast": LexEntry("rápido", ADJ, MASC), "slow": LexEntry("lento", ADJ, MASC),
    "new": LexEntry("nuevo", ADJ, MASC), "old": LexEntry("viejo", ADJ, MASC),
    "white": LexEntry("blanco", ADJ, MASC), "black": LexEntry("negro", ADJ, MASC),
    "strong": LexEntry("fuerte", ADJ), "weak": LexEntry("débil", ADJ),
    # prepositions / adverbs / conjunctions
    "in": LexEntry("en", PREP), "on": LexEntry("en", PREP),
    "with": LexEntry("con", PREP), "without": LexEntry("sin", PREP),
    "to": LexEntry("a", PREP), "from": LexEntry("de", PREP),
    "of": LexEntry("de", PREP), "here": LexEntry("aquí", ADV),
    "there": LexEntry("allí", ADV), "now": LexEntry("ahora", ADV),
    "very": LexEntry("muy", ADV), "and": LexEntry("y", CONJ),
    "or": LexEntry("o", CONJ), "not": LexEntry("no", ADV),
    "hello": LexEntry("hola", ADV), "please": LexEntry("por favor", ADV),
    "where": LexEntry("dónde", ADV), "what": LexEntry("qué", ADV),
}

#: irregular English plurals the morphology pass must know
IRREGULAR_PLURALS: Dict[str, str] = {
    "children": "child", "men": "man", "women": "woman",
    "cities": "city", "batteries": "battery",
}


@dataclass
class _Token:
    surface: str          # translated surface form
    pos: str
    gender: Optional[str]
    plural: bool
    known: bool


class Translator:
    """English -> Spanish sentence translator with transfer rules."""

    def __init__(self, mark_unknown: bool = True) -> None:
        self.mark_unknown = mark_unknown

    # -- public API --------------------------------------------------------
    def vocabulary(self) -> List[str]:
        """All English words the translator knows (lemma forms)."""
        return sorted(LEXICON)

    def translate(self, text_or_words) -> str:
        """Translate a sentence (string or word list) into Spanish."""
        words = (text_or_words.split() if isinstance(text_or_words, str)
                 else list(text_or_words))
        tokens = [self._lookup(word) for word in words if word]
        tokens = self._reorder_adjectives(tokens)
        tokens = self._agree_articles(tokens)
        return " ".join(token.surface for token in tokens)

    # -- lexical stage -----------------------------------------------------
    def _lookup(self, word: str) -> _Token:
        lower = word.lower().strip(".,!?;:")
        if not lower:
            return _Token(word, ADV, None, False, False)
        lemma, plural = self._lemmatize(lower)
        entry = LEXICON.get(lemma)
        if entry is None:
            surface = ("<%s>" % lower) if self.mark_unknown else lower
            return _Token(surface, NOUN, None, plural, False)
        surface = entry.spanish
        if plural and entry.pos in (NOUN, ADJ):
            surface = spanish_plural(surface)
        return _Token(surface, entry.pos, entry.gender, plural, True)

    @staticmethod
    def _lemmatize(word: str) -> Tuple[str, bool]:
        """Reduce an English surface form to (lemma, is_plural)."""
        if word in IRREGULAR_PLURALS:
            return IRREGULAR_PLURALS[word], True
        if word in LEXICON:
            return word, False
        if word.endswith("es") and word[:-2] in LEXICON:
            return word[:-2], True
        if word.endswith("s") and word[:-1] in LEXICON:
            lemma = word[:-1]
            if LEXICON[lemma].pos == NOUN:
                return lemma, True
            return lemma, False  # verb 3rd-person -s
        return word, False

    # -- transfer rules ----------------------------------------------------
    @staticmethod
    def _reorder_adjectives(tokens: List[_Token]) -> List[_Token]:
        """Spanish puts adjectives after nouns: "red car" -> "coche rojo"."""
        result: List[_Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if (token.pos == ADJ and index + 1 < len(tokens)
                    and tokens[index + 1].pos == NOUN):
                noun = tokens[index + 1]
                adjective = _agree_adjective(token, noun)
                result.extend([noun, adjective])
                index += 2
            else:
                result.append(token)
                index += 1
        return result

    @staticmethod
    def _agree_articles(tokens: List[_Token]) -> List[_Token]:
        """el/la/los/las and un/una agreement with the governed noun."""
        for index, token in enumerate(tokens):
            if token.pos != DET or not token.known:
                continue
            noun = _next_noun(tokens, index)
            if noun is None:
                continue
            if token.surface in ("el", "la", "los", "las"):
                token.surface = _definite_article(noun)
            elif token.surface in ("un", "una", "unos", "unas"):
                token.surface = _indefinite_article(noun)
        return tokens


def _next_noun(tokens: List[_Token], start: int) -> Optional[_Token]:
    for token in tokens[start + 1:start + 4]:
        if token.pos == NOUN:
            return token
    return None


def _definite_article(noun: _Token) -> str:
    if noun.gender == FEM:
        return "las" if noun.plural else "la"
    return "los" if noun.plural else "el"


def _indefinite_article(noun: _Token) -> str:
    if noun.gender == FEM:
        return "unas" if noun.plural else "una"
    return "unos" if noun.plural else "un"


def _agree_adjective(adjective: _Token, noun: _Token) -> _Token:
    """Inflect a Spanish adjective for the noun's gender and number."""
    surface = adjective.surface
    if noun.gender == FEM and surface.endswith("o"):
        surface = surface[:-1] + "a"
    elif noun.gender == FEM and surface.endswith("os"):
        surface = surface[:-2] + "as"
    if noun.plural and not surface.endswith("s"):
        surface = spanish_plural(surface)
    adjective.surface = surface
    return adjective


def spanish_plural(word: str) -> str:
    """Pluralize a Spanish noun or adjective."""
    if not word:
        raise SwingError("cannot pluralize an empty word")
    if word[-1] in "aeiouáéíóú":
        return word + "s"
    return word + "es"
