"""Speech recognition over synthetic audio.

Stands in for CMU PocketSphinx (paper Sec. VI-A).  The pipeline is the
classic keyword-spotting shape: short-time energy segments the utterance
into word regions, each region is split into tone segments, an FFT per
segment extracts the dominant frequency, and the tone sequence is
matched to the nearest vocabulary signature.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.translate.audio import (SAMPLE_RATE, SEGMENT_SECONDS,
                                        SEGMENTS_PER_WORD, word_signature)
from repro.core.exceptions import SwingError

_FRAME = int(SAMPLE_RATE * 0.010)  # 10 ms analysis frames


class SpeechRecognizer:
    """Energy segmentation + spectral matching against a vocabulary.

    Voice-activity detection adapts to the noise floor: the threshold is
    the larger of ``energy_threshold`` (quiet rooms) and
    ``floor_factor`` times the utterance's quietest-decile frame energy
    (an estimate of the background noise between words), so the
    recognizer keeps working on noisy captures.
    """

    def __init__(self, vocabulary: Sequence[str],
                 energy_threshold: float = 0.05,
                 max_distance: float = 180.0,
                 floor_factor: float = 1.8) -> None:
        if not vocabulary:
            raise SwingError("vocabulary must not be empty")
        if floor_factor < 1.0:
            raise SwingError("floor factor must be >= 1")
        self.vocabulary = sorted(set(word.lower() for word in vocabulary))
        self.energy_threshold = energy_threshold
        self.max_distance = max_distance
        self.floor_factor = floor_factor
        self._signatures = np.array([word_signature(word)
                                     for word in self.vocabulary])

    # -- public API --------------------------------------------------------
    def recognize(self, waveform: np.ndarray) -> List[str]:
        """Recognize an utterance into its word sequence."""
        regions = self._voiced_regions(waveform)
        words = []
        for start, end in regions:
            word = self._classify(waveform[start:end])
            if word is not None:
                words.append(word)
        return words

    # -- segmentation ------------------------------------------------------
    def _voiced_regions(self, waveform: np.ndarray) -> List[Tuple[int, int]]:
        """(start, end) sample ranges with sustained energy."""
        if waveform.ndim != 1:
            raise SwingError("waveform must be 1-D")
        count = len(waveform) // _FRAME
        if count == 0:
            return []
        frames = waveform[:count * _FRAME].reshape(count, _FRAME)
        energy = np.sqrt(np.mean(frames ** 2, axis=1))
        # The quietest tenth of frames lie in the inter-word gaps.
        noise_floor = float(np.percentile(energy, 10))
        threshold = max(self.energy_threshold,
                        self.floor_factor * noise_floor)
        voiced = energy > threshold
        regions = []
        start = None
        for index, flag in enumerate(voiced):
            if flag and start is None:
                start = index
            elif not flag and start is not None:
                regions.append((start * _FRAME, index * _FRAME))
                start = None
        if start is not None:
            regions.append((start * _FRAME, count * _FRAME))
        # Drop spurious blips shorter than half a tone segment.
        minimum = int(SAMPLE_RATE * SEGMENT_SECONDS / 2)
        return [(s, e) for s, e in regions if e - s >= minimum]

    # -- classification ----------------------------------------------------
    def _classify(self, waveform: np.ndarray) -> Optional[str]:
        tones = self._tone_sequence(waveform)
        if tones is None:
            return None
        distances = np.abs(self._signatures - tones).mean(axis=1)
        best = int(np.argmin(distances))
        if distances[best] > self.max_distance:
            return None
        return self.vocabulary[best]

    def _tone_sequence(self, waveform: np.ndarray) -> Optional[np.ndarray]:
        """Dominant frequency of each equal division of the word region."""
        if len(waveform) < SEGMENTS_PER_WORD * 8:
            return None
        pieces = np.array_split(waveform, SEGMENTS_PER_WORD)
        tones = []
        for piece in pieces:
            windowed = piece * np.hanning(len(piece))
            spectrum = np.abs(np.fft.rfft(windowed))
            spectrum[0] = 0.0  # ignore DC
            peak = int(np.argmax(spectrum))
            tones.append(peak * SAMPLE_RATE / len(piece))
        return np.array(tones)


def recognition_accuracy(recognizer: SpeechRecognizer,
                         utterances: Sequence[Tuple[Sequence[str], np.ndarray]]
                         ) -> float:
    """Word-level accuracy over (truth_words, waveform) pairs."""
    correct = total = 0
    for truth, waveform in utterances:
        recognized = recognizer.recognize(waveform)
        total += len(truth)
        correct += sum(1 for a, b in zip(truth, recognized) if a == b)
    return correct / total if total else 0.0
