"""Synthetic speech audio.

Stands in for microphone capture feeding PocketSphinx (paper Sec. VI-A).
Every vocabulary word has a deterministic acoustic signature — a short
sequence of tone segments whose frequencies are derived from the word —
and an utterance is words separated by silence gaps, plus noise.  The
recognizer must segment by energy and classify each segment by its
spectral content: the same structure as real keyword spotting, built on
primitives (windowing, FFT, energy tracking) that carry real compute.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SwingError

SAMPLE_RATE = 8_000
SEGMENTS_PER_WORD = 3
SEGMENT_SECONDS = 0.08
GAP_SECONDS = 0.06
MIN_TONE_HZ = 400.0
MAX_TONE_HZ = 3_400.0
#: quantization grid keeps distinct words' tones separable
TONE_STEP_HZ = 120.0


def word_signature(word: str) -> Tuple[float, ...]:
    """The deterministic tone sequence (Hz) encoding *word*."""
    if not word:
        raise SwingError("cannot build a signature for an empty word")
    digest = hashlib.sha256(word.lower().encode("utf-8")).digest()
    tones = []
    span = MAX_TONE_HZ - MIN_TONE_HZ
    steps = int(span / TONE_STEP_HZ)
    for index in range(SEGMENTS_PER_WORD):
        bucket = int.from_bytes(digest[index * 2:index * 2 + 2], "big") % steps
        tones.append(MIN_TONE_HZ + bucket * TONE_STEP_HZ)
    return tuple(tones)


def synthesize_word(word: str, noise: float = 0.01,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Waveform of one word: its tone segments back to back."""
    samples_per_segment = int(SAMPLE_RATE * SEGMENT_SECONDS)
    t = np.arange(samples_per_segment) / SAMPLE_RATE
    segments = []
    for tone in word_signature(word):
        wave = 0.8 * np.sin(2 * np.pi * tone * t)
        # A soft attack/decay envelope, as real speech segments have.
        envelope = np.hanning(samples_per_segment) * 0.6 + 0.4
        segments.append(wave * envelope)
    waveform = np.concatenate(segments)
    if noise > 0:
        if rng is None:
            rng = np.random.default_rng(0)
        waveform = waveform + rng.normal(0.0, noise, waveform.shape)
    return waveform.astype(np.float32)


def synthesize_utterance(words: Sequence[str], noise: float = 0.01,
                         seed: int = 0) -> np.ndarray:
    """Waveform of an utterance: words separated by silence gaps."""
    if not words:
        raise SwingError("an utterance needs at least one word")
    rng = np.random.default_rng(seed)
    gap = np.zeros(int(SAMPLE_RATE * GAP_SECONDS), dtype=np.float32)
    if noise > 0:
        gap = gap + rng.normal(0.0, noise, gap.shape).astype(np.float32)
    pieces: List[np.ndarray] = [gap]
    for word in words:
        pieces.append(synthesize_word(word, noise=noise, rng=rng))
        pieces.append(gap.copy())
    return np.concatenate(pieces).astype(np.float32)


def encode_audio(waveform: np.ndarray) -> bytes:
    """Pack a waveform into 16-bit PCM (the microphone wire format)."""
    clipped = np.clip(waveform, -1.0, 1.0)
    return (clipped * 32767.0).astype("<i2").tobytes()


def decode_audio(data: bytes) -> np.ndarray:
    """Unpack 16-bit PCM back into a float waveform."""
    if len(data) % 2:
        raise SwingError("PCM payload has odd length")
    return np.frombuffer(data, dtype="<i2").astype(np.float32) / 32767.0


@dataclass(frozen=True)
class Utterance:
    """Ground truth for one synthesized audio frame."""

    words: Tuple[str, ...]
    waveform_seconds: float
