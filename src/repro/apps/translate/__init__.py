"""Voice-translation sensing app (recognizer + EN->ES translator)."""

from repro.apps.translate.asr import SpeechRecognizer, recognition_accuracy
from repro.apps.translate.audio import (GAP_SECONDS, SAMPLE_RATE,
                                        SEGMENT_SECONDS, SEGMENTS_PER_WORD,
                                        decode_audio, encode_audio,
                                        synthesize_utterance, synthesize_word,
                                        word_signature)
from repro.apps.translate.pipeline import (MicrophoneSource,
                                           SpeechRecognizerUnit, SubtitleSink,
                                           TranslatorUnit,
                                           build_translation_graph,
                                           default_phrases)
from repro.apps.translate.translator import (LEXICON, LexEntry, Translator,
                                             spanish_plural)

__all__ = [
    "GAP_SECONDS", "LEXICON", "LexEntry", "MicrophoneSource", "SAMPLE_RATE",
    "SEGMENTS_PER_WORD", "SEGMENT_SECONDS", "SpeechRecognizer",
    "SpeechRecognizerUnit", "SubtitleSink", "Translator", "TranslatorUnit",
    "build_translation_graph", "decode_audio", "default_phrases",
    "encode_audio", "recognition_accuracy", "spanish_plural",
    "synthesize_utterance", "synthesize_word", "word_signature",
]
