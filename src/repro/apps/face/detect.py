"""Face detection: normalized cross-correlation sliding window.

Stands in for OpenCV's CascadeClassifier (paper Sec. VI-A): an average
face template is matched against every window position via normalized
cross-correlation computed with integral images, followed by
non-maximum suppression.  Pure numpy, genuinely compute-bound per
frame — the property the offloading framework cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.face.images import FACE_SIZE, FaceGenerator
from repro.core.exceptions import SwingError


@dataclass(frozen=True)
class Detection:
    """One detected face: top-left corner, size and match score."""

    x: int
    y: int
    size: int
    score: float

    def box(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.size, self.size)

    def iou(self, other: "Detection") -> float:
        """Intersection-over-union with another detection."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x + self.size, other.x + other.size)
        y2 = min(self.y + self.size, other.y + other.size)
        inter = max(0, x2 - x1) * max(0, y2 - y1)
        union = self.size ** 2 + other.size ** 2 - inter
        return inter / union if union else 0.0


def build_template(generator: FaceGenerator, samples: int = 4,
                   size: int = FACE_SIZE) -> np.ndarray:
    """Average-face template over all identities with pose jitter."""
    patches = []
    for identity in generator.identities:
        for _ in range(samples):
            patches.append(generator.render(identity, size=size, jitter=0.5))
    template = np.mean(patches, axis=0)
    template -= template.mean()
    norm = np.linalg.norm(template)
    if norm == 0:
        raise SwingError("degenerate face template")
    return (template / norm).astype(np.float32)


class FaceDetector:
    """Sliding-window NCC detector with non-maximum suppression."""

    def __init__(self, generator: FaceGenerator, threshold: float = 0.55,
                 stride: int = 4, size: int = FACE_SIZE) -> None:
        if not 0.0 < threshold <= 1.0:
            raise SwingError("threshold must be in (0, 1]")
        if stride < 1:
            raise SwingError("stride must be >= 1")
        self.threshold = threshold
        self.stride = stride
        self.size = size
        self.template = build_template(generator, size=size)

    def detect(self, image: np.ndarray) -> List[Detection]:
        """All face detections in *image*, best score first."""
        if image.ndim != 2:
            raise SwingError("detector expects a 2-D grayscale image")
        scores, xs, ys = self._score_map(image)
        keep = scores >= self.threshold
        candidates = [Detection(x=int(x), y=int(y), size=self.size,
                                score=float(score))
                      for score, x, y in zip(scores[keep], xs[keep], ys[keep])]
        candidates.sort(key=lambda d: -d.score)
        return _non_maximum_suppression(candidates)

    def _score_map(self, image: np.ndarray):
        """NCC score for every stride-aligned window (vectorized)."""
        size, stride = self.size, self.stride
        h, w = image.shape
        if h < size or w < size:
            return (np.empty(0), np.empty(0, dtype=int), np.empty(0, dtype=int))
        windows = np.lib.stride_tricks.sliding_window_view(image, (size, size))
        windows = windows[::stride, ::stride]
        ny, nx = windows.shape[:2]
        flat = windows.reshape(ny * nx, size * size).astype(np.float32)
        means = flat.mean(axis=1, keepdims=True)
        centered = flat - means
        norms = np.linalg.norm(centered, axis=1)
        norms[norms == 0] = 1.0
        scores = centered @ self.template.reshape(-1) / norms
        ys, xs = np.mgrid[0:ny, 0:nx]
        return scores, (xs.reshape(-1) * stride), (ys.reshape(-1) * stride)


def _non_maximum_suppression(candidates: List[Detection],
                             max_iou: float = 0.25) -> List[Detection]:
    kept: List[Detection] = []
    for candidate in candidates:
        if all(candidate.iou(existing) <= max_iou for existing in kept):
            kept.append(candidate)
    return kept


def crop(image: np.ndarray, detection: Detection) -> np.ndarray:
    """The face patch under a detection box."""
    return image[detection.y:detection.y + detection.size,
                 detection.x:detection.x + detection.size]
