"""Synthetic face imagery.

The paper's face-recognition app consumes 400x226 video frames from a
camera (OpenCV data path).  With no camera or OpenCV available we build
a parametric face generator: each identity is a vector of facial
geometry parameters (eye spacing, eye size, mouth width/height, face
aspect, skin tone) and rendering produces a grayscale face patch with
pose jitter and sensor noise.  Frames paste zero or more faces onto a
textured background, exercising the same detector/recognizer code path
as real imagery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SwingError

FACE_SIZE = 32                 # square face patch edge, pixels
FRAME_HEIGHT, FRAME_WIDTH = 112, 200  # scaled-down 226x400 video frame


@dataclass(frozen=True)
class Identity:
    """Facial geometry parameters defining one person."""

    name: str
    eye_spacing: float     # fraction of face width between eye centres
    eye_size: float        # eye radius as fraction of face width
    mouth_width: float     # mouth width as fraction of face width
    mouth_height: float    # mouth thickness fraction
    face_aspect: float     # head ellipse height/width ratio
    tone: float            # base skin brightness in [0.3, 0.9]

    def as_vector(self) -> np.ndarray:
        return np.array([self.eye_spacing, self.eye_size, self.mouth_width,
                         self.mouth_height, self.face_aspect, self.tone])


@dataclass
class FacePlacement:
    """Ground truth: where a face was pasted in a frame."""

    name: str
    x: int
    y: int
    size: int

    def box(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.size, self.size)


class FaceGenerator:
    """Renders identities into grayscale face patches."""

    def __init__(self, num_identities: int = 8, seed: int = 0) -> None:
        if num_identities < 1:
            raise SwingError("need at least one identity")
        rng = random.Random(seed)
        self.identities: List[Identity] = []
        for index in range(num_identities):
            self.identities.append(Identity(
                name="person-%02d" % index,
                eye_spacing=rng.uniform(0.30, 0.52),
                eye_size=rng.uniform(0.055, 0.11),
                mouth_width=rng.uniform(0.28, 0.55),
                mouth_height=rng.uniform(0.04, 0.10),
                face_aspect=rng.uniform(1.15, 1.45),
                tone=rng.uniform(0.45, 0.80),
            ))
        self._noise_rng = np.random.default_rng(seed + 1)

    def identity(self, name: str) -> Identity:
        for identity in self.identities:
            if identity.name == name:
                return identity
        raise SwingError("unknown identity %r" % name)

    def render(self, identity: Identity, size: int = FACE_SIZE,
               jitter: float = 0.0, noise: float = 0.02) -> np.ndarray:
        """Render one face patch as float32 in [0, 1].

        ``jitter`` perturbs the geometry (pose/expression variation);
        ``noise`` is the sensor noise standard deviation.
        """
        rng = self._noise_rng
        jit = lambda value, scale: value * (1.0 + jitter * float(rng.normal(0, scale)))
        ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
        cx = cy = (size - 1) / 2.0
        width = size * 0.46
        height = width * jit(identity.face_aspect, 0.05)
        image = np.full((size, size), 0.08, dtype=np.float64)
        # Head: filled ellipse with soft edge.
        dist = ((xs - cx) / width) ** 2 + ((ys - cy) / height) ** 2
        head = np.clip(1.2 - dist, 0.0, 1.0)
        tone = jit(identity.tone, 0.03)
        image += head * tone
        # Eyes: two dark discs.
        spacing = jit(identity.eye_spacing, 0.04) * size
        eye_radius = max(1.0, jit(identity.eye_size, 0.06) * size)
        eye_y = cy - 0.18 * size
        for direction in (-1.0, 1.0):
            eye_x = cx + direction * spacing / 2.0
            disc = ((xs - eye_x) ** 2 + (ys - eye_y) ** 2) <= eye_radius ** 2
            image[disc] = 0.05
        # Mouth: dark horizontal bar.
        mouth_w = jit(identity.mouth_width, 0.05) * size
        mouth_h = max(1.0, jit(identity.mouth_height, 0.08) * size)
        mouth_y = cy + 0.28 * size
        bar = ((np.abs(xs - cx) <= mouth_w / 2.0)
               & (np.abs(ys - mouth_y) <= mouth_h / 2.0))
        image[bar] = 0.12
        # Nose: faint vertical ridge.
        ridge = ((np.abs(xs - cx) <= size * 0.03)
                 & (ys > eye_y) & (ys < mouth_y - size * 0.08))
        image[ridge] += 0.08
        if noise > 0:
            image = image + rng.normal(0.0, noise, image.shape)
        return np.clip(image, 0.0, 1.0).astype(np.float32)

    def gallery(self, samples_per_identity: int = 6,
                jitter: float = 0.6) -> Tuple[np.ndarray, List[str]]:
        """Training data for the recognizer: (stack of patches, labels)."""
        patches, labels = [], []
        for identity in self.identities:
            for _ in range(samples_per_identity):
                patches.append(self.render(identity, jitter=jitter))
                labels.append(identity.name)
        return np.stack(patches), labels


class FrameSynthesizer:
    """Builds camera frames: background texture + pasted faces."""

    def __init__(self, generator: FaceGenerator, seed: int = 0,
                 height: int = FRAME_HEIGHT, width: int = FRAME_WIDTH) -> None:
        self.generator = generator
        self.height = height
        self.width = width
        self._rng = np.random.default_rng(seed + 7)
        self._choice_rng = random.Random(seed + 11)

    def frame(self, face_count: int = 1,
              jitter: float = 0.6) -> Tuple[np.ndarray, List[FacePlacement]]:
        """One frame (float32 in [0,1]) with ground-truth placements."""
        image = 0.18 + 0.05 * self._rng.random((self.height, self.width))
        # Low-frequency background structure so the detector has clutter.
        gx = np.linspace(0, 2 * np.pi, self.width)
        gy = np.linspace(0, 2 * np.pi, self.height)
        image += 0.05 * np.sin(gx)[None, :] * np.cos(gy)[:, None]
        placements: List[FacePlacement] = []
        for _ in range(face_count):
            identity = self._choice_rng.choice(self.generator.identities)
            size = FACE_SIZE
            x = self._choice_rng.randint(0, self.width - size)
            y = self._choice_rng.randint(0, self.height - size)
            if any(abs(p.x - x) < size and abs(p.y - y) < size
                   for p in placements):
                continue  # avoid overlapping faces
            patch = self.generator.render(identity, size=size, jitter=jitter)
            image[y:y + size, x:x + size] = patch
            placements.append(FacePlacement(identity.name, x, y, size))
        return np.clip(image, 0.0, 1.0).astype(np.float32), placements

    def stream(self, count: int, faces_per_frame: int = 1):
        """Generate *count* (frame, placements) pairs."""
        for _ in range(count):
            yield self.frame(face_count=faces_per_frame)


def encode_frame(image: np.ndarray) -> bytes:
    """Pack a float frame into the 8-bit wire format (camera output)."""
    if image.ndim != 2:
        raise SwingError("frames are 2-D grayscale arrays")
    return (np.clip(image, 0.0, 1.0) * 255.0).astype(np.uint8).tobytes()


def decode_frame(data: bytes, height: int = FRAME_HEIGHT,
                 width: int = FRAME_WIDTH) -> np.ndarray:
    """Unpack the wire format back into a float frame."""
    expected = height * width
    if len(data) != expected:
        raise SwingError("frame payload is %d bytes; expected %d"
                         % (len(data), expected))
    array = np.frombuffer(data, dtype=np.uint8).reshape(height, width)
    return array.astype(np.float32) / 255.0
