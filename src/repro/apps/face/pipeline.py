"""Face-recognition app as Swing function units (paper Sec. IV-A).

Four units, exactly the decomposition the paper describes: (A) a camera
source reading video frames, (B) a detector finding faces in frames,
(C) a recognizer matching faces against a database, (D) a display sink.
``build_face_graph`` wires them into an :class:`AppGraph` runnable on
the threaded runtime.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.apps.face.detect import FaceDetector, crop
from repro.apps.face.images import (FRAME_HEIGHT, FRAME_WIDTH, FaceGenerator,
                                    FrameSynthesizer, decode_frame,
                                    encode_frame)
from repro.apps.face.recognize import EigenfaceRecognizer
from repro.core.function_unit import FunctionUnit, SinkUnit, SourceUnit
from repro.core.graph import AppGraph, GraphBuilder
from repro.core.tuples import DataTuple, TupleSchema

FRAME_SCHEMA = TupleSchema.of("frame", "height", "width")
FACES_SCHEMA = TupleSchema.of("frame", "height", "width", "boxes")
NAMES_SCHEMA = TupleSchema.of("names")


class CameraSource(SourceUnit):
    """Unit A: produces encoded video frames with synthetic faces."""

    def __init__(self, generator: FaceGenerator, frame_count: int = 48,
                 faces_per_frame: int = 1, seed: int = 0) -> None:
        super().__init__()
        self._synth = FrameSynthesizer(generator, seed=seed)
        self._frames = iter(range(frame_count))
        self._faces_per_frame = faces_per_frame
        self._seq = 0
        self.ground_truth: List[List[str]] = []

    def generate(self) -> Optional[DataTuple]:
        try:
            next(self._frames)
        except StopIteration:
            return None
        image, placements = self._synth.frame(face_count=self._faces_per_frame)
        self.ground_truth.append(sorted(p.name for p in placements))
        data = DataTuple(
            values={"frame": encode_frame(image),
                    "height": image.shape[0], "width": image.shape[1]},
            seq=self._seq, schema=FRAME_SCHEMA,
            created_at=self.context.now())
        self._seq += 1
        return data


class FaceDetectorUnit(FunctionUnit):
    """Unit B: finds face bounding boxes inside each frame."""

    def __init__(self, generator: FaceGenerator,
                 threshold: float = 0.55, stride: int = 4) -> None:
        super().__init__()
        self._detector = FaceDetector(generator, threshold=threshold,
                                      stride=stride)

    def process_data(self, data: DataTuple) -> None:
        image = decode_frame(data.get_value("frame"),
                             height=data.get_value("height"),
                             width=data.get_value("width"))
        detections = self._detector.detect(image)
        boxes = [[d.x, d.y, d.size] for d in detections]
        self.send(data.derive({"frame": data.get_value("frame"),
                               "height": image.shape[0],
                               "width": image.shape[1],
                               "boxes": boxes}, schema=FACES_SCHEMA))


class FaceRecognizerUnit(FunctionUnit):
    """Unit C: matches detected faces with the identity database."""

    def __init__(self, generator: FaceGenerator,
                 num_components: int = 16,
                 training_samples: int = 6) -> None:
        super().__init__()
        self._recognizer = EigenfaceRecognizer(num_components=num_components)
        patches, labels = generator.gallery(
            samples_per_identity=training_samples)
        self._recognizer.train(patches, labels)

    def process_data(self, data: DataTuple) -> None:
        image = decode_frame(data.get_value("frame"),
                             height=data.get_value("height"),
                             width=data.get_value("width"))
        names = []
        for x, y, size in data.get_value("boxes"):
            patch = image[y:y + size, x:x + size]
            if patch.shape != (size, size):
                continue
            name = self._recognizer.recognize(patch)
            if name is not None:
                names.append(name)
        self.send(data.derive({"names": sorted(names)}, schema=NAMES_SCHEMA))


class DisplaySink(SinkUnit):
    """Unit D: displays recognized names (collected for inspection)."""

    def recognized_names(self) -> List[List[str]]:
        return [data.get_value("names") for data in self.results]


def build_face_graph(num_identities: int = 6, frame_count: int = 48,
                     faces_per_frame: int = 1, seed: int = 0,
                     detector_stride: int = 4) -> AppGraph:
    """The paper's four-unit face-recognition dataflow graph.

    Each device activating a unit builds its own instance, so factories
    construct everything (including the shared generator parameters)
    deterministically from the seed.
    """
    return (GraphBuilder("face-recognition")
            .source("camera",
                    lambda: CameraSource(FaceGenerator(num_identities, seed),
                                         frame_count=frame_count,
                                         faces_per_frame=faces_per_frame,
                                         seed=seed),
                    output_schema=FRAME_SCHEMA)
            .unit("detector",
                  lambda: FaceDetectorUnit(FaceGenerator(num_identities, seed),
                                           stride=detector_stride),
                  output_schema=FACES_SCHEMA)
            .unit("recognizer",
                  lambda: FaceRecognizerUnit(FaceGenerator(num_identities,
                                                           seed)),
                  output_schema=NAMES_SCHEMA)
            .sink("display", DisplaySink)
            .chain("camera", "detector", "recognizer", "display")
            .build())
