"""Face-recognition sensing app (detector + eigenfaces recognizer)."""

from repro.apps.face.detect import Detection, FaceDetector, build_template, crop
from repro.apps.face.images import (FACE_SIZE, FRAME_HEIGHT, FRAME_WIDTH,
                                    FaceGenerator, FacePlacement,
                                    FrameSynthesizer, Identity, decode_frame,
                                    encode_frame)
from repro.apps.face.pipeline import (CameraSource, DisplaySink,
                                      FaceDetectorUnit, FaceRecognizerUnit,
                                      build_face_graph)
from repro.apps.face.recognize import EigenfaceRecognizer

__all__ = [
    "CameraSource", "Detection", "DisplaySink", "EigenfaceRecognizer",
    "FACE_SIZE", "FRAME_HEIGHT", "FRAME_WIDTH", "FaceDetector",
    "FaceDetectorUnit", "FaceGenerator", "FacePlacement", "FaceRecognizerUnit",
    "FrameSynthesizer", "Identity", "build_face_graph", "build_template",
    "crop", "decode_frame", "encode_frame",
]
