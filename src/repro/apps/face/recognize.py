"""Face recognition: eigenfaces (PCA) + nearest neighbour.

Stands in for OpenCV's FaceRecognizer (paper Sec. VI-A).  Training
computes a PCA basis over a gallery of labelled face patches via SVD;
recognition projects a probe patch into the eigenspace and returns the
nearest gallery identity, or ``None`` when the distance exceeds the
rejection threshold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SwingError


class EigenfaceRecognizer:
    """PCA-subspace nearest-neighbour face identification."""

    def __init__(self, num_components: int = 16,
                 reject_distance: Optional[float] = None) -> None:
        if num_components < 1:
            raise SwingError("need at least one principal component")
        self.num_components = num_components
        self.reject_distance = reject_distance
        self._mean: Optional[np.ndarray] = None
        self._basis: Optional[np.ndarray] = None
        self._gallery: Optional[np.ndarray] = None
        self._labels: List[str] = []
        self._patch_shape: Optional[Tuple[int, int]] = None

    @property
    def trained(self) -> bool:
        return self._basis is not None

    def train(self, patches: np.ndarray, labels: Sequence[str]) -> None:
        """Fit the eigenspace from (n, h, w) patches and their labels."""
        if patches.ndim != 3:
            raise SwingError("training patches must be a (n, h, w) stack")
        if len(patches) != len(labels):
            raise SwingError("every training patch needs a label")
        if len(patches) < 2:
            raise SwingError("need at least two training patches")
        n = len(patches)
        self._patch_shape = patches.shape[1:]
        flat = patches.reshape(n, -1).astype(np.float64)
        self._mean = flat.mean(axis=0)
        centered = flat - self._mean
        # SVD of the centered gallery: rows of vt are the eigenfaces.
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.num_components, vt.shape[0])
        self._basis = vt[:k]
        self._gallery = centered @ self._basis.T
        self._labels = list(labels)

    def project(self, patch: np.ndarray) -> np.ndarray:
        """Coordinates of *patch* in the eigenface space."""
        self._require_trained()
        if patch.shape != self._patch_shape:
            raise SwingError("probe shape %r does not match gallery %r"
                             % (patch.shape, self._patch_shape))
        flat = patch.reshape(-1).astype(np.float64)
        return (flat - self._mean) @ self._basis.T

    def recognize(self, patch: np.ndarray) -> Optional[str]:
        """Best-matching identity, or None if rejected as unknown."""
        name, _distance = self.recognize_with_distance(patch)
        return name

    def recognize_with_distance(self, patch: np.ndarray
                                ) -> Tuple[Optional[str], float]:
        projection = self.project(patch)
        distances = np.linalg.norm(self._gallery - projection, axis=1)
        best = int(np.argmin(distances))
        distance = float(distances[best])
        if self.reject_distance is not None and distance > self.reject_distance:
            return None, distance
        return self._labels[best], distance

    def enroll(self, patches: np.ndarray, label: str) -> None:
        """Add a new identity to the database at run time.

        New gallery patches are projected into the *existing* eigenspace
        (no retraining — the basis generalizes across faces), so a swarm
        can enroll a person mid-stream without redeploying units.
        """
        self._require_trained()
        if patches.ndim == 2:
            patches = patches[None, :, :]
        if patches.ndim != 3:
            raise SwingError("enroll patches must be (h, w) or (n, h, w)")
        if not label:
            raise SwingError("enroll needs a non-empty label")
        projections = np.stack([self.project(patch) for patch in patches])
        self._gallery = np.vstack([self._gallery, projections])
        self._labels.extend([label] * len(patches))

    def known_labels(self) -> List[str]:
        """Distinct identities currently in the database."""
        return sorted(set(self._labels))

    def _require_trained(self) -> None:
        if not self.trained:
            raise SwingError("recognizer used before training")

    def reconstruct(self, patch: np.ndarray) -> np.ndarray:
        """Round-trip a patch through the eigenspace (diagnostics)."""
        projection = self.project(patch)
        flat = projection @ self._basis + self._mean
        return flat.reshape(self._patch_shape)
