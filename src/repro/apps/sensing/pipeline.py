"""Per-user windowed-aggregation sensing pipeline (keyed operators).

The third Swing application, built to exercise keyed state end to end:
a sensor source emits readings tagged with a ``user-N`` partitioning
key drawn from a seeded Zipf distribution (mobile sensing's classic
skew — a few chatty users dominate the stream), a stateful aggregation
unit folds each user's readings into tumbling-window summaries held in
per-key operator state, and a sink collects the closed windows.

Because every tuple carries a key, the runtime routes this pipeline by
key-range ownership: all of one user's readings reach the same worker,
whose :class:`~repro.core.state.StateStore` holds that user's window —
and a hot-range split migrates both together.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Optional

from repro.core.function_unit import FunctionUnit, SinkUnit, SourceUnit
from repro.core.graph import AppGraph, GraphBuilder
from repro.core.keyed import zipf_weights
from repro.core.state import InMemoryStateStore, StateStore, WindowAggregator
from repro.core.tuples import DataTuple, TupleSchema

READING_SCHEMA = TupleSchema.of("user", "reading")
AGGREGATE_SCHEMA = TupleSchema.of("user", "window_start", "count", "mean",
                                  "minimum", "maximum")


class ZipfKeyStream:
    """Seeded stream of ``user-N`` keys with Zipf(*alpha*) popularity.

    The same draw procedure the simulator's source uses, packaged for
    the threaded runtime: deterministic in (seed), so a run's key
    sequence — and therefore its hot ranges — reproduces exactly.
    """

    def __init__(self, key_count: int, alpha: float = 1.2,
                 seed: int = 0) -> None:
        if key_count < 1:
            raise ValueError("need at least one key")
        self._rng = random.Random(seed)
        self._cum: List[float] = []
        total = 0.0
        for weight in zipf_weights(key_count, alpha):
            total += weight
            self._cum.append(total)

    def draw(self) -> str:
        point = self._rng.random() * self._cum[-1]
        return "user-%d" % min(bisect_left(self._cum, point),
                               len(self._cum) - 1)


class SensorSource(SourceUnit):
    """Emits keyed sensor readings for a Zipf-skewed user population."""

    def __init__(self, reading_count: int = 96, key_count: int = 16,
                 alpha: float = 1.2, seed: int = 0) -> None:
        super().__init__()
        self._keys = ZipfKeyStream(key_count, alpha=alpha, seed=seed)
        self._values = random.Random(seed + 1)
        self._remaining = reading_count
        self._seq = 0

    def generate(self) -> Optional[DataTuple]:
        if self._remaining <= 0:
            return None
        self._remaining -= 1
        user = self._keys.draw()
        data = DataTuple(
            values={"user": user,
                    "reading": self._values.uniform(0.0, 100.0)},
            seq=self._seq, schema=READING_SCHEMA,
            created_at=self.context.now(), key=user)
        self._seq += 1
        return data


class WindowedAggregateUnit(FunctionUnit):
    """Folds each user's readings into tumbling-window aggregates.

    ``stateful = True`` tells the hosting worker to provision a
    per-unit :class:`~repro.core.state.StateStore` and hand it in
    through ``context.state`` — the state a live migration snapshots
    and ships when this unit's key ranges move.
    """

    stateful = True

    def __init__(self, window: float = 1.0) -> None:
        super().__init__()
        self._window = window
        self._aggregator: Optional[WindowAggregator] = None

    def _store(self) -> StateStore:
        state = self.context.state
        if state is None:
            # Driven outside a worker (unit tests, direct calls): keep
            # private state so the unit still functions standalone.
            state = InMemoryStateStore()
            self.context.state = state
        return state

    def process_data(self, data: DataTuple) -> None:
        if self._aggregator is None:
            self._aggregator = WindowAggregator(self._store(),
                                                window=self._window)
        user = data.get_value("user")
        closed = self._aggregator.observe(user, data.get_value("reading"),
                                          self.context.now())
        if closed is not None:
            self.send(data.derive(
                {"user": closed.key, "window_start": closed.window_start,
                 "count": closed.count, "mean": closed.mean,
                 "minimum": closed.minimum, "maximum": closed.maximum},
                schema=AGGREGATE_SCHEMA))


class AggregateSink(SinkUnit):
    """Collects closed windows; accessors for tests and the CLI."""

    def windows_for(self, user: str) -> List[DataTuple]:
        return [data for data in self.results
                if data.get_value("user") == user]

    def users(self) -> List[str]:
        return sorted({data.get_value("user") for data in self.results})

    def total_readings(self) -> int:
        return sum(data.get_value("count") for data in self.results)


def build_sensing_graph(reading_count: int = 96, key_count: int = 16,
                        alpha: float = 1.2, window: float = 1.0,
                        seed: int = 0) -> AppGraph:
    """The three-unit keyed sensing dataflow graph."""
    return (GraphBuilder("sensing-aggregate")
            .source("sensor",
                    lambda: SensorSource(reading_count=reading_count,
                                         key_count=key_count, alpha=alpha,
                                         seed=seed),
                    output_schema=READING_SCHEMA)
            .unit("aggregate",
                  lambda: WindowedAggregateUnit(window=window),
                  output_schema=AGGREGATE_SCHEMA)
            .sink("collect", AggregateSink)
            .chain("sensor", "aggregate", "collect")
            .build())
