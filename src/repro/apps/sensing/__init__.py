"""Per-user mobile-sensing aggregation app (keyed stateful operators)."""

from repro.apps.sensing.pipeline import (AGGREGATE_SCHEMA, READING_SCHEMA,
                                         AggregateSink, SensorSource,
                                         WindowedAggregateUnit,
                                         ZipfKeyStream, build_sensing_graph)

__all__ = ["AGGREGATE_SCHEMA", "READING_SCHEMA", "AggregateSink",
           "SensorSource", "WindowedAggregateUnit", "ZipfKeyStream",
           "build_sensing_graph"]
