"""The paper's two sensing applications, built on the Swing API."""

from repro.apps import face, translate

__all__ = ["face", "translate"]
