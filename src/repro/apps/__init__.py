"""The paper's sensing applications, built on the Swing API."""

from repro.apps import face, sensing, translate

__all__ = ["face", "sensing", "translate"]
