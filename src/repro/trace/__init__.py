"""Per-tuple span tracing shared by both substrates.

``repro.trace`` is the observability substrate under the paper's Fig. 2
delay decomposition: a :class:`Span` vocabulary (queue-wait, serialize,
transmit, process, ack-RTT, shed/retry) with tuple/hop/device
attribution, a deterministic-sampling :class:`Tracer` over a lock-cheap
:class:`TraceCollector` ring buffer, measured-delay analysis
(:func:`delay_decomposition`, :func:`critical_path`), and exporters to
JSONL and Chrome ``trace_event`` JSON (viewable in ``chrome://tracing``
/ Perfetto).

The runtime dispatcher/worker, the shared
:class:`~repro.core.controller.LrsController`, and the simulation
engine all emit the same vocabulary through the ``TraceSink`` port, so
one analysis layer serves every substrate.
"""

from repro.trace.analysis import (COMPONENTS, critical_path,
                                  delay_decomposition, spans_by_tuple,
                                  summarize, traced_tuple_ids)
from repro.trace.collector import (DEFAULT_CAPACITY, NULL_TRACER,
                                   TraceCollector, Tracer, TraceSink,
                                   sample_key)
from repro.trace.spans import (ACK_RTT, INSTANT_KINDS, PROCESS, QUEUE_WAIT,
                               RECOVERY, RETRY, SERIALIZE, SHED, SPAN_KINDS,
                               TRANSMIT, Span, SpanContext)
from repro.trace.export import (REQUIRED_EVENT_KEYS, read_jsonl,
                                to_chrome_trace, to_jsonl,
                                validate_chrome_trace, write_chrome_trace,
                                write_jsonl)

__all__ = [
    "ACK_RTT", "COMPONENTS", "DEFAULT_CAPACITY", "INSTANT_KINDS",
    "NULL_TRACER", "PROCESS", "QUEUE_WAIT", "RECOVERY",
    "REQUIRED_EVENT_KEYS", "RETRY", "SERIALIZE", "SHED",
    "SPAN_KINDS", "Span", "SpanContext", "TRANSMIT", "TraceCollector",
    "TraceSink",
    "Tracer", "critical_path", "delay_decomposition", "read_jsonl",
    "sample_key", "spans_by_tuple", "summarize", "to_chrome_trace",
    "to_jsonl", "traced_tuple_ids", "validate_chrome_trace",
    "write_chrome_trace", "write_jsonl",
]
