"""Span collection: deterministic sampling + a lock-cheap ring buffer.

Two pieces:

:class:`TraceCollector`
    A fixed-capacity ring buffer of spans.  Writers take a slot index
    under a lock held only for one integer bump; the slot assignment
    itself happens outside the lock (list-item stores are atomic in
    CPython), so concurrent emitters never serialize on span storage.
    Below capacity no span is ever lost or torn; above capacity the
    oldest spans are evicted.

:class:`Tracer`
    The ``TraceSink`` port the substrates talk to.  Sampling is
    *deterministic per tuple*: whether seq N is traced is a pure
    function of ``(seed, seq)``, so a seeded simulation run reproduces
    its trace exactly, and every hop of a pipeline makes the same
    decision for the same tuple without coordination.  Span-duration
    histograms are recorded for **every** span handed to
    :meth:`Tracer.emit`, sampled or not, so decomposition percentiles
    survive even at ``sample_rate=0``.

:data:`NULL_TRACER`
    The disabled sink: every call is a no-op, and emit sites guard on
    ``tracer.enabled`` so a run without tracing pays only one attribute
    load per potential span.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Protocol, runtime_checkable

from repro import metrics as metrics_mod
from repro.core.exceptions import SimulationError
from repro.trace.spans import Span


@runtime_checkable
class TraceSink(Protocol):
    """The trace port every component's ``trace`` parameter accepts.

    :class:`Tracer` and the disabled :data:`NULL_TRACER` both satisfy
    it; typing the port (instead of ``Optional[object]``) lets static
    checkers catch miswired observability plumbing.  Emit sites guard on
    :attr:`enabled` so a disabled sink costs one attribute load.
    """

    enabled: bool

    def sampled(self, seq: int) -> bool:
        """Deterministic per-tuple sampling decision for *seq*."""
        ...

    def emit(self, span: Span, sampled: Optional[bool] = None) -> bool:
        """Offer one span; returns True when it was stored."""
        ...

    def spans(self) -> List[Span]:
        """Snapshot of retained spans, oldest first."""
        ...


_MASK64 = (1 << 64) - 1
_SAMPLE_SPACE = 1 << 32

#: default ring capacity: ~1 minute of a 24 fps stream fully traced
#: (5 spans/tuple) with headroom
DEFAULT_CAPACITY = 1 << 16


def sample_key(seq: int, seed: int) -> int:
    """A uniform 32-bit key for (seed, seq) — one Weyl multiply.

    The high 32 bits of ``seq * odd + seed-term mod 2**64`` are
    equidistributed over sequential seqs (a Weyl sequence on the golden
    ratio), which is exactly the population tracing samples from.  Kept
    to a single multiply-add so the per-tuple decision stays in the
    noise of the dispatch hot path; pure in (seed, seq), so the same
    tuple is sampled (or not) on every hop, in every replay, on both
    substrates.
    """
    return ((seq * 0x9E3779B97F4A7C15
             + (seed + 1) * 0xBF58476D1CE4E5B9) & _MASK64) >> 32


class TraceCollector:
    """Fixed-capacity ring buffer of spans with cheap concurrent writes."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise SimulationError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._slots: List[Optional[Span]] = [None] * capacity
        self._next = 0
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        """Store one span; evicts the oldest once the ring is full."""
        with self._lock:
            index = self._next
            self._next = index + 1
        # Outside the lock: distinct indices map to distinct slots until
        # the ring wraps, so concurrent writers never interleave within
        # one slot — a stored span is always intact.
        self._slots[index % self.capacity] = span

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including evicted ones)."""
        with self._lock:
            return self._next

    def __len__(self) -> int:
        with self._lock:
            return min(self._next, self.capacity)

    def spans(self) -> List[Span]:
        """Snapshot of retained spans, oldest first."""
        with self._lock:
            count = self._next
        if count <= self.capacity:
            window = self._slots[:count]
        else:
            pivot = count % self.capacity
            window = self._slots[pivot:] + self._slots[:pivot]
        # A slot can still be None if a writer took an index but has not
        # stored yet; snapshots simply skip the in-flight slot.
        return [span for span in window if span is not None]

    def clear(self) -> None:
        with self._lock:
            self._slots = [None] * self.capacity
            self._next = 0


class Tracer:
    """The TraceSink port: deterministic sampling over a collector.

    ``sample_rate`` is the fraction of tuples traced (0.0 keeps only
    histograms, 1.0 traces everything).  ``registry`` receives the
    ``swing_span_duration_seconds{kind=...}`` histogram for every
    emitted span regardless of sampling.
    """

    enabled = True

    def __init__(self, collector: Optional[TraceCollector] = None,
                 sample_rate: float = 1.0, seed: int = 0,
                 registry: Optional[metrics_mod.MetricsRegistry] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise SimulationError("sample_rate must be in [0, 1]")
        self.collector = (collector if collector is not None
                          else TraceCollector())
        self.sample_rate = sample_rate
        self.seed = seed
        self._threshold = int(round(sample_rate * _SAMPLE_SPACE))
        self._seed_term = (seed + 1) * 0xBF58476D1CE4E5B9
        self._registry = registry
        #: per-kind histogram cache — emit() is per-span, and the
        #: registry's get-or-create (kwargs + label sort + lock) is not
        self._histograms = {}
        # Bind the cheapest decision function for this rate up front:
        # sampled() sits on the per-tuple dispatch path, so the edge
        # rates skip the arithmetic entirely and the mid rates compare
        # in 64-bit space (same decision as sample_key, one shift less).
        if self._threshold <= 0:
            self.sampled = self._never_sampled
        elif self._threshold >= _SAMPLE_SPACE:
            self.sampled = self._always_sampled
        self._threshold64 = self._threshold << 32

    def sampled(self, seq: int, _mask=_MASK64,
                _mul=0x9E3779B97F4A7C15) -> bool:
        """Whether tuple *seq* is traced — deterministic in (seed, seq)."""
        return (seq * _mul + self._seed_term) & _mask < self._threshold64

    def _never_sampled(self, seq: int) -> bool:
        return False

    def _always_sampled(self, seq: int) -> bool:
        return True

    def emit(self, span: Span, sampled: Optional[bool] = None) -> bool:
        """Offer one span; returns True when it was stored.

        *sampled* overrides the deterministic decision — receivers pass
        the tuple's wire-carried :class:`~repro.trace.spans.SpanContext`
        flag so mid-pipeline hops follow the source's decision verbatim.
        The duration histogram is recorded either way.
        """
        if self._registry is not None:
            histogram = self._histograms.get(span.kind)
            if histogram is None:
                histogram = self._registry.histogram(
                    metrics_mod.SPAN_SECONDS, kind=span.kind)
                self._histograms[span.kind] = histogram
            histogram.observe(span.duration)
        keep = self.sampled(span.seq) if sampled is None else sampled
        if keep:
            self.collector.record(span)
        return keep

    def spans(self) -> List[Span]:
        return self.collector.spans()


class _NullTracer:
    """Tracing disabled: every call no-ops; ``enabled`` gates emit sites."""

    enabled = False
    sample_rate = 0.0

    def sampled(self, seq: int) -> bool:
        return False

    def emit(self, span: Span, sampled: Optional[bool] = None) -> bool:
        return False

    def spans(self) -> List[Span]:
        return []


#: shared disabled sink — the default for every component's trace port
NULL_TRACER = _NullTracer()
