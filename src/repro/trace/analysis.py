"""Trace analysis: measured delay decomposition + critical-path walking.

The simulator has always been able to produce the paper's Fig. 2
transmission/queuing/processing split *analytically* from its frame
records.  This module computes the same split from **measured spans**,
so the threaded runtime (and any future substrate) can answer "where
did this tuple's 180 ms go?" from observations rather than models —
and the two answers can be checked against each other (the trace
parity test in ``tests/integration``).

Bucketing rule, matching
:meth:`repro.simulation.metrics.MetricsCollector.delay_decomposition`:

* ``transmission`` — ``transmit`` spans, ``serialize`` spans, and
  ``queue_wait`` spans on a sender-side (egress/mailbox-out) hop: all
  cost of getting the tuple onto and across the wire, which is what
  the paper's sender-side timestamping observes;
* ``queuing`` — every other ``queue_wait`` (receiver-side ingress);
* ``processing`` — ``process`` spans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.spans import (PROCESS, QUEUE_WAIT, SERIALIZE, SHED,
                               TRANSMIT, Span)

#: queue hops charged to the transmission component (sender side)
_SENDER_HOP_PREFIXES = ("egress:", "edge:", "serialize:")

COMPONENTS = ("transmission", "queuing", "processing")


def _component_of(span: Span) -> Optional[str]:
    if span.kind == PROCESS:
        return "processing"
    if span.kind in (TRANSMIT, SERIALIZE):
        return "transmission"
    if span.kind == QUEUE_WAIT:
        if span.hop.startswith(_SENDER_HOP_PREFIXES):
            return "transmission"
        return "queuing"
    return None  # ack_rtt / shed / retry are not delay components


def spans_by_tuple(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """Group spans by tuple seq, each group ordered by start time."""
    grouped: Dict[int, List[Span]] = defaultdict(list)
    for span in spans:
        grouped[span.seq].append(span)
    for group in grouped.values():
        group.sort(key=lambda span: (span.start, span.end))
    return dict(grouped)


def delay_decomposition(spans: Iterable[Span]) -> Dict[str, float]:
    """Mean transmission / queuing / processing seconds per traced tuple.

    Only tuples that finished processing (carry at least one ``process``
    span) contribute, mirroring the simulator's completed-frames
    averaging; a tuple shed mid-pipeline would otherwise drag the means
    toward whatever happened to be measured before the shed.
    """
    per_tuple: Dict[int, Dict[str, float]] = {}
    completed = set()
    for span in spans:
        component = _component_of(span)
        if span.kind == PROCESS:
            completed.add(span.seq)
        if component is None:
            continue
        bucket = per_tuple.setdefault(
            span.seq, dict.fromkeys(COMPONENTS, 0.0))
        bucket[component] += span.duration
    rows = [per_tuple[seq] for seq in completed if seq in per_tuple]
    if not rows:
        return dict.fromkeys(COMPONENTS, 0.0)
    return {component: sum(row[component] for row in rows) / len(rows)
            for component in COMPONENTS}


def traced_tuple_ids(spans: Iterable[Span]) -> List[int]:
    """Distinct tuple seqs present in *spans*, ascending."""
    return sorted({span.seq for span in spans})


def critical_path(spans: Iterable[Span], seq: int
                  ) -> List[Tuple[float, Span]]:
    """Walk one tuple's spans in time order with the untraced gaps.

    Returns ``(gap_before, span)`` pairs: ``gap_before`` is the time
    between the previous span's end and this span's start that no span
    accounts for (scheduling slack, untraced hops).  The walk answers
    "where did this tuple's time go?" — the per-tuple view of the
    decomposition.
    """
    mine = sorted((span for span in spans if span.seq == seq),
                  key=lambda span: (span.start, span.end))
    path: List[Tuple[float, Span]] = []
    frontier: Optional[float] = None
    for span in mine:
        gap = 0.0 if frontier is None else max(0.0, span.start - frontier)
        path.append((gap, span))
        frontier = span.end if frontier is None else max(frontier, span.end)
    return path


def summarize(spans: Iterable[Span]) -> Dict[str, object]:
    """Compact trace summary (the CLI table / ``--metrics-json`` block)."""
    spans = list(spans)
    by_kind: Dict[str, int] = defaultdict(int)
    shed_reasons: Dict[str, int] = defaultdict(int)
    for span in spans:
        by_kind[span.kind] += 1
        if span.kind == SHED and span.detail:
            shed_reasons[span.detail] += 1
    return {
        "spans": len(spans),
        "tuples": len(traced_tuple_ids(spans)),
        "by_kind": dict(sorted(by_kind.items())),
        "shed_reasons": dict(sorted(shed_reasons.items())),
        "delay_decomposition": delay_decomposition(spans),
    }
