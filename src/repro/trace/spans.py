"""Span model: the shared vocabulary of per-tuple timing events.

A *span* is one timed segment of a tuple's life on one hop — waiting in
a queue, being serialized, crossing a link, being processed — or an
instantaneous event (a shed, a dispatch retry, an ACK round trip
recorded at the upstream).  Both substrates emit the same vocabulary:
the discrete-event simulator stamps spans with engine time, the
threaded runtime with its injected monotonic clock, so the analysis and
export layers never care which substrate produced a trace.

Kinds
-----

``queue_wait``
    Time spent parked in a named queue (source egress, worker ingress,
    a runtime mailbox).  ``hop`` names the queue.
``serialize``
    Encoding the tuple for the wire (runtime only; the simulator models
    transmission in bytes and has no codec on the data path).
``transmit``
    Crossing a link, sender push to receiver pop.
``process``
    The function unit's compute on the hosting device.
``ack_rtt``
    The upstream-observed round trip: tuple send to timestamp-echo
    arrival.  Measured where the paper measures L_i, at the dispatcher.
``shed``
    Instantaneous: the tuple was dropped by overload protection;
    ``detail`` carries the reason.
``retry``
    Instantaneous: the dispatcher re-routed the tuple after a failed
    send; ``detail`` names the downstream that failed.
``recovery``
    Instantaneous: a successor master restored control-plane state from
    a checkpoint; ``detail`` carries the adopted epoch, ``seq`` is 0
    (recovery is a control-plane event, not tied to one tuple).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

QUEUE_WAIT = "queue_wait"
SERIALIZE = "serialize"
TRANSMIT = "transmit"
PROCESS = "process"
ACK_RTT = "ack_rtt"
SHED = "shed"
RETRY = "retry"
RECOVERY = "recovery"

#: every kind the subsystem emits; exporters and tests validate against it
SPAN_KINDS = frozenset({QUEUE_WAIT, SERIALIZE, TRANSMIT, PROCESS, ACK_RTT,
                        SHED, RETRY, RECOVERY})

#: kinds with zero duration by construction (events, not intervals)
INSTANT_KINDS = frozenset({SHED, RETRY, RECOVERY})


class Span:
    """One timed segment (or instant event) in a tuple's life.

    Plain ``__slots__`` class, not a dataclass: spans are created on the
    per-tuple hot path and construction cost is part of the tracing
    overhead budget.
    """

    __slots__ = ("kind", "seq", "start", "end", "device_id", "hop", "detail",
                 "tenant")

    def __init__(self, kind: str, seq: int, start: float, end: float,
                 device_id: str = "", hop: str = "", detail: str = "",
                 tenant: str = "") -> None:
        self.kind = kind
        self.seq = seq
        self.start = start
        self.end = end
        self.device_id = device_id
        self.hop = hop
        self.detail = detail
        self.tenant = tenant

    @property
    def duration(self) -> float:
        """Span length in seconds; never negative (clock skew clamps to 0)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the JSONL exporter's row format).

        The ``tenant`` attribute appears only when set, so single-tenant
        exports stay byte-identical to the pre-multi-tenant format.
        """
        row = {"kind": self.kind, "seq": self.seq, "start": self.start,
               "end": self.end, "device_id": self.device_id,
               "hop": self.hop, "detail": self.detail}
        if self.tenant:
            row["tenant"] = self.tenant
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "Span":
        return cls(kind=row["kind"], seq=row["seq"], start=row["start"],
                   end=row["end"], device_id=row.get("device_id", ""),
                   hop=row.get("hop", ""), detail=row.get("detail", ""),
                   tenant=row.get("tenant", ""))

    def _key(self):
        return (self.kind, self.seq, self.start, self.end, self.device_id,
                self.hop, self.detail, self.tenant)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Span(%s, seq=%d, %0.6f..%0.6f, device=%r, hop=%r)"
                % (self.kind, self.seq, self.start, self.end,
                   self.device_id, self.hop))


class SpanContext:
    """Per-tuple trace metadata carried over the wire.

    Stamped once at the source and propagated hop to hop through the
    codec, so every device emits (or skips) spans for the same tuples
    the source sampled — hop-local sampling decisions can never
    disagree mid-pipeline even if device configs drift.
    """

    __slots__ = ("sampled", "origin")

    def __init__(self, sampled: bool, origin: str = "") -> None:
        self.sampled = bool(sampled)
        self.origin = origin

    def to_dict(self) -> Dict[str, Any]:
        return {"sampled": self.sampled, "origin": self.origin}

    @classmethod
    def from_dict(cls, row: Optional[Dict[str, Any]]) -> Optional["SpanContext"]:
        if not isinstance(row, dict):
            return None
        return cls(sampled=bool(row.get("sampled", False)),
                   origin=str(row.get("origin", "")))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanContext):
            return NotImplemented
        return (self.sampled, self.origin) == (other.sampled, other.origin)

    def __hash__(self) -> int:
        return hash((self.sampled, self.origin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanContext(sampled=%r, origin=%r)" % (self.sampled,
                                                       self.origin)
