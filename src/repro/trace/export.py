"""Trace exporters: JSONL rows and Chrome ``trace_event`` JSON.

Two interchange formats:

* **JSONL** — one :meth:`~repro.trace.spans.Span.to_dict` row per line;
  trivially greppable / pandas-loadable, and round-trips through
  :func:`read_jsonl` for offline analysis.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON object
  consumed by ``chrome://tracing`` and https://ui.perfetto.dev.  Spans
  become complete (``"ph": "X"``) events with microsecond ``ts``/``dur``;
  devices map to ``pid`` rows and hops to ``tid`` tracks, with ``M``
  metadata events naming them.  :func:`validate_chrome_trace` enforces
  the schema the viewers require (and the acceptance tests assert).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.core.exceptions import SerializationError
from repro.trace.spans import SPAN_KINDS, Span

#: seconds -> trace_event microseconds
_US = 1e6

#: keys every non-metadata trace event must carry (Perfetto's contract)
REQUIRED_EVENT_KEYS = ("ph", "ts", "dur", "pid", "tid", "name")


# -- JSONL ----------------------------------------------------------------
def to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in the order given."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_jsonl(spans: Iterable[Span], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(spans))


def read_jsonl(path) -> List[Span]:
    """Load spans written by :func:`write_jsonl`."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Chrome trace_event ----------------------------------------------------
def _lanes(spans: List[Span]):
    """Stable (device -> pid, (device, hop) -> tid) integer mappings."""
    devices = sorted({span.device_id or "?" for span in spans})
    pids = {device: index + 1 for index, device in enumerate(devices)}
    tids: Dict[tuple, int] = {}
    for device in devices:
        hops = sorted({span.hop or span.kind for span in spans
                       if (span.device_id or "?") == device})
        for index, hop in enumerate(hops):
            tids[(device, hop)] = index + 1
    return pids, tids


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Spans as a ``chrome://tracing`` / Perfetto JSON object."""
    spans = list(spans)
    pids, tids = _lanes(spans)
    events: List[Dict[str, Any]] = []
    for device, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": "device %s" % device}})
    for (device, hop), tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": pids[device],
                       "tid": tid, "args": {"name": hop}})
    for span in spans:
        device = span.device_id or "?"
        hop = span.hop or span.kind
        events.append({
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pids[device],
            "tid": tids[(device, hop)],
            "name": span.kind,
            "cat": "swing",
            "args": {"seq": span.seq, "hop": span.hop,
                     "detail": span.detail},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(spans), handle)


def validate_chrome_trace(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Check the trace_event schema; returns the duration events.

    Raises :class:`SerializationError` on any violation: missing
    required keys, negative or non-finite timestamps/durations, or an
    unknown span kind.  Tests (and the CI smoke step) call this on the
    written artifact so a malformed trace never ships silently.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise SerializationError("not a trace_event object "
                                 "(missing 'traceEvents')")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise SerializationError("'traceEvents' must be a list")
    duration_events = []
    for event in events:
        if not isinstance(event, dict):
            raise SerializationError("trace event is not an object: %r"
                                     % (event,))
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise SerializationError("unexpected event phase %r" % (phase,))
        missing = [key for key in REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            raise SerializationError("trace event missing keys %r" % missing)
        ts, dur = event["ts"], event["dur"]
        if not (isinstance(ts, (int, float)) and ts >= 0.0 and ts == ts):
            raise SerializationError("bad event timestamp %r" % (ts,))
        if not (isinstance(dur, (int, float)) and dur >= 0.0 and dur == dur):
            raise SerializationError("bad event duration %r" % (dur,))
        if event["name"] not in SPAN_KINDS:
            raise SerializationError("unknown span kind %r" % event["name"])
        duration_events.append(event)
    return duration_events
