"""Tests for offline capacity planning."""

import pytest

from repro import profiles
from repro.core.exceptions import SwingError
from repro.planner import (effective_rate, feasibility_frontier,
                           minimum_devices_for, plan_swarm)
from repro.simulation.workload import FACE_APP, TRANSLATE_APP


@pytest.fixture(scope="module")
def catalogue():
    return profiles.worker_profiles()


class TestEffectiveRate:
    def test_below_nominal(self, catalogue):
        nominal = catalogue["H"].service_rate(FACE_APP)
        assert effective_rate(catalogue["H"], FACE_APP) < nominal

    def test_headroom_zero_only_overhead(self, catalogue):
        profile = catalogue["H"]
        rate = effective_rate(profile, FACE_APP, headroom=0.0)
        assert rate == pytest.approx(
            profile.service_rate(FACE_APP)
            * (1.0 - profile.framework_overhead))

    def test_invalid_headroom(self, catalogue):
        with pytest.raises(SwingError):
            effective_rate(catalogue["H"], FACE_APP, headroom=1.0)


class TestPlanSwarm:
    def test_selects_fastest_first(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=10.0)
        assert plan.feasible
        assert plan.device_ids[0] == "H"

    def test_minimum_prefix(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
        assert plan.feasible
        # Dropping the last selected device must break the target.
        rates = [effective_rate(catalogue[d], FACE_APP)
                 for d in plan.device_ids]
        assert sum(rates) >= 24.0
        assert sum(rates[:-1]) < 24.0

    def test_infeasible_target(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=1000.0)
        assert not plan.feasible
        assert sorted(plan.device_ids) == sorted(catalogue)

    def test_shares_sum_to_target(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
        assert sum(p.share_rate for p in plan.devices) == pytest.approx(24.0)

    def test_utilization_bounded(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
        for device in plan.devices:
            assert 0.0 < device.utilization <= 1.0

    def test_power_and_battery_positive(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
        assert plan.total_power_w > 0
        for device in plan.devices:
            assert device.power_w >= 0
            assert device.battery_hours > 0

    def test_translation_needs_more_devices_than_face_at_same_rate(
            self, catalogue):
        face = plan_swarm(catalogue, FACE_APP, target_rate=5.0)
        translation = plan_swarm(catalogue, TRANSLATE_APP, target_rate=5.0)
        assert len(translation.devices) > len(face.devices)

    def test_invalid_inputs(self, catalogue):
        with pytest.raises(SwingError):
            plan_swarm(catalogue, FACE_APP, target_rate=0.0)
        with pytest.raises(SwingError):
            plan_swarm({}, FACE_APP, target_rate=5.0)

    def test_fps_per_watt_positive(self, catalogue):
        plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
        assert plan.fps_per_watt > 0


class TestFrontier:
    def test_monotonic_device_count(self, catalogue):
        frontier = feasibility_frontier(catalogue, FACE_APP,
                                        rates=[5.0, 15.0, 30.0, 50.0])
        counts = [frontier[rate] for rate in (5.0, 15.0, 30.0, 50.0)
                  if frontier[rate] is not None]
        assert counts == sorted(counts)

    def test_impossible_rate_is_none(self, catalogue):
        assert minimum_devices_for(catalogue, FACE_APP, 1e6) is None

    def test_plan_matches_simulation_feasibility(self, catalogue):
        # The planner says the fast trio sustains 24 FPS; the simulator
        # agrees (tests/simulation/test_swarm.py::test_fast_trio...).
        trio = profiles.worker_profiles(["G", "H", "I"])
        plan = plan_swarm(trio, FACE_APP, target_rate=24.0, headroom=0.1)
        assert plan.feasible
