"""Tests for the Table I device catalogue."""

import pytest

from repro import profiles
from repro.core.exceptions import SimulationError
from repro.simulation.workload import FACE_APP, TRANSLATE_APP


class TestCatalogue:
    def test_all_nine_devices_present(self):
        assert sorted(profiles.FACE_DELAYS_S) == list("ABCDEFGHI")

    def test_table1_delays_encoded(self):
        # Spot-check against Table I (values in ms).
        assert profiles.FACE_DELAYS_S["B"] == pytest.approx(0.0929)
        assert profiles.FACE_DELAYS_S["E"] == pytest.approx(0.4634)
        assert profiles.FACE_DELAYS_S["H"] == pytest.approx(0.0713)

    def test_table1_throughputs_are_inverse_delays(self):
        for device_id, fps in profiles.TABLE1_THROUGHPUT_FPS.items():
            rate = 1.0 / profiles.FACE_DELAYS_S[device_id]
            # The paper reports floor-ish integers of the inverse delay.
            assert abs(rate - fps) < 3.0

    def test_fastest_six_times_slowest(self):
        # Paper Sec. III: H's throughput is ~6x E's.
        ratio = (profiles.FACE_DELAYS_S["E"] / profiles.FACE_DELAYS_S["H"])
        assert 5.5 <= ratio <= 7.0

    def test_device_profile_contains_both_apps(self):
        profile = profiles.device_profile("B")
        assert profile.base_delay(FACE_APP) == pytest.approx(0.0929)
        assert profile.base_delay(TRANSLATE_APP) == pytest.approx(
            0.0929 * profiles.TRANSLATION_COMPUTE_SCALE)

    def test_unknown_device_rejected(self):
        with pytest.raises(SimulationError):
            profiles.device_profile("Z")

    def test_worker_profiles_default_excludes_source(self):
        workers = profiles.worker_profiles()
        assert sorted(workers) == profiles.WORKER_IDS
        assert "A" not in workers

    def test_poor_signal_ids_match_paper(self):
        assert profiles.POOR_SIGNAL_IDS == ["B", "C", "D"]

    def test_all_profiles_have_power(self):
        for device_id, profile in profiles.all_profiles().items():
            assert profile.power.peak_cpu_w > 0
            assert profile.power.peak_wifi_w > 0
            assert profile.power.battery_wh > 0

    def test_models_named(self):
        assert profiles.device_profile("H").model == "LG Nexus 4"
        assert profiles.device_profile("E").model == "Galaxy S"
