"""Tests for performance requirements."""

import pytest

from repro.core.exceptions import SwingError
from repro.core.requirements import SMOOTH_VIDEO_FPS, PerformanceRequirement


class TestPerformanceRequirement:
    def test_default_is_smooth_video(self):
        requirement = PerformanceRequirement()
        assert requirement.input_rate == SMOOTH_VIDEO_FPS == 24.0

    def test_frame_interval(self):
        assert PerformanceRequirement(input_rate=10.0).frame_interval == 0.1

    def test_reorder_capacity_rounds_rate_times_timespan(self):
        requirement = PerformanceRequirement(input_rate=24.0,
                                             reorder_timespan=1.0)
        assert requirement.reorder_capacity() == 24

    def test_reorder_capacity_minimum_one(self):
        requirement = PerformanceRequirement(input_rate=0.3)
        assert requirement.reorder_capacity() == 1

    def test_meets_rate_with_tolerance(self):
        requirement = PerformanceRequirement(input_rate=24.0)
        assert requirement.meets_rate(23.6)
        assert not requirement.meets_rate(20.0)

    def test_meets_latency(self):
        requirement = PerformanceRequirement(max_latency=1.0)
        assert requirement.meets_latency(0.9)
        assert not requirement.meets_latency(1.1)

    def test_no_latency_bound_always_met(self):
        assert PerformanceRequirement().meets_latency(999.0)

    @pytest.mark.parametrize("kwargs", [
        {"input_rate": 0.0},
        {"input_rate": -1.0},
        {"max_latency": 0.0},
        {"reorder_timespan": 0.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(SwingError):
            PerformanceRequirement(**kwargs)
