"""Tests for control-plane crash recovery: checkpoints, stores, manager."""

import os
import threading

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError, SerializationError
from repro.core.recovery import (CheckpointManager, ControlPlaneCheckpoint,
                                 FileCheckpointStore, InMemoryCheckpointStore,
                                 RecoveryConfig, RetainedEntry, SessionState,
                                 load_checkpoint, retention_entries)
from repro.runtime.serialization import encode_value


def sample_checkpoint() -> ControlPlaneCheckpoint:
    return ControlPlaneCheckpoint(
        epoch=3,
        workers=("B", "G", "H"),
        sessions=(
            SessionState(tenant="", started=True,
                         assignments=(("detect", ("B", "G")),
                                      ("sink", ("A",)))),
            SessionState(tenant="t1", started=False,
                         assignments=(("detect", ("H",)),)),
        ),
        retention=(
            ("A>detect", (
                RetainedEntry(seq=7, attempt=2, deadline=12.5,
                              frame=b"\x01\x02\x03"),
                RetainedEntry(seq=9, attempt=1, deadline=None,
                              frame=b"batchframe", seqs=(9, 10, 11)),
            )),
        ),
        dedup=(("sink", 5), ("sink", 6), ("sink", 7)),
    )


class TestRecoveryConfig:
    def test_defaults_are_valid(self):
        RecoveryConfig()

    @pytest.mark.parametrize("kwargs", [
        {"checkpoint_interval": -1.0},
        {"worker_idle_tick": 0.0},
        {"drain_quiet": -0.1},
        {"drain_poll": 0.0},
        {"detector_interval": 0.0},
        {"await_timeout": 0.0},
        {"await_poll": -1.0},
        {"run_poll": 0.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(RuntimeStateError):
            RecoveryConfig(**kwargs)

    def test_frozen(self):
        config = RecoveryConfig()
        with pytest.raises(Exception):
            config.checkpoint_interval = 9.0


class TestCheckpointCodec:
    def test_round_trip(self):
        checkpoint = sample_checkpoint()
        assert ControlPlaneCheckpoint.decode(checkpoint.encode()) \
            == checkpoint

    def test_empty_round_trip(self):
        checkpoint = ControlPlaneCheckpoint()
        assert ControlPlaneCheckpoint.decode(checkpoint.encode()) \
            == checkpoint

    def test_foreign_version_rejected(self):
        payload = encode_value({"version": 2, "epoch": 0})
        with pytest.raises(SerializationError, match="version"):
            ControlPlaneCheckpoint.decode(payload)

    def test_unknown_top_level_field_rejected_loudly(self):
        # A future master may add fields this build cannot honor;
        # silently dropping them would break the delivery guarantee.
        payload = encode_value({"version": 1, "epoch": 0,
                                "quorum": ["A", "B"]})
        with pytest.raises(SerializationError, match="quorum"):
            ControlPlaneCheckpoint.decode(payload)

    def test_unknown_session_field_rejected(self):
        payload = encode_value({
            "version": 1,
            "sessions": [{"tenant": "", "started": True,
                          "assignments": {}, "leases": []}]})
        with pytest.raises(SerializationError, match="leases"):
            ControlPlaneCheckpoint.decode(payload)

    def test_unknown_entry_field_rejected(self):
        payload = encode_value({
            "version": 1,
            "retention": {"A>detect": [
                {"seq": 1, "frame": b"x", "priority": 9}]}})
        with pytest.raises(SerializationError, match="priority"):
            ControlPlaneCheckpoint.decode(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(encode_value([1, 2, 3]))

    def test_negative_epoch_rejected(self):
        payload = encode_value({"version": 1, "epoch": -1})
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(payload)

    def test_empty_worker_id_rejected(self):
        payload = encode_value({"version": 1, "workers": ["B", ""]})
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(payload)

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(b"not a checkpoint")


class TestCheckpointKeyRanges:
    def test_round_trip(self):
        checkpoint = ControlPlaneCheckpoint(
            epoch=1, workers=("B", "C"),
            key_ranges=(("sensor>aggregate",
                         ((0, 32768, "aggregate@B"),
                          (32768, 65536, "aggregate@C"))),))
        assert ControlPlaneCheckpoint.decode(checkpoint.encode()) \
            == checkpoint

    def test_absent_at_default_stays_byte_identical(self):
        # A deployment with no keyed edges must write exactly the bytes
        # a pre-keyed build wrote, so rolling upgrades can exchange
        # checkpoints in both directions on the stateless path.
        checkpoint = sample_checkpoint()
        assert checkpoint.key_ranges == ()
        frame = checkpoint.encode()
        assert b"key_ranges" not in frame
        legacy = encode_value({
            "version": 1,
            "epoch": checkpoint.epoch,
            "workers": list(checkpoint.workers),
            "sessions": [{
                "tenant": session.tenant,
                "started": session.started,
                "assignments": {unit: list(hosts)
                                for unit, hosts in session.assignments},
            } for session in checkpoint.sessions],
            "retention": {edge: [{
                "seq": entry.seq,
                "attempt": entry.attempt,
                "deadline": entry.deadline,
                "frame": entry.frame,
                "seqs": list(entry.seqs),
            } for entry in entries]
                for edge, entries in checkpoint.retention},
            "dedup": [[edge, seq] for edge, seq in checkpoint.dedup],
        })
        assert frame == legacy

    def test_malformed_range_entries_rejected(self):
        payload = encode_value({
            "version": 1,
            "key_ranges": {"sensor>aggregate": [[0, "oops", "B"]]}})
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(payload)

    def test_truncated_range_triple_rejected(self):
        payload = encode_value({
            "version": 1, "key_ranges": {"sensor>aggregate": [[0, 100]]}})
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(payload)

    def test_version_skew_still_rejected_with_ranges(self):
        payload = encode_value({
            "version": 2,
            "key_ranges": {"sensor>aggregate": [[0, 100, "B"]]}})
        with pytest.raises(SerializationError, match="version"):
            ControlPlaneCheckpoint.decode(payload)


class TestStores:
    def test_in_memory_latest_wins(self):
        store = InMemoryCheckpointStore()
        assert store.load() is None
        store.save(b"one")
        store.save(b"two")
        assert store.load() == b"two"
        assert store.writes == 2

    def test_file_store_round_trip(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path / "swing.ckpt"))
        assert store.load() is None
        store.save(b"payload")
        assert store.load() == b"payload"
        # The temp file must not linger after the atomic publish.
        assert not os.path.exists(store.path + ".tmp")

    def test_file_store_overwrites_atomically(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path / "swing.ckpt"))
        store.save(b"old")
        store.save(b"new")
        assert store.load() == b"new"

    def test_load_checkpoint_helper(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path / "swing.ckpt"))
        assert load_checkpoint(store) is None
        checkpoint = sample_checkpoint()
        store.save(checkpoint.encode())
        assert load_checkpoint(store) == checkpoint


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCheckpointManager:
    def make(self, **kwargs):
        clock = FakeClock()
        store = InMemoryCheckpointStore()
        registry = metrics_mod.MetricsRegistry()
        manager = CheckpointManager(sample_checkpoint, store,
                                    config=RecoveryConfig(**kwargs),
                                    registry=registry, clock=clock)
        return manager, store, clock, registry

    def test_write_persists_and_loads(self):
        manager, store, _clock, _registry = self.make()
        manager.write()
        assert store.writes == 1
        assert manager.load() == sample_checkpoint()

    def test_periodic_cadence(self):
        manager, store, clock, _registry = self.make(checkpoint_interval=1.0)
        assert manager.maybe_checkpoint() is True  # first call writes
        assert manager.maybe_checkpoint() is False  # too soon
        clock.advance(0.5)
        assert manager.maybe_checkpoint() is False
        clock.advance(0.6)
        assert manager.maybe_checkpoint() is True
        assert store.writes == 2

    def test_interval_zero_disables_periodic(self):
        manager, store, clock, _registry = self.make(checkpoint_interval=0.0)
        clock.advance(100.0)
        assert manager.maybe_checkpoint() is False
        assert store.writes == 0

    def test_mutation_writes_when_configured(self):
        manager, store, _clock, _registry = self.make(
            checkpoint_on_mutation=True)
        manager.mutation()
        assert store.writes == 1

    def test_mutation_skipped_when_disabled(self):
        manager, store, _clock, _registry = self.make(
            checkpoint_on_mutation=False)
        manager.mutation()
        assert store.writes == 0

    def test_age_gauge_exported(self):
        manager, _store, clock, registry = self.make()
        assert manager.age() is None
        manager.write()
        clock.advance(2.5)
        manager.maybe_checkpoint()  # writes again (interval elapsed)
        assert manager.age() == 0.0
        clock.advance(0.4)
        manager.maybe_checkpoint()  # refreshes the gauge without writing
        assert registry.gauge_value(metrics_mod.CHECKPOINT_AGE_SECONDS) == \
            pytest.approx(0.4)

    def test_concurrent_writes_stay_coherent(self):
        manager, store, _clock, _registry = self.make()
        threads = [threading.Thread(target=manager.write)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.writes == 8
        assert manager.load() == sample_checkpoint()


class TestRetentionEntries:
    class FakeBatch:
        def __init__(self, frame):
            self.frame = frame

    def test_bytes_and_batch_contexts_survive(self):
        exported = [
            (1, 1, 2.0, b"plain", ()),
            (2, 3, None, self.FakeBatch(b"batch"), (2, 3, 4)),
        ]
        entries = retention_entries(exported)
        assert entries == (
            RetainedEntry(seq=1, attempt=1, deadline=2.0, frame=b"plain"),
            RetainedEntry(seq=2, attempt=3, deadline=None, frame=b"batch",
                          seqs=(2, 3, 4)),
        )

    def test_opaque_contexts_skipped(self):
        # Simulator contexts are engine objects, not wire bytes; the
        # simulator mirrors recovery itself, so they never checkpoint.
        entries = retention_entries([(1, 1, None, object(), ())])
        assert entries == ()
