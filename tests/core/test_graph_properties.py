"""Property-based tests over randomly generated DAGs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import GraphError, GraphValidationError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import AppGraph, FunctionUnitSpec


@st.composite
def random_dag(draw):
    """A random layered DAG: source -> layers of compute -> sink.

    Every compute unit gets at least one upstream from an earlier layer
    and at least one downstream toward a later layer, so the graph is
    always *valid* by construction.
    """
    layer_sizes = draw(st.lists(st.integers(min_value=1, max_value=3),
                                min_size=1, max_size=4))
    graph = AppGraph("random")
    graph.add_unit(FunctionUnitSpec("src", lambda: IterableSource([]),
                                    role="source"))
    layers = [["src"]]
    counter = 0
    for size in layer_sizes:
        layer = []
        for _ in range(size):
            name = "u%d" % counter
            counter += 1
            graph.add_unit(FunctionUnitSpec(
                name, lambda: LambdaUnit(lambda v: v)))
            layer.append(name)
        layers.append(layer)
    graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
    layers.append(["snk"])
    # Wire: each unit gets an upstream from the previous layer and a
    # downstream to the next; extra random edges forward-only.
    for previous, layer in zip(layers, layers[1:]):
        for name in layer:
            upstream = draw(st.sampled_from(previous))
            graph.connect(upstream, name)
    for index, layer in enumerate(layers[:-1]):
        for name in layer:
            if not graph.downstreams(name):
                downstream = draw(st.sampled_from(layers[index + 1]))
                graph.connect(name, downstream)
    extra = draw(st.integers(min_value=0, max_value=4))
    flat = [(i, name) for i, layer in enumerate(layers)
            for name in layer]
    for _ in range(extra):
        li, a = draw(st.sampled_from(flat))
        lj, b = draw(st.sampled_from(flat))
        if li < lj and b != "src" and a != "snk" \
                and b not in graph.downstreams(a):
            if not (a == "src" and b == "snk"):
                graph.connect(a, b)
    return graph


class TestRandomDags:
    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_constructed_dags_validate(self, graph):
        graph.validate()

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_topological_order_respects_edges(self, graph):
        order = graph.topological_order()
        position = {name: index for index, name in enumerate(order)}
        for upstream, downstream in graph.edges():
            assert position[upstream] < position[downstream]

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_order_contains_every_unit_once(self, graph):
        order = graph.topological_order()
        assert sorted(order) == sorted(graph.unit_names)

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_reachability_from_source(self, graph):
        # validate() guarantees every non-source has an upstream; check
        # full reachability from the source explicitly.
        reached = {"src"}
        frontier = ["src"]
        while frontier:
            name = frontier.pop()
            for downstream in graph.downstreams(name):
                if downstream not in reached:
                    reached.add(downstream)
                    frontier.append(downstream)
        assert reached == set(graph.unit_names)
