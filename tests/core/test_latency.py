"""Tests for latency estimation and the ACK tracker."""

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import PolicyError
from repro.core.latency import (AckTracker, EwmaEstimator,
                                MovingAverageEstimator, RateMeter,
                                make_estimator)


class TestMovingAverage:
    def test_empty_has_no_value(self):
        assert MovingAverageEstimator().value is None

    def test_single_sample(self):
        est = MovingAverageEstimator()
        est.observe(2.0)
        assert est.value == pytest.approx(2.0)

    def test_window_evicts_old_samples(self):
        est = MovingAverageEstimator(window=2)
        for sample in (10.0, 2.0, 4.0):
            est.observe(sample)
        assert est.value == pytest.approx(3.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(PolicyError):
            MovingAverageEstimator().observe(-1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(PolicyError):
            MovingAverageEstimator(window=0)

    def test_reset(self):
        est = MovingAverageEstimator()
        est.observe(1.0)
        est.reset()
        assert est.value is None
        assert est.sample_count == 0

    def test_long_run_drift_bounded(self):
        # Regression: the incremental running total accumulates float
        # cancellation error over long runs (1e12-magnitude spikes mixed
        # with tiny samples left the average ~5e-5 off); the periodic
        # exact recompute bounds it.
        est = MovingAverageEstimator(window=20)
        for i in range(1_000_000):
            est.observe(1e12 if i % 2 == 0 else 1e-3)
        for _ in range(40):  # two windows of constants span a recompute
            est.observe(1.0)
        assert est.value == pytest.approx(1.0, abs=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_value_within_sample_range(self, samples):
        est = MovingAverageEstimator(window=10)
        for sample in samples:
            est.observe(sample)
        window = samples[-10:]
        slack = 1e-9 * (1.0 + max(window))
        assert min(window) - slack <= est.value <= max(window) + slack


class TestEwma:
    def test_first_sample_taken_verbatim(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe(4.0)
        assert est.value == pytest.approx(4.0)

    def test_blend(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe(4.0)
        est.observe(0.0)
        assert est.value == pytest.approx(2.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(PolicyError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(PolicyError):
            EwmaEstimator(alpha=1.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0))
    def test_bounded_by_extremes(self, samples, alpha):
        est = EwmaEstimator(alpha=alpha)
        for sample in samples:
            est.observe(sample)
        slack = 1e-9 * (1.0 + max(samples))
        assert min(samples) - slack <= est.value <= max(samples) + slack


class TestMakeEstimator:
    def test_kinds(self):
        assert isinstance(make_estimator("moving-average"),
                          MovingAverageEstimator)
        assert isinstance(make_estimator("ewma"), EwmaEstimator)

    def test_unknown_kind(self):
        with pytest.raises(PolicyError):
            make_estimator("magic")


class TestAckTracker:
    def test_ack_produces_latency_sample(self):
        tracker = AckTracker()
        tracker.add_downstream("B")
        tracker.record_send(seq=1, downstream_id="B", now=10.0)
        sample = tracker.record_ack(seq=1, now=10.5)
        assert sample == pytest.approx(0.5)
        assert tracker.stats()["B"].latency == pytest.approx(0.5)

    def test_processing_delay_piggybacked(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        tracker.record_ack(1, 0.4, processing_delay=0.1)
        stats = tracker.stats()["B"]
        assert stats.processing_delay == pytest.approx(0.1)

    def test_unknown_ack_ignored(self):
        tracker = AckTracker()
        assert tracker.record_ack(99, 1.0) is None

    def test_duplicate_ack_ignored(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        assert tracker.record_ack(1, 0.5) is not None
        assert tracker.record_ack(1, 0.7) is None

    def test_send_auto_registers_downstream(self):
        tracker = AckTracker()
        tracker.record_send(1, "new", 0.0)
        assert "new" in tracker.stats()

    def test_expire_pending_drops_stale(self):
        tracker = AckTracker(timeout=1.0)
        tracker.record_send(1, "B", 0.0)
        tracker.record_send(2, "B", 5.0)
        assert tracker.expire_pending(now=5.5) == 1
        assert tracker.pending_count() == 1
        assert tracker.record_ack(1, 6.0) is None  # expired

    def test_remove_downstream_clears_pending(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        tracker.remove_downstream("B")
        assert tracker.pending_count() == 0
        assert "B" not in tracker.stats()

    def test_mark_dead_reflected_in_stats(self):
        tracker = AckTracker()
        tracker.add_downstream("B")
        tracker.mark_dead("B")
        assert tracker.stats()["B"].alive is False

    def test_counters(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        tracker.record_send(2, "B", 0.1)
        tracker.record_ack(1, 0.2)
        stats = tracker.stats()["B"]
        assert stats.sent_count == 2
        assert stats.acked_count == 1

    def test_pending_count_per_downstream(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        tracker.record_send(2, "C", 0.0)
        assert tracker.pending_count("B") == 1
        assert tracker.pending_count() == 2

    def test_service_rate_inverse_latency(self):
        tracker = AckTracker()
        tracker.record_send(1, "B", 0.0)
        tracker.record_ack(1, 0.25)
        assert tracker.stats()["B"].service_rate == pytest.approx(4.0)

    def test_service_rate_none_without_samples(self):
        tracker = AckTracker()
        tracker.add_downstream("B")
        assert tracker.stats()["B"].service_rate is None


class TestLossAccounting:
    def test_expiry_charges_lost_count(self):
        tracker = AckTracker(timeout=1.0)
        tracker.record_send(1, "B", 0.0)
        tracker.record_send(2, "C", 0.0)
        tracker.expire_pending(now=2.0)
        assert tracker.lost_count("B") == 1
        assert tracker.lost_count("C") == 1
        assert tracker.lost_count() == 2
        assert tracker.lost_by_downstream() == {"B": 1, "C": 1}
        assert tracker.stats()["B"].lost_count == 1

    def test_ack_after_expiry_returns_none_without_corrupting_counts(self):
        tracker = AckTracker(timeout=1.0)
        tracker.record_send(1, "B", 0.0)
        tracker.expire_pending(now=2.0)
        assert tracker.record_ack(1, 2.5) is None
        stats = tracker.stats()["B"]
        assert stats.sent_count == 1
        assert stats.acked_count == 0
        assert stats.lost_count == 1
        assert stats.latency is None  # no phantom sample

    def test_remove_downstream_purges_pending_and_losses(self):
        tracker = AckTracker(timeout=1.0)
        tracker.record_send(1, "B", 0.0)
        tracker.expire_pending(now=2.0)
        tracker.record_send(2, "B", 3.0)
        tracker.remove_downstream("B")
        assert tracker.pending_count() == 0
        assert tracker.lost_count("B") == 0
        assert tracker.expire_pending(now=10.0) == 0

    @pytest.mark.parametrize("acked, lost, expected", [
        (0, 0, 0.0),   # unresolved: no evidence either way
        (3, 1, 0.25),
        (0, 4, 1.0),
        (9, 1, 0.1),
    ])
    def test_loss_rate_table(self, acked, lost, expected):
        from repro.core.latency import DownstreamStats
        stats = DownstreamStats(downstream_id="B", acked_count=acked,
                                lost_count=lost)
        assert stats.loss_rate == pytest.approx(expected)

    @pytest.mark.parametrize("dead_after, rounds, expect_dead", [
        (1, 1, True),
        (3, 2, False),
        (3, 3, True),
        (5, 4, False),
    ])
    def test_dead_after_threshold(self, dead_after, rounds, expect_dead):
        tracker = AckTracker(timeout=1.0, dead_after=dead_after)
        now = 0.0
        for seq in range(rounds):
            tracker.record_send(seq, "B", now)
            now += 2.0
            tracker.expire_pending(now)
        assert tracker.is_alive("B") is (not expect_dead)
        assert tracker.stats()["B"].alive is (not expect_dead)

    def test_intervening_ack_resets_streak(self):
        tracker = AckTracker(timeout=1.0, dead_after=2)
        tracker.record_send(1, "B", 0.0)
        tracker.expire_pending(now=2.0)        # streak 1
        tracker.record_send(2, "B", 2.0)
        tracker.record_ack(2, 2.5)             # streak reset
        tracker.record_send(3, "B", 3.0)
        tracker.expire_pending(now=5.0)        # streak 1 again
        assert tracker.is_alive("B")

    def test_ack_resurrects_dead_downstream(self):
        tracker = AckTracker(timeout=1.0, dead_after=1)
        tracker.record_send(1, "B", 0.0)
        tracker.expire_pending(now=2.0)
        assert not tracker.is_alive("B")
        tracker.record_send(2, "B", 3.0)       # a probe
        tracker.record_ack(2, 3.2)
        assert tracker.is_alive("B")

    def test_invalid_dead_after_rejected(self):
        with pytest.raises(PolicyError):
            AckTracker(dead_after=0)

    def test_pending_downstream_lookup(self):
        tracker = AckTracker()
        tracker.record_send(7, "B", 0.0)
        assert tracker.pending_downstream(7) == "B"
        tracker.record_ack(7, 0.5)
        assert tracker.pending_downstream(7) is None

    def test_registry_counters_incremented(self):
        from repro import metrics as metrics_mod
        registry = metrics_mod.MetricsRegistry()
        tracker = AckTracker(timeout=1.0, dead_after=1, registry=registry)
        tracker.record_send(1, "B", 0.0)
        tracker.expire_pending(now=2.0)
        assert registry.value(metrics_mod.SENT_TOTAL, downstream="B") == 1
        assert registry.value(metrics_mod.LOST_TOTAL, downstream="B") == 1
        assert registry.value(metrics_mod.MARKED_DEAD_TOTAL,
                              downstream="B") == 1
        tracker.record_send(2, "B", 3.0)
        tracker.record_ack(2, 3.5)
        assert registry.value(metrics_mod.ACKED_TOTAL, downstream="B") == 1
        assert registry.value(metrics_mod.RESURRECTED_TOTAL,
                              downstream="B") == 1


class TestRateMeter:
    def test_rate_counts_recent_arrivals(self):
        meter = RateMeter(window=1.0)
        for t in (0.0, 0.2, 0.4, 0.6):
            meter.observe(t)
        assert meter.rate(0.6) == pytest.approx(4.0)

    def test_old_arrivals_evicted(self):
        meter = RateMeter(window=1.0)
        meter.observe(0.0)
        meter.observe(2.0)
        assert meter.rate(2.0) == pytest.approx(1.0)

    def test_invalid_window(self):
        with pytest.raises(PolicyError):
            RateMeter(window=0.0)

    def test_empty_rate_zero(self):
        assert RateMeter().rate(5.0) == 0.0
