"""Partitioned operator state: stores, primitives, snapshot codec."""

import pytest

from repro.core.exceptions import RuntimeStateError, SerializationError
from repro.core.keyed import KEY_SPACE, KeyRange, hash_key
from repro.core.state import (STATE_SNAPSHOT_VERSION, InMemoryStateStore,
                              SessionTracker, StateSnapshot, WindowAggregator,
                              decode_state_snapshot, encode_state_snapshot,
                              install_snapshot, snapshot_range)
from repro.runtime.serialization import encode_value


class TestInMemoryStateStore:
    def test_load_store_delete(self):
        store = InMemoryStateStore()
        assert store.load("k") is None
        store.store("k", {"n": 1})
        assert store.load("k") == {"n": 1}
        store.delete("k")
        assert store.load("k") is None
        assert len(store) == 0

    def test_extract_range_removes_matching_keys(self):
        store = InMemoryStateStore()
        keys = ["user-%d" % i for i in range(32)]
        for key in keys:
            store.store(key, {"k": key})
        half = KeyRange(0, KEY_SPACE // 2)
        moved = dict(store.extract_range(half))
        # the store partitions exactly: moved ∪ remaining == original
        assert all(half.contains(hash_key(k)) for k in moved)
        assert all(not half.contains(hash_key(k)) for k in store.keys())
        assert len(moved) + len(store) == len(keys)

    def test_install_rejects_collision(self):
        store = InMemoryStateStore()
        store.store("k", {"n": 1})
        with pytest.raises(RuntimeStateError):
            store.install([("k", {"n": 2})])


class TestWindowAggregator:
    def test_window_closes_on_boundary(self):
        aggregator = WindowAggregator(InMemoryStateStore(), window=1.0)
        assert aggregator.observe("u", 2.0, 0.1) is None
        assert aggregator.observe("u", 4.0, 0.9) is None
        closed = aggregator.observe("u", 7.0, 1.1)  # crosses the boundary
        assert closed is not None
        assert closed.count == 2 and closed.total == 6.0
        assert closed.mean == 3.0
        assert closed.minimum == 2.0 and closed.maximum == 4.0
        assert closed.window_start == 0.0

    def test_keys_are_independent(self):
        aggregator = WindowAggregator(InMemoryStateStore(), window=1.0)
        aggregator.observe("a", 1.0, 0.5)
        assert aggregator.observe("b", 1.0, 1.5) is None  # b's first window

    def test_flush_closes_open_window(self):
        aggregator = WindowAggregator(InMemoryStateStore(), window=1.0)
        aggregator.observe("u", 5.0, 0.5)
        closed = aggregator.flush("u")
        assert closed is not None and closed.count == 1
        assert aggregator.flush("u") is None

    def test_state_survives_store_migration(self):
        # The working window lives in the store, so moving the store's
        # entries moves the in-progress aggregation with them.
        source, target = InMemoryStateStore(), InMemoryStateStore()
        WindowAggregator(source, window=1.0).observe("u", 5.0, 0.5)
        target.install(source.extract_range(KeyRange(0, KEY_SPACE)))
        closed = WindowAggregator(target, window=1.0).observe("u", 1.0, 1.5)
        assert closed is not None and closed.count == 1 and closed.total == 5.0

    def test_rejects_bad_window(self):
        with pytest.raises(RuntimeStateError):
            WindowAggregator(InMemoryStateStore(), window=0.0)


class TestSessionTracker:
    def test_gap_closes_session(self):
        tracker = SessionTracker(InMemoryStateStore(), timeout=1.0)
        assert tracker.observe("u", 0.0) is None
        assert tracker.observe("u", 0.5) is None
        closed = tracker.observe("u", 2.0)  # gap > timeout
        assert closed is not None
        assert closed.events == 2 and closed.duration == 0.5

    def test_flush(self):
        tracker = SessionTracker(InMemoryStateStore(), timeout=1.0)
        tracker.observe("u", 0.0)
        closed = tracker.flush("u")
        assert closed is not None and closed.events == 1
        assert tracker.flush("u") is None

    def test_rejects_bad_timeout(self):
        with pytest.raises(RuntimeStateError):
            SessionTracker(InMemoryStateStore(), timeout=0.0)


class TestSnapshotCodec:
    def _snapshot(self):
        store = InMemoryStateStore()
        for i in range(8):
            store.store("user-%d" % i, {"count": i, "total": float(i)})
        return snapshot_range(store, "", "aggregate", KeyRange(0, KEY_SPACE))

    def test_round_trip(self):
        snapshot = self._snapshot()
        decoded = decode_state_snapshot(encode_state_snapshot(snapshot))
        assert decoded.unit == "aggregate" and decoded.tenant == ""
        assert decoded.key_range == snapshot.key_range
        assert dict(decoded.entries) == dict(snapshot.entries)

    def test_install_round_trip(self):
        snapshot = self._snapshot()
        target = InMemoryStateStore()
        install_snapshot(target,
                         decode_state_snapshot(encode_state_snapshot(snapshot)))
        assert len(target) == len(snapshot.entries)

    def test_foreign_version_rejected(self):
        frame = encode_value({"version": STATE_SNAPSHOT_VERSION + 1,
                              "unit": "u", "lo": 0, "hi": 16, "entries": []})
        with pytest.raises(SerializationError, match="version"):
            decode_state_snapshot(frame)

    def test_unknown_field_rejected(self):
        frame = encode_value({"version": STATE_SNAPSHOT_VERSION, "unit": "u",
                              "lo": 0, "hi": 16, "entries": [],
                              "surprise": 1})
        with pytest.raises(SerializationError, match="version skew"):
            decode_state_snapshot(frame)

    def test_entry_outside_range_rejected(self):
        # A frame claiming range R but carrying a key hashing outside R
        # would corrupt the target's routing invariant — strict decode
        # catches it before install.
        store = InMemoryStateStore()
        store.store("user-1", {"n": 1})
        h = hash_key("user-1")
        bad_range = (KeyRange(0, 2) if h >= 2
                     else KeyRange(KEY_SPACE // 2, KEY_SPACE))
        frame = encode_value({"version": STATE_SNAPSHOT_VERSION, "unit": "u",
                              "tenant": "", "lo": bad_range.lo,
                              "hi": bad_range.hi,
                              "entries": [["user-1", {"n": 1}]]})
        with pytest.raises(SerializationError, match="outside range"):
            decode_state_snapshot(frame)

    def test_malformed_range_rejected(self):
        frame = encode_value({"version": STATE_SNAPSHOT_VERSION, "unit": "u",
                              "lo": 16, "hi": 0, "entries": []})
        with pytest.raises(SerializationError, match="malformed"):
            decode_state_snapshot(frame)

    def test_empty_unit_rejected(self):
        frame = encode_value({"version": STATE_SNAPSHOT_VERSION, "unit": "",
                              "lo": 0, "hi": 16, "entries": []})
        with pytest.raises(SerializationError):
            decode_state_snapshot(frame)

    def test_non_mapping_rejected(self):
        with pytest.raises(SerializationError):
            decode_state_snapshot(encode_value([1, 2, 3]))


class TestExtractInstallMoveSemantics:
    def test_entries_leave_the_source(self):
        store = InMemoryStateStore()
        store.store("user-3", {"n": 3})
        snapshot = snapshot_range(store, "", "u", KeyRange(0, KEY_SPACE))
        assert len(store) == 0  # moved, not copied
        assert snapshot.entries == (("user-3", {"n": 3}),)
