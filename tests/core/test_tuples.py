"""Tests for the tuple data model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import SchemaError
from repro.core.tuples import DataTuple, HopTiming, TupleSchema, make_stream


class TestTupleSchema:
    def test_of_builds_schema(self):
        schema = TupleSchema.of("frame", "id")
        assert schema.fields == ("frame", "id")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema(())

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema.of("a", "a")

    def test_non_string_field_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema((1,))  # type: ignore[arg-type]

    def test_empty_field_name_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema.of("")

    def test_validate_accepts_exact_fields(self):
        TupleSchema.of("a", "b").validate({"a": 1, "b": 2})

    def test_validate_rejects_missing(self):
        with pytest.raises(SchemaError, match="missing"):
            TupleSchema.of("a", "b").validate({"a": 1})

    def test_validate_rejects_extra(self):
        with pytest.raises(SchemaError, match="undeclared"):
            TupleSchema.of("a").validate({"a": 1, "b": 2})


class TestDataTuple:
    def test_get_value(self):
        data = DataTuple(values={"x": 42})
        assert data.get_value("x") == 42

    def test_get_missing_value_raises(self):
        data = DataTuple(values={"x": 42})
        with pytest.raises(SchemaError):
            data.get_value("y")

    def test_schema_enforced_at_construction(self):
        with pytest.raises(SchemaError):
            DataTuple(values={"x": 1}, schema=TupleSchema.of("y"))

    def test_derive_preserves_seq_and_created_at(self):
        data = DataTuple(values={"x": 1}, seq=7, created_at=3.5)
        child = data.derive({"y": 2})
        assert child.seq == 7
        assert child.created_at == 3.5
        assert child.get_value("y") == 2

    def test_derive_copies_values(self):
        payload = {"y": [1, 2]}
        data = DataTuple(values={"x": 1}, seq=0)
        child = data.derive(payload)
        payload["z"] = 3
        assert "z" not in child.values

    def test_derive_accumulates_hops(self):
        data = DataTuple(values={"x": 1}, seq=0)
        data.hops.append(HopTiming(sent_at=0.0, received_at=1.0,
                                   started_at=1.5, finished_at=2.0))
        child = data.derive({"y": 2})
        assert len(child.hops) == 1
        assert child.total_delay == pytest.approx(2.0)

    def test_auto_seq_monotonic(self):
        a = DataTuple(values={"x": 1})
        b = DataTuple(values={"x": 2})
        assert b.seq > a.seq


class TestPayloadSize:
    def test_bytes_size(self):
        assert DataTuple(values={"b": b"12345"}).payload_size() == 5

    def test_string_utf8_size(self):
        assert DataTuple(values={"s": "héllo"}).payload_size() == 6

    def test_numbers(self):
        assert DataTuple(values={"i": 3}).payload_size() == 8
        assert DataTuple(values={"f": 1.5}).payload_size() == 8
        assert DataTuple(values={"t": True}).payload_size() == 1
        assert DataTuple(values={"n": None}).payload_size() == 1

    def test_numpy_array_uses_nbytes(self):
        array = np.zeros((4, 4), dtype=np.float64)
        assert DataTuple(values={"a": array}).payload_size() == 128

    def test_containers_recursive(self):
        size = DataTuple(values={"l": [b"123", b"4567"]}).payload_size()
        assert size == 8 + 3 + 4

    def test_multiple_fields_sum(self):
        data = DataTuple(values={"a": b"12", "b": "xyz"})
        assert data.payload_size() == 5


class TestHopTiming:
    def test_decomposition(self):
        hop = HopTiming(sent_at=1.0, received_at=1.4, started_at=1.9,
                        finished_at=2.4)
        assert hop.transmission_delay == pytest.approx(0.4)
        assert hop.queuing_delay == pytest.approx(0.5)
        assert hop.processing_delay == pytest.approx(0.5)
        assert hop.total_delay == pytest.approx(1.4)

    def test_negative_clamped_to_zero(self):
        hop = HopTiming(sent_at=2.0, received_at=1.0)
        assert hop.transmission_delay == 0.0


class TestMakeStream:
    def test_sequential_seq_and_spacing(self):
        stream = make_stream([{"x": i} for i in range(3)], interval=0.5)
        assert [t.seq for t in stream] == [0, 1, 2]
        assert [t.created_at for t in stream] == [0.0, 0.5, 1.0]

    def test_schema_applied(self):
        with pytest.raises(SchemaError):
            make_stream([{"x": 1}], schema=TupleSchema.of("y"))

    @given(st.integers(min_value=0, max_value=50),
           st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_length_and_monotonic_times(self, count, interval):
        stream = make_stream([{"x": i} for i in range(count)],
                             interval=interval)
        assert len(stream) == count
        times = [t.created_at for t in stream]
        assert times == sorted(times)
