"""Key-range partitioning: hashing, tables, splitting, hot detection."""

import pytest

from repro.core.exceptions import PolicyError, RuntimeStateError
from repro.core.keyed import (KEY_SPACE, HotRangeDetector, KeyedConfig,
                              KeyRange, KeyRangeTable, hash_key, zipf_weights)


class TestHashKey:
    def test_stable_and_in_range(self):
        # CRC32 is process-stable, unlike hash(); pin a value so any
        # accidental hash change (which would silently reshuffle every
        # deployed key) breaks loudly.
        assert hash_key("user-0") == hash_key("user-0")
        assert 0 <= hash_key("user-0") < KEY_SPACE

    def test_distinct_keys_spread(self):
        hashes = {hash_key("user-%d" % i) for i in range(256)}
        assert len(hashes) > 250  # essentially collision-free at this scale


class TestKeyRange:
    def test_validation(self):
        with pytest.raises(PolicyError):
            KeyRange(10, 10)
        with pytest.raises(PolicyError):
            KeyRange(-1, 5)
        with pytest.raises(PolicyError):
            KeyRange(0, KEY_SPACE + 1)

    def test_contains_half_open(self):
        r = KeyRange(10, 20)
        assert r.contains(10)
        assert r.contains(19)
        assert not r.contains(20)
        assert not r.contains(9)

    def test_split_halves(self):
        left, right = KeyRange(0, 10).split()
        assert (left.lo, left.hi, right.lo, right.hi) == (0, 5, 5, 10)

    def test_unit_range_cannot_split(self):
        with pytest.raises(PolicyError):
            KeyRange(4, 5).split()


class TestKeyedConfig:
    def test_defaults_validate(self):
        KeyedConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"key_count": -1}, {"zipf_alpha": -0.1}, {"hot_ratio": 1.0},
        {"min_split_interval": -1}, {"max_splits": -1},
        {"min_range_width": 1}, {"rate_window": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(PolicyError):
            KeyedConfig(**kwargs).validate()


class TestKeyRangeTable:
    def test_bootstrap_partitions_evenly_sorted(self):
        table = KeyRangeTable.bootstrap(["b", "a"])
        snapshot = table.snapshot()
        assert snapshot == ((0, KEY_SPACE // 2, "a"),
                            (KEY_SPACE // 2, KEY_SPACE, "b"))

    def test_bootstrap_covers_whole_space(self):
        table = KeyRangeTable.bootstrap(["a", "b", "c"])
        snapshot = table.snapshot()
        assert snapshot[0][0] == 0 and snapshot[-1][1] == KEY_SPACE
        for (_, hi, _), (lo, _, _) in zip(snapshot, snapshot[1:]):
            assert hi == lo  # contiguous, no gaps

    def test_bootstrap_needs_owner(self):
        with pytest.raises(PolicyError):
            KeyRangeTable.bootstrap([])

    def test_owner_lookup(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        assert table.owner_of(0) == "a"
        assert table.owner_of(KEY_SPACE - 1) == "b"
        assert table.owner_of(KEY_SPACE // 2) == "b"

    def test_assign_rejects_overlap(self):
        table = KeyRangeTable()
        table.assign(KeyRange(0, 100), "a")
        with pytest.raises(RuntimeStateError):
            table.assign(KeyRange(50, 150), "b")
        with pytest.raises(RuntimeStateError):
            table.assign(KeyRange(0, 50), "b")

    def test_split_keeps_owner_and_counts(self):
        table = KeyRangeTable.bootstrap(["a"])
        left, right = table.split(KeyRange(0, KEY_SPACE))
        assert table.owner(left) == "a" and table.owner(right) == "a"
        assert table.splits == 1
        assert table.owner_of(0) == "a"

    def test_pause_hides_owner(self):
        table = KeyRangeTable.bootstrap(["a"])
        whole = KeyRange(0, KEY_SPACE)
        table.pause(whole)
        assert table.owner_of(5) is None  # parked, not routed
        assert table.owner(whole) == "a"  # ownership itself unchanged
        table.resume(whole)
        assert table.owner_of(5) == "a"

    def test_pause_unknown_range_rejected(self):
        table = KeyRangeTable.bootstrap(["a"])
        with pytest.raises(RuntimeStateError):
            table.pause(KeyRange(1, 2))

    def test_ranges_owned_by(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        assert table.ranges_owned_by("a") == (KeyRange(0, KEY_SPACE // 2),)

    def test_snapshot_restore_round_trip(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        table.split(KeyRange(0, KEY_SPACE // 2))
        restored = KeyRangeTable.restore(table.snapshot())
        assert restored.snapshot() == table.snapshot()

    def test_snapshot_drops_pauses(self):
        # Pauses are transient migration state; a recovered master must
        # resume with every range routable.
        table = KeyRangeTable.bootstrap(["a"])
        table.pause(KeyRange(0, KEY_SPACE))
        restored = KeyRangeTable.restore(table.snapshot())
        assert restored.owner_of(0) == "a"


class TestHotRangeDetector:
    def _config(self, **kwargs):
        base = dict(hot_ratio=1.5, min_split_interval=0.0, max_splits=4,
                    rate_window=1.0)
        base.update(kwargs)
        return KeyedConfig(**base)

    def test_detects_skewed_range(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        hot_range = KeyRange(0, KEY_SPACE // 2)
        detector = HotRangeDetector(self._config())
        now = 0.0
        for i in range(100):
            now = i * 0.01
            detector.observe(hot_range if i % 10 else None, now)
        found = detector.hottest(now, table, owners=2)
        assert found is not None and found[0] == hot_range

    def test_balanced_load_not_hot(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        halves = [KeyRange(0, KEY_SPACE // 2),
                  KeyRange(KEY_SPACE // 2, KEY_SPACE)]
        detector = HotRangeDetector(self._config())
        now = 0.0
        for i in range(100):
            now = i * 0.01
            detector.observe(halves[i % 2], now)
        assert detector.hottest(now, table, owners=2) is None

    def test_split_cap_and_cooldown(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        hot_range = KeyRange(0, KEY_SPACE // 2)
        detector = HotRangeDetector(
            self._config(max_splits=1, min_split_interval=10.0))
        for i in range(100):
            detector.observe(hot_range if i % 10 else None, i * 0.01)
        assert detector.hottest(0.99, table, owners=2) is not None
        detector.mark_split(0.99)
        # both the cooldown and the cap now block further splits
        assert detector.hottest(1.0, table, owners=2) is None

    def _feed_skew(self, detector):
        hot_range = KeyRange(0, KEY_SPACE // 2)
        for i in range(100):
            detector.observe(hot_range if i % 10 else None, i * 0.01)
        return hot_range

    def test_paused_range_never_hot(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        detector = HotRangeDetector(self._config())
        hot_range = self._feed_skew(detector)
        assert detector.hottest(0.99, table, owners=2) is not None
        table.pause(hot_range)  # mid-migration: leave it alone
        assert detector.hottest(0.99, table, owners=2) is None

    def test_disabled_detector_silent(self):
        table = KeyRangeTable.bootstrap(["a", "b"])
        detector = HotRangeDetector(self._config(split_enabled=False))
        self._feed_skew(detector)
        assert detector.hottest(0.99, table, owners=2) is None


class TestZipfWeights:
    def test_normalised_and_monotone(self):
        weights = zipf_weights(10, 1.2)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(abs(w - 0.25) < 1e-9 for w in weights)

    def test_rejects_bad_inputs(self):
        with pytest.raises(PolicyError):
            zipf_weights(0, 1.0)
        with pytest.raises(PolicyError):
            zipf_weights(3, -1.0)
