"""Tests for the function-unit programming API."""

import pytest

from repro.core.exceptions import RuntimeStateError
from repro.core.function_unit import (CollectingSink, FunctionUnit,
                                      IterableSource, LambdaUnit, SinkUnit,
                                      SourceUnit, UnitContext)
from repro.core.tuples import DataTuple, TupleSchema


def bind(unit, emitted=None, clock=None):
    emitted = emitted if emitted is not None else []
    times = iter(clock or [0.0] * 1000)
    context = UnitContext(unit_name="u", instance_id="u@X",
                          emit=emitted.append, now=lambda: next(times))
    unit.bind(context)
    return emitted


class TestUnitContext:
    def test_emit_counts(self):
        unit = LambdaUnit(lambda values: values)
        emitted = bind(unit)
        unit.process_data(DataTuple(values={"x": 1}, seq=0))
        assert unit.context.emitted_count == 1
        assert len(emitted) == 1

    def test_unbound_unit_raises(self):
        unit = LambdaUnit(lambda values: values)
        with pytest.raises(RuntimeStateError):
            unit.process_data(DataTuple(values={"x": 1}, seq=0))

    def test_now_uses_supplied_clock(self):
        unit = IterableSource([{"x": 1}])
        bind(unit, clock=[42.0])
        data = unit.generate()
        assert data.created_at == 42.0


class TestBaseClassContracts:
    def test_process_data_abstract(self):
        unit = FunctionUnit()
        bind(unit)
        with pytest.raises(NotImplementedError):
            unit.process_data(DataTuple(values={}))

    def test_source_rejects_input(self):
        source = IterableSource([])
        bind(source)
        with pytest.raises(RuntimeStateError):
            source.process_data(DataTuple(values={"x": 1}, seq=0))

    def test_source_generate_abstract(self):
        source = SourceUnit()
        bind(source)
        with pytest.raises(NotImplementedError):
            source.generate()

    def test_lifecycle_hooks_are_noops(self):
        unit = SinkUnit()
        unit.on_start()
        unit.on_stop()


class TestLambdaUnit:
    def test_transforms_and_forwards(self):
        unit = LambdaUnit(lambda values: {"y": values["x"] * 2})
        emitted = bind(unit)
        unit.process_data(DataTuple(values={"x": 3}, seq=9))
        assert emitted[0].get_value("y") == 6
        assert emitted[0].seq == 9

    def test_output_schema_enforced(self):
        unit = LambdaUnit(lambda values: {"wrong": 1},
                          output_schema=TupleSchema.of("y"))
        bind(unit)
        with pytest.raises(Exception):
            unit.process_data(DataTuple(values={"x": 1}, seq=0))


class TestIterableSource:
    def test_generates_in_order_then_exhausts(self):
        source = IterableSource([{"x": 1}, {"x": 2}])
        bind(source)
        assert source.generate().get_value("x") == 1
        assert source.generate().get_value("x") == 2
        assert source.generate() is None

    def test_sequence_numbers(self):
        source = IterableSource([{"x": i} for i in range(3)])
        bind(source)
        assert [source.generate().seq for _ in range(3)] == [0, 1, 2]

    def test_accepts_generators(self):
        source = IterableSource(({"x": i} for i in range(2)))
        bind(source)
        assert source.generate() is not None


class TestCollectingSink:
    def test_collects_values_and_sequences(self):
        sink = CollectingSink()
        bind(sink)
        sink.process_data(DataTuple(values={"v": "a"}, seq=5))
        sink.process_data(DataTuple(values={"v": "b"}, seq=6))
        assert sink.values("v") == ["a", "b"]
        assert sink.sequences() == [5, 6]


class TestReorderingSink:
    def _sink(self, rate=10.0, timespan=1.0):
        from repro.core.function_unit import ReorderingSink
        sink = ReorderingSink(source_rate=rate, timespan=timespan)
        bind(sink)
        return sink

    def test_playback_in_sequence_order(self):
        sink = self._sink()
        for seq in (2, 0, 1, 3):
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        assert [data.seq for data in sink.playback] == [0, 1, 2, 3]

    def test_raw_results_keep_arrival_order(self):
        sink = self._sink()
        for seq in (2, 0, 1):
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        assert [data.seq for data in sink.results] == [2, 0, 1]

    def test_on_stop_flushes_gapped_tail(self):
        sink = self._sink()
        sink.process_data(DataTuple(values={"v": 5}, seq=5))
        assert sink.playback == []  # waiting for 0..4
        sink.on_stop()
        assert [data.seq for data in sink.playback] == [5]
        assert sink.skipped == 5

    def test_capacity_follows_rate_and_timespan(self):
        sink = self._sink(rate=24.0, timespan=2.0)
        assert sink._buffer.capacity == 48

    def test_stash_pruned_after_playback(self):
        # Regression: played-back tuples used to stay in _by_seq forever,
        # retaining every tuple of a long run.
        sink = self._sink()
        for seq in range(100):
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        assert len(sink.playback) == 100
        assert sink._by_seq == {}

    def test_stash_pruned_after_skip(self):
        # Tuples whose slot was force-skipped (capacity overflow) are
        # settled too and must not linger in the stash.
        sink = self._sink(rate=2.0, timespan=1.0)  # capacity 2
        for seq in (5, 6, 7, 8):  # 0..4 never arrive; overflow skips them
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        late = DataTuple(values={"v": 1}, seq=1)
        sink.process_data(late)  # arrives after its slot was skipped
        assert 1 not in sink._by_seq
        assert all(seq >= sink._buffer.next_seq for seq in sink._by_seq)

    def test_on_stop_clears_stash_and_uses_bound_clock(self):
        sink = self._sink()
        bind(sink, clock=[3.5] * 10)
        sink.process_data(DataTuple(values={"v": 5}, seq=5))
        sink.on_stop()
        assert sink._by_seq == {}
        # The flush timestamp comes from the unit's clock, not a
        # hardcoded 0.0.
        assert sink._buffer.playback[-1].played_at == 3.5

    def test_duplicates_dropped_and_counted(self):
        # At-least-once delivery may replay a tuple; the copy must not
        # pollute raw results, playback, or the throughput count.
        sink = self._sink()
        for seq in (0, 1, 1, 2, 0):
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        assert sink.duplicates_dropped == 2
        assert [data.seq for data in sink.results] == [0, 1, 2]
        assert [data.seq for data in sink.playback] == [0, 1, 2]

    def test_duplicate_past_dedup_window_still_not_replayed(self):
        # Independence of the two layers: once a duplicate outlives the
        # dedup window, the reorder buffer (seq already settled) still
        # refuses to play it twice — at-least-once never double-counts
        # playback, only the raw arrival log.
        from repro.core.function_unit import ReorderingSink
        sink = ReorderingSink(source_rate=10.0, timespan=1.0,
                              dedup_window=2)
        bind(sink)
        for seq in range(5):
            sink.process_data(DataTuple(values={"v": seq}, seq=seq))
        # seq 0 has left the 2-entry dedup window: the replay passes the
        # window (not counted as duplicate) but never reaches playback.
        sink.process_data(DataTuple(values={"v": 0}, seq=0))
        assert sink.duplicates_dropped == 0
        assert [data.seq for data in sink.playback] == list(range(5))
