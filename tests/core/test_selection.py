"""Tests for Worker Selection (paper Sec. V-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.selection import (WorkerSelector, select_all,
                                  select_min_prefix)

RATES = {"B": 10.0, "C": 8.0, "D": 6.0, "E": 2.0, "H": 13.0}


class TestSelectMinPrefix:
    def test_takes_fastest_first(self):
        assert select_min_prefix(RATES, target_rate=12.0) == ["H"]

    def test_minimum_prefix_meets_target(self):
        selected = select_min_prefix(RATES, target_rate=24.0)
        assert selected == ["H", "B", "C"]
        assert sum(RATES[d] for d in selected) >= 24.0

    def test_unsatisfiable_selects_all(self):
        selected = select_min_prefix(RATES, target_rate=1000.0)
        assert sorted(selected) == sorted(RATES)

    def test_exact_boundary(self):
        assert select_min_prefix({"a": 5.0, "b": 5.0}, 10.0) == ["a", "b"]

    def test_zero_target_selects_single_fastest(self):
        assert select_min_prefix(RATES, 0.0) == ["H"]

    def test_empty_rates(self):
        assert select_min_prefix({}, 5.0) == []

    def test_tie_broken_by_id(self):
        assert select_min_prefix({"x": 3.0, "a": 3.0}, 2.0) == ["a"]

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(min_value=0.01, max_value=100.0),
                           min_size=1, max_size=12),
           st.floats(min_value=0.0, max_value=500.0))
    def test_minimality_invariant(self, rates, target):
        selected = select_min_prefix(rates, target)
        total = sum(rates[d] for d in selected)
        all_total = sum(rates.values())
        if total >= target and target > 0 and len(selected) > 1:
            # Dropping the slowest selected unit must violate the target:
            # otherwise the selection was not minimal.
            without_last = total - rates[selected[-1]]
            assert without_last < target
        if all_total < target:
            assert sorted(selected) == sorted(rates)

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(min_value=0.01, max_value=100.0),
                           min_size=1, max_size=12),
           st.floats(min_value=0.01, max_value=500.0))
    def test_selected_are_fastest(self, rates, target):
        selected = select_min_prefix(rates, target)
        if sorted(selected) == sorted(rates):
            return
        slowest_selected = min(rates[d] for d in selected)
        unselected = set(rates) - set(selected)
        assert all(rates[d] <= slowest_selected for d in unselected)


class TestSelectAll:
    def test_returns_everything_sorted(self):
        assert select_all(RATES, 1.0) == sorted(RATES)


class TestWorkerSelector:
    def test_without_selection_returns_all(self):
        selector = WorkerSelector(use_selection=False)
        assert selector.select({"a": 1.0, "b": None}, 10.0) == ["a", "b"]

    def test_with_selection_uses_min_prefix(self):
        selector = WorkerSelector(use_selection=True)
        rates = {"fast": 20.0, "slow": 1.0}
        assert selector.select(rates, 10.0) == ["fast"]

    def test_unknown_units_included_when_short(self):
        selector = WorkerSelector(use_selection=True)
        rates = {"fast": 5.0, "mystery": None}
        selected = selector.select(rates, 10.0)
        assert "mystery" in selected
