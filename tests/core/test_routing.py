"""Tests for routing tables and weighted sampling."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import RoutingError
from repro.core.routing import (RoundRobinCycler, RoutingTable,
                                normalize_weights)


class TestNormalizeWeights:
    def test_sums_to_one(self):
        weights = normalize_weights({"a": 2.0, "b": 6.0})
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["b"] == pytest.approx(0.75)

    def test_all_zero_becomes_uniform(self):
        weights = normalize_weights({"a": 0.0, "b": 0.0})
        assert weights == {"a": 0.5, "b": 0.5}

    def test_negative_rejected(self):
        with pytest.raises(RoutingError):
            normalize_weights({"a": -1.0})

    def test_empty(self):
        assert normalize_weights({}) == {}

    @given(st.dictionaries(st.text(min_size=1, max_size=3),
                           st.floats(min_value=0, max_value=1e9),
                           min_size=1, max_size=10))
    def test_always_normalized(self, raw):
        weights = normalize_weights(raw)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())


class TestRoutingTable:
    def test_choose_respects_weights(self):
        table = RoutingTable({"a": 0.9, "b": 0.1})
        rng = random.Random(42)
        counts = Counter(table.choose(rng) for _ in range(5000))
        assert counts["a"] > counts["b"] * 4

    def test_single_entry_always_chosen(self):
        table = RoutingTable({"only": 1.0})
        rng = random.Random(0)
        assert all(table.choose(rng) == "only" for _ in range(20))

    def test_empty_table_raises(self):
        with pytest.raises(RoutingError):
            RoutingTable().choose(random.Random(0))

    def test_zero_weight_entry_never_chosen(self):
        # Regression: with bisect_left a draw of exactly 0.0 landed on
        # the first id even when its weight was zero.
        class ZeroRng:
            def random(self):
                return 0.0

        table = RoutingTable({"a": 0.0, "b": 1.0})
        assert table.choose(ZeroRng()) == "b"

    def test_boundary_points_map_to_upper_interval(self):
        # Intervals are half-open [lo, hi): a draw exactly on a cumulative
        # boundary belongs to the NEXT id, so zero-weight ids (empty
        # intervals) are unreachable even at their own boundary.
        class FixedRng:
            def __init__(self, value):
                self.value = value

            def random(self):
                return self.value

        table = RoutingTable({"a": 0.25, "b": 0.0, "c": 0.75})
        assert table.choose(FixedRng(0.0)) == "a"
        assert table.choose(FixedRng(0.25)) == "c"   # b owns []
        assert table.choose(FixedRng(0.24999)) == "a"
        assert table.choose(FixedRng(0.999999)) == "c"

    def test_zero_weight_excluded_under_seeded_sampling(self):
        table = RoutingTable({"a": 0.0, "b": 0.5, "c": 0.5})
        rng = random.Random(7)
        drawn = {table.choose(rng) for _ in range(2000)}
        assert "a" not in drawn
        assert drawn == {"b", "c"}

    def test_add_with_zero_weight_keeps_proportions(self):
        table = RoutingTable({"a": 0.5, "b": 0.5})
        table.add("c")
        assert table.weight("a") == pytest.approx(0.5)
        assert table.weight("c") == 0.0

    def test_add_with_positive_weight_renormalizes(self):
        table = RoutingTable({"a": 1.0})
        table.add("b", weight=1.0)
        assert table.weight("a") == pytest.approx(0.5)

    def test_remove_renormalizes(self):
        table = RoutingTable({"a": 0.5, "b": 0.25, "c": 0.25})
        table.remove("a")
        assert table.weight("b") == pytest.approx(0.5)
        assert sum(table.weights.values()) == pytest.approx(1.0)

    def test_remove_unknown_raises(self):
        with pytest.raises(RoutingError):
            RoutingTable({"a": 1.0}).remove("ghost")

    def test_contains_and_len(self):
        table = RoutingTable({"a": 1.0, "b": 1.0})
        assert "a" in table and "ghost" not in table
        assert len(table) == 2

    def test_weight_unknown_raises(self):
        with pytest.raises(RoutingError):
            RoutingTable({"a": 1.0}).weight("ghost")

    def test_zero_weight_never_chosen_among_positive(self):
        table = RoutingTable({"a": 1.0, "b": 0.0})
        rng = random.Random(7)
        assert all(table.choose(rng) == "a" for _ in range(200))

    @given(st.dictionaries(st.text(min_size=1, max_size=3),
                           st.floats(min_value=0.01, max_value=100.0),
                           min_size=1, max_size=8),
           st.integers(min_value=0, max_value=2**31))
    def test_choose_returns_member(self, raw, seed):
        table = RoutingTable(raw)
        assert table.choose(random.Random(seed)) in raw

    def test_empirical_distribution_matches_weights(self):
        table = RoutingTable({"a": 1.0, "b": 2.0, "c": 1.0})
        rng = random.Random(123)
        counts = Counter(table.choose(rng) for _ in range(8000))
        assert counts["b"] / 8000 == pytest.approx(0.5, abs=0.03)
        assert counts["a"] / 8000 == pytest.approx(0.25, abs=0.03)


class TestRoundRobinCycler:
    def test_strict_rotation(self):
        cycler = RoundRobinCycler(["b", "a", "c"])
        picks = [cycler.next() for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_empty_raises(self):
        with pytest.raises(RoutingError):
            RoundRobinCycler().next()

    def test_set_ids_keeps_position(self):
        cycler = RoundRobinCycler(["a", "b", "c"])
        cycler.next()  # a
        cycler.set_ids(["b", "c", "d"])
        assert cycler.next() == "b"

    def test_membership_change_resets_when_current_gone(self):
        cycler = RoundRobinCycler(["a", "b"])
        cycler.next()  # a; next would be b
        cycler.set_ids(["c", "d"])
        assert cycler.next() == "c"

    def test_each_member_visited_once_per_cycle(self):
        members = ["w%d" % i for i in range(5)]
        cycler = RoundRobinCycler(members)
        cycle = [cycler.next() for _ in range(5)]
        assert sorted(cycle) == sorted(members)
