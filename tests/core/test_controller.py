"""Tests for the shared LRS control plane (LrsController / PolicyConfig)."""

import heapq

import pytest

from repro import metrics as metrics_mod
from repro.core.controller import AckResult, LrsController, PolicyConfig
from repro.core.policies import POLICY_NAMES


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestPolicyConfig:
    def test_probed_policies_get_probe_kwargs(self):
        config = PolicyConfig(policy="LRS", probe_every=7, probe_tuples=2,
                              probe_spacing=4)
        assert config.policy_kwargs() == {"probe_every": 7,
                                          "probe_tuples": 2,
                                          "probe_spacing": 4}

    def test_wrr_gets_capabilities(self):
        config = PolicyConfig(policy="WRR",
                              capabilities={"a": 2.0, "b": 1.0})
        assert config.policy_kwargs() == {"capabilities": {"a": 2.0,
                                                           "b": 1.0}}

    def test_plain_policies_get_no_kwargs(self):
        for name in ("RR", "JSQ", "WRR"):
            assert PolicyConfig(policy=name).policy_kwargs() == {}

    def test_estimator_kwargs(self):
        assert PolicyConfig(estimator_window=7).estimator_kwargs() == \
            {"window": 7}
        assert PolicyConfig(estimator="ewma").estimator_kwargs() == {}

    def test_make_policy_builds_every_known_policy(self):
        for name in POLICY_NAMES:
            policy = PolicyConfig(policy=name, seed=3).make_policy()
            policy.on_downstream_added("a")
            assert policy.route() == "a"

    def test_make_tracker_uses_given_registry(self):
        registry = metrics_mod.MetricsRegistry()
        tracker = PolicyConfig().make_tracker(registry)
        tracker.record_send(1, "a", 0.0)
        assert registry.value(metrics_mod.SENT_TOTAL, downstream="a") == 1


class TestMembership:
    def _controller(self):
        return LrsController(PolicyConfig(policy="RR", seed=0),
                             clock=FakeClock(),
                             registry=metrics_mod.MetricsRegistry())

    def test_set_downstreams_reconciles(self):
        controller = self._controller()
        controller.add_downstream("a")
        controller.add_downstream("b")
        controller.set_downstreams(["b", "c"])
        assert controller.downstream_ids() == ["b", "c"]

    def test_add_is_idempotent_and_keeps_dead_mark(self):
        controller = self._controller()
        controller.add_downstream("a")
        controller.mark_dead("a")
        controller.add_downstream("a")
        assert not controller.is_alive("a")
        assert controller.dead_downstreams() == ["a"]

    def test_revive_resurrects_a_sole_dead_member(self):
        # Regression: an edge whose ONLY downstream is dead sends
        # nothing — not even probes — so the ACK path can never
        # resurrect it (the failover wedge: a worker edge pointing at
        # the master-hosted sink).  Explicit revival must break it.
        controller = self._controller()
        controller.add_downstream("a")
        controller.mark_dead("a")
        assert controller.unsatisfiable()
        assert controller.dead_downstreams() == ["a"]
        controller.revive_downstream("a")
        assert controller.is_alive("a")
        assert not controller.unsatisfiable()
        assert controller.dispatch(2) == "a"

    def test_revive_is_a_noop_for_alive_or_unknown_members(self):
        controller = self._controller()
        controller.add_downstream("a")
        controller.revive_downstream("a")  # alive: nothing to do
        controller.revive_downstream("ghost")  # unknown: nothing to do
        assert controller.downstream_ids() == ["a"]
        assert controller.is_alive("a")

    def test_revive_unwedges_retained_at_least_once_frames(self):
        from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig
        clock = FakeClock()
        egress = _FailingEgress(clock, failing={"a"})
        delivery = DeliveryConfig(mode=AT_LEAST_ONCE,
                                  redelivery_timeout=0.5)
        controller = LrsController(
            PolicyConfig(policy="RR", seed=0, delivery=delivery),
            clock=clock, egress=egress,
            registry=metrics_mod.MetricsRegistry())
        controller.add_downstream("a")
        # The sole member dies; the tuple is retained unassigned.
        assert controller.dispatch(1, context=b"frame") is None
        assert not controller.is_alive("a")
        assert controller.replay_depth() == 1
        clock.now = 2.0
        controller.update(clock.now)
        assert egress.sent == []  # wedged: nobody to redeliver to
        # The member comes back (successor master): revival + sweep
        # place the retained frame without any ACK ever arriving.
        egress.failing.clear()
        controller.revive_downstream("a")
        controller.update(clock.now)
        assert ("a", 1) in egress.sent


class _FailingEgress:
    """Egress that fails for a chosen set of downstreams."""

    def __init__(self, clock, failing):
        self.clock = clock
        self.failing = set(failing)
        self.sent = []

    def send(self, downstream_id, seq, context):
        if downstream_id in self.failing:
            return None
        self.sent.append((downstream_id, seq))
        return self.clock()


class TestDispatch:
    def test_dispatch_records_send_and_ack_round_trip(self):
        clock = FakeClock()
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=clock,
                                   registry=metrics_mod.MetricsRegistry())
        controller.add_downstream("a")
        chosen = controller.dispatch(1)
        assert chosen == "a"
        clock.now = 0.25
        result = controller.on_ack(1)
        assert result == AckResult(downstream_id="a", sample=0.25)
        assert controller.ack_count == 1
        assert controller.stats()["a"].latency == pytest.approx(0.25)

    def test_failed_send_marks_dead_and_reroutes(self):
        clock = FakeClock()
        registry = metrics_mod.MetricsRegistry()
        egress = _FailingEgress(clock, failing={"a"})
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=clock, egress=egress,
                                   registry=registry)
        controller.add_downstream("a")
        controller.add_downstream("b")
        chosen = {controller.dispatch(seq) for seq in range(4)}
        assert chosen == {"b"}
        assert controller.dead_downstreams() == ["a"]
        assert registry.value(metrics_mod.REROUTED_TOTAL,
                              downstream="b") >= 1

    def test_every_send_failing_loses_the_tuple(self):
        clock = FakeClock()
        egress = _FailingEgress(clock, failing={"a", "b"})
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=clock, egress=egress,
                                   registry=metrics_mod.MetricsRegistry())
        controller.add_downstream("a")
        controller.add_downstream("b")
        assert controller.dispatch(1) is None
        assert controller.dispatched == 0
        assert controller.dead_downstreams() == ["a", "b"]

    def test_dispatch_without_members_returns_none(self):
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=FakeClock(),
                                   registry=metrics_mod.MetricsRegistry())
        assert controller.dispatch(1) is None


class TestUpdateCadence:
    def test_maybe_update_respects_interval(self):
        clock = FakeClock()
        controller = LrsController(
            PolicyConfig(policy="RR", seed=0, control_interval=1.0),
            clock=clock, registry=metrics_mod.MetricsRegistry())
        controller.add_downstream("a")
        controller.maybe_update(0.5)
        assert len(controller.decisions) == 0
        controller.maybe_update(1.0)
        assert len(controller.decisions) == 1
        controller.maybe_update(1.5)
        assert len(controller.decisions) == 1
        controller.update(1.5)  # forced round ignores the interval
        assert len(controller.decisions) == 2

    def test_update_emits_round_counter(self):
        registry = metrics_mod.MetricsRegistry()
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=FakeClock(), registry=registry,
                                   name="s>d")
        controller.add_downstream("a")
        controller.update(1.0)
        controller.update(2.0)
        assert registry.value(metrics_mod.POLICY_UPDATES_TOTAL,
                              edge="s>d") == 2

    def test_max_decisions_caps_history(self):
        controller = LrsController(PolicyConfig(policy="RR", seed=0),
                                   clock=FakeClock(),
                                   registry=metrics_mod.MetricsRegistry(),
                                   max_decisions=3)
        controller.add_downstream("a")
        for tick in range(10):
            controller.update(float(tick))
        assert len(controller.decisions) == 3


class TestProbeRefresh:
    """An unselected downstream keeps receiving probes, and its latency
    estimate recovers after a transient slowdown (paper Sec. V-B)."""

    def _run(self, duration, latency_for, config):
        """Mini event loop: 25 fps arrivals, ACKs echo after a per-
        downstream delay; policy rounds at every integer second."""
        clock = FakeClock()
        controller = LrsController(config, clock=clock,
                                   registry=metrics_mod.MetricsRegistry())
        for downstream_id in ("fast1", "fast2", "slow"):
            controller.add_downstream(downstream_id)
        events = []  # (time, order, kind, payload)
        order = 0
        for i in range(int(duration * 25)):
            heapq.heappush(events, (0.04 * i + 0.013, order, "tuple", i))
            order += 1
        for tick in range(1, int(duration) + 1):
            heapq.heappush(events, (float(tick), order, "update", None))
            order += 1
        sent_log = []  # (time, downstream)
        while events:
            now, _, kind, payload = heapq.heappop(events)
            clock.now = now
            if kind == "tuple":
                controller.observe_arrival(now)
                chosen = controller.dispatch(payload)
                assert chosen is not None
                sent_log.append((now, chosen))
                heapq.heappush(events, (now + latency_for(chosen, now),
                                        order, "ack", payload))
                order += 1
            elif kind == "ack":
                controller.on_ack(payload)
            else:
                controller.update(now)
        return controller, sent_log

    def test_unselected_worker_probed_and_estimate_recovers(self):
        recover_at = 10.0

        def latency_for(downstream_id, now):
            if downstream_id == "slow" and now < recover_at:
                return 0.5  # transient slowdown
            return 0.02

        config = PolicyConfig(policy="LRS", seed=11, estimator_window=5,
                              probe_every=2, probe_tuples=6,
                              probe_spacing=1, control_interval=1.0)
        controller, sent_log = self._run(20.0, latency_for, config)

        # The two fast workers cover the 25 fps input on their own, so
        # worker selection excludes the slow one from regular routing.
        settled = [decision for when, decision in controller.decisions
                   if 4.0 <= when]
        assert settled, "no policy rounds recorded"
        assert all("slow" not in decision.selected for decision in settled)

        # ...yet round-robin probing keeps sending it tuples the whole
        # run: its sent count grows well after it left the selected set.
        late_probes = [t for t, downstream in sent_log
                       if downstream == "slow" and t >= recover_at]
        assert late_probes, "excluded downstream no longer probed"

        # The probe ACKs refresh L_slow: after the slowdown clears, the
        # estimate converges back to the true 20 ms even though the
        # worker was never re-selected.
        final = controller.stats()["slow"]
        assert final.latency == pytest.approx(0.02, abs=0.01)
