"""Unit tests for the delivery-semantics building blocks."""

import pytest

from repro import metrics as metrics_mod
from repro.core.delivery import (AT_LEAST_ONCE, BEST_EFFORT, CHURN_KILL,
                                 CHURN_LEAVE, CHURN_REJOIN, ChurnEvent,
                                 ChurnSchedule, DedupWindow, DeliveryConfig,
                                 EVICT_BYTES, EVICT_CAPACITY, EVICT_EXPIRED,
                                 EVICT_SHED, ReplayBuffer)
from repro.core.exceptions import RuntimeStateError


def make_buffer(**kwargs):
    registry = metrics_mod.MetricsRegistry()
    defaults = dict(mode=AT_LEAST_ONCE)
    defaults.update(kwargs)
    config = DeliveryConfig(**defaults)
    return ReplayBuffer(config, registry, name="edge"), registry


def evictions(registry):
    return registry.values_by_label(metrics_mod.REPLAY_EVICTED_TOTAL,
                                    "reason")


class TestDeliveryConfig:
    def test_defaults_are_best_effort(self):
        config = DeliveryConfig()
        assert config.mode == BEST_EFFORT
        assert not config.at_least_once

    def test_at_least_once_flag(self):
        assert DeliveryConfig(mode=AT_LEAST_ONCE).at_least_once

    @pytest.mark.parametrize("kwargs", [
        {"mode": "exactly_once"},
        {"replay_capacity": 0},
        {"replay_bytes": 0},
        {"max_delivery_attempts": 0},
        {"redelivery_timeout": 0.0},
        {"dedup_window": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(RuntimeStateError):
            DeliveryConfig(**kwargs)


class TestReplayBuffer:
    def test_retain_release_roundtrip(self):
        buffer, registry = make_buffer()
        buffer.retain(1, "B", b"xxxx", now=0.0)
        assert buffer.holds(1)
        assert buffer.total_bytes == 4
        assert buffer.release(1)
        assert not buffer.holds(1)
        assert buffer.total_bytes == 0
        assert not buffer.release(1)  # double release is a no-op
        assert evictions(registry) == {}  # releases are not evictions

    def test_count_bound_evicts_oldest(self):
        buffer, registry = make_buffer(replay_capacity=3)
        for seq in range(5):
            buffer.retain(seq, "B", b"", now=float(seq))
        assert len(buffer) == 3
        assert not buffer.holds(0) and not buffer.holds(1)
        assert buffer.holds(4)
        assert evictions(registry) == {EVICT_CAPACITY: 2}

    def test_byte_bound_evicts_but_keeps_newest(self):
        buffer, registry = make_buffer(replay_capacity=100, replay_bytes=10)
        buffer.retain(1, "B", b"x" * 8, now=0.0)
        buffer.retain(2, "B", b"x" * 8, now=1.0)  # 16 bytes > 10: evict 1
        assert not buffer.holds(1)
        assert buffer.holds(2)
        assert evictions(registry) == {EVICT_BYTES: 1}
        # An oversized single entry is still retained (>= 1 entry kept).
        buffer.retain(3, "B", b"x" * 50, now=2.0)
        assert buffer.holds(3)

    def test_expired_entries_evicted_first(self):
        buffer, registry = make_buffer(replay_capacity=2)
        buffer.retain(1, "B", b"", now=0.0, deadline=0.5)   # expired by t=2
        buffer.retain(2, "B", b"", now=1.0)                 # older than 3...
        buffer.retain(3, "B", b"", now=2.0)
        # ...but the expired entry 1 goes first, not the oldest live one.
        assert not buffer.holds(1)
        assert buffer.holds(2) and buffer.holds(3)
        assert evictions(registry) == {EVICT_EXPIRED: 1}

    def test_explicit_evict_counts_reason(self):
        buffer, registry = make_buffer()
        buffer.retain(7, "B", b"abc", now=0.0)
        assert buffer.evict(7, EVICT_SHED)
        assert not buffer.evict(7, EVICT_SHED)
        assert evictions(registry) == {EVICT_SHED: 1}
        assert buffer.total_bytes == 0

    def test_take_for_pops_only_that_downstream(self):
        buffer, _ = make_buffer()
        buffer.retain(1, "B", b"", now=0.0)
        buffer.retain(2, "C", b"", now=0.0)
        buffer.retain(3, "B", b"", now=0.0)
        taken = buffer.take_for("B")
        assert sorted(entry.seq for entry in taken) == [1, 3]
        assert not buffer.holds(1) and not buffer.holds(3)
        assert buffer.holds(2)

    def test_take_stale_includes_unassigned(self):
        buffer, _ = make_buffer()
        buffer.retain(1, "B", b"", now=0.0)    # stale at cutoff 1.0
        buffer.retain(2, "B", b"", now=5.0)    # fresh
        buffer.retain(3, None, b"", now=5.0)   # unassigned: always stale
        taken = buffer.take_stale(1.0)
        assert sorted(entry.seq for entry in taken) == [1, 3]
        assert buffer.holds(2)

    def test_re_retain_replaces_accounting(self):
        buffer, _ = make_buffer()
        buffer.retain(1, "B", b"x" * 10, now=0.0)
        buffer.retain(1, "C", b"x" * 4, now=1.0, attempt=2)
        assert len(buffer) == 1
        assert buffer.total_bytes == 4
        (entry,) = buffer.take_for("C")
        assert entry.attempt == 2


class TestDedupWindow:
    def test_first_sight_then_duplicate(self):
        window = DedupWindow(capacity=8)
        assert not window.seen(("src", 1))
        assert window.seen(("src", 1))
        assert window.duplicates == 1

    def test_window_bounded_and_forgets_oldest(self):
        window = DedupWindow(capacity=3)
        for seq in range(5):
            assert not window.seen(seq)
        assert len(window) == 3
        # 0 fell out of the window: redelivery would be accepted again —
        # at-least-once, not exactly-once.
        assert not window.seen(0)
        assert window.seen(4)

    def test_capacity_validated(self):
        with pytest.raises(RuntimeStateError):
            DedupWindow(capacity=0)


class TestChurnEvent:
    def test_validates_action_time_device(self):
        with pytest.raises(RuntimeStateError):
            ChurnEvent(1.0, "explode", "B")
        with pytest.raises(RuntimeStateError):
            ChurnEvent(-1.0, CHURN_KILL, "B")
        with pytest.raises(RuntimeStateError):
            ChurnEvent(1.0, CHURN_KILL, "")


class TestChurnSchedule:
    def test_generate_is_deterministic(self):
        first = ChurnSchedule.generate(seed=7, device_ids=("D", "G"),
                                       duration=40.0)
        second = ChurnSchedule.generate(seed=7, device_ids=("D", "G"),
                                        duration=40.0)
        assert first.events == second.events
        different = ChurnSchedule.generate(seed=8, device_ids=("D", "G"),
                                           duration=40.0)
        assert first.events != different.events

    def test_generate_events_inside_window(self):
        schedule = ChurnSchedule.generate(seed=3, device_ids=("B", "C", "D"),
                                          duration=60.0, start_after=5.0,
                                          settle=8.0)
        assert len(schedule) == 6  # one departure + one rejoin per device
        for event in schedule:
            assert 5.0 <= event.time <= 52.0

    def test_generate_validates_against_initial_ids(self):
        schedule = ChurnSchedule.generate(seed=7, device_ids=("D", "G"),
                                          duration=40.0)
        schedule.validate({"B", "D", "G", "H"})  # must not raise

    def test_events_sorted_by_time(self):
        schedule = ChurnSchedule(events=(
            ChurnEvent(5.0, CHURN_REJOIN, "B"),
            ChurnEvent(1.0, CHURN_KILL, "B"),
        ))
        assert [event.time for event in schedule] == [1.0, 5.0]

    def test_validate_rejects_departing_absent_device(self):
        schedule = ChurnSchedule(events=(ChurnEvent(1.0, CHURN_KILL, "Z"),))
        with pytest.raises(RuntimeStateError):
            schedule.validate({"B"})

    def test_validate_rejects_rejoin_of_present_device(self):
        schedule = ChurnSchedule(events=(ChurnEvent(1.0, CHURN_REJOIN, "B"),))
        with pytest.raises(RuntimeStateError):
            schedule.validate({"B"})

    def test_validate_rejects_emptying_the_swarm(self):
        schedule = ChurnSchedule(events=(ChurnEvent(1.0, CHURN_LEAVE, "B"),))
        with pytest.raises(RuntimeStateError):
            schedule.validate({"B"})

    def test_too_short_duration_rejected(self):
        with pytest.raises(RuntimeStateError):
            ChurnSchedule.generate(seed=0, device_ids=("B",), duration=5.0,
                                   start_after=5.0, settle=8.0)
